"""Bounded frame queue with micro-batching flush policy.

The engine's admission path: frames from all links land in one
:class:`MicroBatchQueue`, a fixed-capacity ring buffer.  Under
backpressure (producers outrunning inference) the *oldest* pending frame
is evicted — in live occupancy sensing a fresh frame is always worth more
than a stale one, so drop-oldest is the only sane overflow policy.

A batch becomes ready when either

* ``max_batch`` frames are pending (throughput trigger), or
* the oldest pending frame has waited ``max_latency_s`` of stream time
  (latency trigger — a lone link at 1 Hz must not wait forever for 63
  friends).  ``max_latency_s=None`` disables the trigger for backlogged
  / offline-reprocessing workloads where only throughput matters.

Stream time means frame timestamps, not wall clock: the queue is fully
deterministic, which keeps replay tests exact and lets simulations run
faster than real time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class PendingFrame:
    """One enqueued observation awaiting inference."""

    link_id: str
    t_s: float
    csi: np.ndarray
    #: True for synthetic frames the gap repairer manufactured; the flag
    #: rides through to :class:`~repro.serve.engine.InferenceResult` so
    #: downstream consumers can always separate measured from filled.
    repaired: bool = False
    #: Monotonic id assigned by :meth:`~repro.serve.engine.InferenceEngine.submit`
    #: (-1 for frames built outside an engine).  The id keys the frame's
    #: trace spans and structured events in :mod:`repro.obs`.
    frame_id: int = -1


class MicroBatchQueue:
    """Fixed-capacity FIFO of :class:`PendingFrame` with flush triggers.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many frames are pending.
    max_latency_s:
        Flush once the oldest pending frame is this old in stream time;
        ``None`` disables the latency trigger (flush on ``max_batch`` only).
    capacity:
        Hard bound on pending frames; pushing beyond it evicts the oldest.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_latency_s: float | None = 0.25,
        capacity: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_latency_s is not None and max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be positive (or None)")
        if capacity < max_batch:
            raise ConfigurationError(
                f"capacity ({capacity}) must be >= max_batch ({max_batch})"
            )
        self.max_batch = max_batch
        self.max_latency_s = max_latency_s
        self.capacity = capacity
        self._pending: deque[PendingFrame] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Number of frames currently pending."""
        return len(self._pending)

    def push(self, frame: PendingFrame) -> PendingFrame | None:
        """Enqueue a frame; returns the evicted frame when at capacity."""
        evicted = None
        if len(self._pending) >= self.capacity:
            evicted = self._pending.popleft()
        self._pending.append(frame)
        return evicted

    def ready(self, now_s: float) -> bool:
        """Should the engine flush, given the current stream time?"""
        if len(self._pending) >= self.max_batch:
            return True
        if (
            self.max_latency_s is not None
            and self._pending
            and now_s - self._pending[0].t_s >= self.max_latency_s
        ):
            return True
        return False

    def drain(self, limit: int | None = None) -> list[PendingFrame]:
        """Pop up to ``limit`` frames (default ``max_batch``) in FIFO order."""
        n = min(len(self._pending), limit if limit is not None else self.max_batch)
        return [self._pending.popleft() for _ in range(n)]

    def drain_all(self) -> list[PendingFrame]:
        """Pop everything — used by the engine's final flush."""
        out = list(self._pending)
        self._pending.clear()
        return out
