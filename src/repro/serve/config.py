"""One declarative bundle of serving configuration.

:class:`~repro.serve.engine.InferenceEngine` historically grew a keyword
argument per subsystem — queue bounds, smoothing, staleness, fallback,
the four guard components, the observer — and every new serving surface
(benchmarks, the chaos harness, now the fleet layer) had to re-plumb the
same dozen knobs.  :class:`ServeConfig` consolidates them into a single
frozen dataclass that both ``InferenceEngine`` and :class:`repro.fleet.Fleet`
accept, so one object describes "how a stream is served" everywhere.

Two conveniences beyond plain field storage:

* ``guard`` may hold a :class:`~repro.guard.policy.GuardPolicy`; when the
  explicit ``validator``/``repairer``/``supervisor`` fields are unset,
  :meth:`ServeConfig.build_guards` manufactures **fresh** components from
  the policy per call — exactly what the fleet needs to give every tenant
  isolated guard state from one shared recipe.
* the legacy keyword arguments on ``InferenceEngine.__init__`` had their
  one deprecation release (PR 6) and now raise a typed
  :class:`~repro.exceptions.ConfigError` naming the offending kwargs —
  each maps to the ``ServeConfig`` field of the same name.

Shared *instances* (``registry``, ``observer``, a prebuilt ``supervisor``)
are deliberately allowed — sharing a metrics registry across engines is a
feature — but anything stateful that must not leak between streams should
be expressed as a ``guard`` policy, not prebuilt components.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..exceptions import ConfigError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..guard.policy import GuardPolicy
    from ..guard.repair import GapRepairer
    from ..guard.supervisor import RecoverySupervisor
    from ..guard.validation import FrameValidator, QuarantineBuffer
    from ..overload.governor import OverloadPolicy
    from .metrics import MetricsRegistry
    from .robustness import FallbackPredictor


@dataclass(frozen=True)
class ServeConfig:
    """Everything an engine (or fleet tenant) needs besides the estimator.

    Field semantics are identical to the historical
    :class:`~repro.serve.engine.InferenceEngine` keyword arguments; see
    that class for the full per-knob documentation.  Defaults reproduce
    the engine's defaults exactly, so ``ServeConfig()`` is the legacy
    no-argument engine.
    """

    # --- micro-batching ---
    max_batch: int = 32
    max_latency_ms: float | None = 250.0
    queue_capacity: int = 256
    #: Lower bound of the batch-size decision when ``adaptive_batching``
    #: is on (and a validation anchor even when it is off): the config
    #: contract is ``min_batch <= max_batch <= queue_capacity``.
    min_batch: int = 1
    #: ``True`` replaces the fixed ``max_batch`` tick with the
    #: arrival-rate-driven :class:`~repro.serve.adaptive.AdaptiveBatcher`:
    #: an EWMA inter-arrival estimate picks batch size and flush deadline
    #: between ``min_batch``/``max_batch``, yields to the overload
    #: governor while the ladder is escalated, and records every applied
    #: change as a ``serve.batch_resize`` event.
    adaptive_batching: bool = False
    #: Slot count of the zero-copy :class:`~repro.serve.arena.FrameArena`
    #: backing in-flight frames; ``None`` keeps the legacy owned-array
    #: path.  Size it to ``queue_capacity + max_batch`` to cover the
    #: worst in-flight population — exhaustion falls back per frame (and
    #: is counted), never fails.
    arena_slots: int | None = None
    # --- smoothing / staleness ---
    window: int = 5
    hold_frames: int = 3
    stale_after_s: float | None = None
    # --- robustness / metrics ---
    fallback: "FallbackPredictor | None" = None
    registry: "MetricsRegistry | None" = None
    # --- guard components (prebuilt instances) ---
    validator: "FrameValidator | None" = None
    repairer: "GapRepairer | None" = None
    supervisor: "RecoverySupervisor | None" = None
    quarantine: "QuarantineBuffer | None" = None
    # --- guard recipe (fresh components per build_guards call) ---
    guard: "GuardPolicy | None" = None
    # --- observability ---
    observer: Any = None
    # --- overload control plane (all None/off by default: strict no-op) ---
    #: Per-tenant sustained admission rate; over-rate frames get a typed
    #: ``"rate_limited"`` ticket outcome instead of queueing.
    rate_limit_hz: float | None = None
    #: Token-bucket depth (bounded per-tenant credit at admission);
    #: defaults to ``max(1, rate_limit_hz)`` when a rate is set.
    rate_limit_burst: float | None = None
    #: Stream-time deadline budget per frame; expired frames are shed at
    #: dequeue (``frame.deadline_expired``) instead of served stale.
    deadline_ms: float | None = None
    #: Per-link bound on in-queue frames (engine path): a link over its
    #: credit evicts its *own* oldest frame, keeping backpressure
    #: attributable.  ``None`` keeps global oldest-first eviction.
    queue_credit: int | None = None
    #: Saturation-governor policy; ``None`` disables the degradation
    #: ladder entirely (the surface always serves in FULL mode).
    overload: "OverloadPolicy | None" = None
    #: ``False`` decouples admission from service: ``submit`` only
    #: enqueues, and batches run via explicit
    #: :meth:`~repro.serve.engine.InferenceEngine.pump` / ``flush``
    #: calls.  Open-loop benches use this to model finite service
    #: capacity; the default keeps the legacy synchronous serve loop.
    auto_flush: bool = True

    def __post_init__(self) -> None:
        # The batching triple is one contract, checked as one:
        # min_batch <= max_batch <= queue_capacity, each violation named
        # after the field that broke it.
        if self.min_batch < 1:
            raise ConfigurationError(
                f"min_batch must be >= 1, got {self.min_batch}"
            )
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.min_batch > self.max_batch:
            raise ConfigurationError(
                f"min_batch ({self.min_batch}) must be <= max_batch "
                f"({self.max_batch})"
            )
        if self.queue_capacity < self.max_batch:
            raise ConfigurationError(
                f"max_batch ({self.max_batch}) must be <= queue_capacity "
                f"({self.queue_capacity}); queue_capacity must be >= max_batch"
            )
        if self.arena_slots is not None and self.arena_slots < 1:
            raise ConfigurationError(
                f"arena_slots must be >= 1 (or None), got {self.arena_slots}"
            )
        if self.max_latency_ms is not None and self.max_latency_ms <= 0:
            raise ConfigurationError("max_latency_ms must be positive (or None)")
        if self.stale_after_s is not None and self.stale_after_s <= 0:
            raise ConfigurationError("stale_after_s must be positive (or None)")
        # Overload knobs fail here, with the field named, rather than deep
        # in the engine on the first admitted frame.
        if self.rate_limit_hz is not None and self.rate_limit_hz <= 0:
            raise ConfigError(
                f"rate_limit_hz must be positive (or None), got {self.rate_limit_hz}"
            )
        if self.rate_limit_burst is not None:
            if self.rate_limit_hz is None:
                raise ConfigError("rate_limit_burst needs rate_limit_hz to be set")
            if self.rate_limit_burst < 1:
                raise ConfigError(
                    f"rate_limit_burst must be >= 1 (or None), got {self.rate_limit_burst}"
                )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError(
                f"deadline_ms must be positive (or None), got {self.deadline_ms}"
            )
        if self.queue_credit is not None and self.queue_credit < 1:
            raise ConfigError(
                f"queue_credit must be >= 1 (or None), got {self.queue_credit}"
            )

    def with_overrides(self, **overrides: Any) -> "ServeConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def build_guards(
        self, registry: "MetricsRegistry | None" = None
    ) -> tuple[
        "FrameValidator | None",
        "GapRepairer | None",
        "RecoverySupervisor | None",
    ]:
        """Resolve the guard chain for one stream.

        Explicit component fields win; otherwise, when a ``guard`` policy
        is present, fresh instances are built from it (per-call, so each
        stream gets isolated breaker clocks, cadence state and drift
        windows).  With neither, all three come back ``None`` and the
        engine runs its legacy passthrough behaviour.
        """
        validator, repairer, supervisor = self.validator, self.repairer, self.supervisor
        if self.guard is not None:
            built_v, built_r, built_s = self.guard.build(registry=registry)
            validator = validator if validator is not None else built_v
            repairer = repairer if repairer is not None else built_r
            supervisor = supervisor if supervisor is not None else built_s
        return validator, repairer, supervisor
