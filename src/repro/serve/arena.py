"""Zero-copy frame arenas: preallocated slab storage for in-flight frames.

The legacy admission path allocates a fresh float64 ndarray per submitted
frame (``check_csi_row``'s ``asarray(dtype=float)``), holds it alive in
the queue, and garbage-collects it after the batch runs — at several
hundred thousand frames per second the allocator, not the GEMM, becomes
the bottleneck.  :class:`FrameArena` replaces that churn with a single
preallocated ring of contiguous float32 slabs:

* ``submit_frame`` copies the caller's row **once** into a free slab slot
  and everything downstream — guard validation, gap-repair observation,
  batch assembly, the fastpath GEMM — operates on a *view* of that slot;
* a LIFO free list recycles slots the moment a frame reaches a terminal
  outcome (answered, shed, stale, expired, evicted), so steady-state
  serving performs **zero** per-frame heap allocation;
* every slot carries a **generation counter**: a reference acquired at
  generation *g* can only be read or released while the slot is still at
  *g*.  Double-release and use-after-recycle therefore raise a typed
  :class:`~repro.exceptions.ServingError` instead of silently corrupting
  a neighbouring frame — the property suite in ``tests/serve`` asserts
  zero double-use over randomized burst/lull schedules.

Exhaustion is never an error: when the arena has no free slot (or a frame
arrives with an unexpected width), the engine falls back to the legacy
owned-array path for that frame and counts it — correctness is
unconditional, the arena is purely a fast path.  Occupancy and recycle
totals are exposed through the engine's metrics registry
(``arena_in_use`` / ``arena_acquired_total`` / ``arena_released_total`` /
``arena_fallback_total``), so saturation shows up on the same dashboard
as queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ServingError


@dataclass(frozen=True)
class SlotRef:
    """A capability to read and release one slab slot at one generation.

    The reference is only valid while the slot's generation counter still
    equals :attr:`generation`; the arena bumps the counter on release, so
    a stale reference fails loudly instead of aliasing the slot's next
    occupant.
    """

    slot: int
    generation: int


class FrameArena:
    """A fixed ring of contiguous float32 row slabs with a free list.

    Parameters
    ----------
    n_slots:
        Number of row slots.  Size it to cover the worst simultaneous
        in-flight population (queue capacity plus one in-service batch);
        the engine falls back to owned arrays when the ring is full, so
        undersizing degrades to the legacy path rather than failing.
    width:
        Row width (CSI feature count) every slot holds.
    """

    def __init__(self, n_slots: int, width: int) -> None:
        if n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        self.n_slots = int(n_slots)
        self.width = int(width)
        #: The slab storage itself; row *i* is slot *i*'s payload.
        self.slab = np.zeros((self.n_slots, self.width), dtype=np.float32)
        self._generation = np.zeros(self.n_slots, dtype=np.int64)
        self._free: list[int] = list(range(self.n_slots - 1, -1, -1))
        self._free_set = set(self._free)
        #: Lifetime tallies (mirrored into the engine registry).
        self.acquired_total = 0
        self.released_total = 0

    # ------------------------------------------------------------- occupancy

    @property
    def in_use(self) -> int:
        """Slots currently holding a live frame."""
        return self.n_slots - len(self._free)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------- lifecycle

    def acquire(self, row: np.ndarray) -> SlotRef | None:
        """Copy ``row`` into a free slot; ``None`` when the ring is full.

        This is the *single* copy a frame pays on the arena path.  The
        cast to float32 happens during the copy itself (no intermediate
        array); non-finite float64 values saturate to ``inf`` in float32,
        so the engine's finite gate still catches them on the view.
        """
        if not self._free or np.shape(row) != (self.width,):
            return None
        slot = self._free.pop()
        self._free_set.discard(slot)
        self.slab[slot] = row
        self.acquired_total += 1
        return SlotRef(slot, int(self._generation[slot]))

    def row(self, ref: SlotRef) -> np.ndarray:
        """The live view of a reference's slot (valid until release)."""
        self._check_live(ref)
        return self.slab[ref.slot]

    def release(self, ref: SlotRef) -> None:
        """Return a slot to the free list; the reference dies here.

        Bumps the slot's generation counter so any copy of ``ref`` still
        in flight turns stale — the double-use guard the property tests
        exercise.
        """
        self._check_live(ref)
        self._generation[ref.slot] += 1
        self._free.append(ref.slot)
        self._free_set.add(ref.slot)
        self.released_total += 1

    def _check_live(self, ref: SlotRef) -> None:
        if not 0 <= ref.slot < self.n_slots:
            raise ServingError(f"slot {ref.slot} outside arena of {self.n_slots}")
        if ref.slot in self._free_set:
            raise ServingError(
                f"slot {ref.slot} is free: double release or use-after-release"
            )
        if int(self._generation[ref.slot]) != ref.generation:
            raise ServingError(
                f"slot {ref.slot} recycled: reference generation "
                f"{ref.generation} != current {int(self._generation[ref.slot])}"
            )

    # ------------------------------------------------------------ diagnostics

    def check(self) -> None:
        """Internal-consistency audit (tests call this after campaigns).

        Asserts the free list holds no duplicates, every tally balances
        (``acquired == released + in_use``) and the free bookkeeping's
        two forms agree.  Raises :class:`~repro.exceptions.ServingError`
        on any violation.
        """
        if len(self._free) != len(self._free_set):
            raise ServingError("free list contains duplicate slots")
        if not all(0 <= slot < self.n_slots for slot in self._free):
            raise ServingError("free list holds an out-of-range slot")
        if self.acquired_total - self.released_total != self.in_use:
            raise ServingError(
                f"tally imbalance: acquired {self.acquired_total} - released "
                f"{self.released_total} != in_use {self.in_use}"
            )

    def stats(self) -> dict[str, int]:
        """JSON-ready occupancy/recycle snapshot."""
        return {
            "n_slots": self.n_slots,
            "width": self.width,
            "in_use": self.in_use,
            "acquired_total": self.acquired_total,
            "released_total": self.released_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameArena({self.n_slots}x{self.width}, in_use={self.in_use}, "
            f"recycled={self.released_total})"
        )
