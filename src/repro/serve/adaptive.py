"""Arrival-rate-driven micro-batch sizing: the adaptive flush controller.

A fixed ``max_batch`` schedule is tuned for exactly one traffic level.
Under a lull the queue waits for frames that are not coming (latency
trigger saves it, but only after the full budget elapses); under a burst
a small batch pays Python dispatch per handful of frames while the
backlog compounds.  :class:`AdaptiveBatcher` closes the loop: it keeps an
EWMA estimate of the stream-time inter-arrival interval and picks, per
admitted frame,

* a **batch size** — the number of frames expected inside the configured
  flush budget, snapped to the nearest power of two and clamped to
  ``[min_batch, max_batch]`` (snapping keeps the decision stable: tiny
  rate wobbles cannot flap the queue between 47 and 53); and
* a **flush deadline** — the stream time the chosen batch needs to fill
  at the estimated rate, clamped to ``[budget/8, budget]`` so a lull
  flushes early instead of always waiting out the whole budget.

The controller *never fights the overload governor*: while the
:class:`~repro.overload.governor.SaturationGovernor` sits on any rung
above FULL, :meth:`decide` returns ``max_batch`` with the full budget —
maximum drain throughput — and hands sizing back only when the ladder
has fully recovered.  Escalation logic stays the governor's alone.

Everything here runs in stream time off frame timestamps, so a same-seed
replay makes byte-identical decisions; the engine records each applied
change as a closed-taxonomy ``serve.batch_resize`` event, which the
golden-trace suite covers.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError


class AdaptiveBatcher:
    """EWMA inter-arrival estimator driving (batch size, flush deadline).

    Parameters
    ----------
    min_batch / max_batch:
        Inclusive bounds of the batch-size decision.
    latency_budget_s:
        The configured flush budget (``max_latency_ms`` in stream
        seconds).  ``None`` means the backlogged / offline regime — no
        latency trigger exists, so the controller always recommends
        ``max_batch`` and a ``None`` deadline.
    alpha:
        EWMA smoothing factor over inter-arrival intervals.
    """

    #: Flush deadlines adapt down to this fraction of the budget, no lower.
    MIN_DEADLINE_FRACTION = 0.125

    def __init__(
        self,
        min_batch: int,
        max_batch: int,
        latency_budget_s: float | None,
        alpha: float = 0.2,
    ) -> None:
        if min_batch < 1 or max_batch < min_batch:
            raise ConfigurationError(
                f"need 1 <= min_batch <= max_batch, got {min_batch}/{max_batch}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if latency_budget_s is not None and latency_budget_s <= 0:
            raise ConfigurationError("latency_budget_s must be positive (or None)")
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.latency_budget_s = latency_budget_s
        self.alpha = float(alpha)
        self._interval_ewma: float | None = None
        self._last_t: float | None = None
        #: Arrivals observed (diagnostics only).
        self.arrivals = 0

    # -------------------------------------------------------------- estimate

    @property
    def interval_s(self) -> float | None:
        """The smoothed inter-arrival estimate (None before two arrivals)."""
        return self._interval_ewma

    @property
    def rate_hz(self) -> float | None:
        """The estimated arrival rate, 1/interval (None until warmed up)."""
        if self._interval_ewma is None or self._interval_ewma <= 0.0:
            return None
        return 1.0 / self._interval_ewma

    def observe(self, t_s: float) -> None:
        """Feed one admitted frame's stream timestamp."""
        t_s = float(t_s)
        self.arrivals += 1
        if self._last_t is not None:
            delta = t_s - self._last_t
            if delta >= 0.0:  # reordered frames don't poison the estimate
                if self._interval_ewma is None:
                    self._interval_ewma = delta
                else:
                    self._interval_ewma += self.alpha * (delta - self._interval_ewma)
        self._last_t = max(t_s, self._last_t) if self._last_t is not None else t_s

    # --------------------------------------------------------------- decide

    def decide(self, governor_severity: int = 0) -> tuple[int, float | None]:
        """The (batch size, flush deadline seconds) for the current rate.

        ``governor_severity`` is the overload ladder rung (0 = FULL); any
        escalation forces the drain configuration so the batcher and the
        governor pull in the same direction.
        """
        budget = self.latency_budget_s
        if budget is None or governor_severity > 0:
            return self.max_batch, budget
        rate = self.rate_hz
        if rate is None:
            return self.max_batch, budget
        target = rate * budget  # frames expected inside one flush budget
        batch = self._snap(target)
        # Deadline: time the chosen batch needs to fill, bounded so a
        # lull still flushes promptly and a burst never exceeds budget.
        fill_s = batch / rate if rate > 0 else budget
        deadline = min(budget, max(budget * self.MIN_DEADLINE_FRACTION, fill_s))
        return batch, deadline

    def _snap(self, target: float) -> int:
        """Clamp ``target`` to bounds, snapped to the nearest power of two."""
        if target <= self.min_batch:
            return self.min_batch
        if target >= self.max_batch:
            return self.max_batch
        power = 1
        while power * 2 <= target:
            power *= 2
        # Round to whichever neighbouring power is (geometrically) closer.
        snapped = power * 2 if target * target > power * power * 2 else power
        return max(self.min_batch, min(self.max_batch, snapped))
