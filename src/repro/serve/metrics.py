"""Pipeline observability: a small in-process metrics registry.

The serving engine and the training loop both need the same three
primitives — monotonically increasing counters, last-value gauges and
value-distribution histograms — without dragging in a metrics client
library.  :class:`MetricsRegistry` is a get-or-create namespace of those
primitives; everything is plain Python + numpy, cheap enough to update on
every frame.

The registry is shared infrastructure, not serving-specific:
:class:`TrainingMetricsCallback` plugs it into
:class:`~repro.nn.train.Trainer` so per-epoch loss and wall time land in
the same report as frames/s and batch latency.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.train import TrainerCallback


class Counter:
    """Monotonically increasing count (frames in, batches run, drops)."""

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-observed value (queue depth, current loss)."""

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Distribution summary over observed values (batch sizes, latencies).

    Keeps a bounded ring of raw samples: once ``max_samples`` is reached,
    new observations overwrite the oldest, so the percentiles track the
    recent window while ``count``/``total`` stay exact lifetime totals.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ConfigurationError("max_samples must be >= 1")
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._write = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._samples[self._write] = value
            self._write = (self._write + 1) % self._max_samples

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the retained sample window."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, q))

    def values(self) -> list[float]:
        """The retained window in observation order (oldest first).

        Before the ring wraps this is simply the samples as observed;
        after wrapping, the oldest surviving sample leads.  Summary
        percentiles/``max`` are computed over exactly this window, while
        ``count``/``total`` keep counting evicted samples.
        """
        return self._samples[self._write :] + self._samples[: self._write]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self._samples) if self._samples else float("nan"),
        }


class MetricsRegistry:
    """Named metrics, get-or-create semantics, one text report.

    >>> registry = MetricsRegistry()
    >>> registry.counter("frames_in").inc()
    >>> registry.gauge("queue_depth").set(3)
    >>> registry.histogram("batch_latency_ms").observe(1.7)
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get_or_create(self, table: dict, name: str, factory):
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ConfigurationError(f"metric {name!r} already registered as another kind")
        if name not in table:
            table[name] = factory()
        return table[name]

    def counter(self, name: str) -> Counter:
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get_or_create(
            self._histograms, name, lambda: Histogram(max_samples)
        )

    # Read-only views by kind: the Prometheus exposition renderer
    # (:mod:`repro.obs.exposition`) needs to know counter from gauge,
    # which the flat ``as_dict`` snapshot erases.

    @property
    def counters(self) -> dict[str, Counter]:
        """Snapshot copy of the registered counters by name."""
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        """Snapshot copy of the registered gauges by name."""
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Snapshot copy of the registered histograms by name."""
        return dict(self._histograms)

    def as_dict(self) -> dict[str, object]:
        """Flat snapshot: counters/gauges -> float, histograms -> summary."""
        out: dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[name] = hist.summary()
        return out

    def report(self, title: str | None = None) -> str:
        """Human-readable dump, one metric per line, sorted by name."""
        lines: list[str] = [title] if title else []
        rows: list[tuple[str, str]] = []
        for name, counter in self._counters.items():
            rows.append((name, f"{counter.value:g}"))
        for name, gauge in self._gauges.items():
            rows.append((name, f"{gauge.value:g}"))
        for name, hist in self._histograms.items():
            s = hist.summary()
            rows.append(
                (name,
                 f"count={s['count']:g} mean={s['mean']:.3f} "
                 f"p50={s['p50']:.3f} p95={s['p95']:.3f} max={s['max']:.3f}")
            )
        width = max((len(name) for name, _ in rows), default=0)
        lines.extend(f"{name.ljust(width)}  {text}" for name, text in sorted(rows))
        return "\n".join(lines)


class TrainingMetricsCallback(TrainerCallback):
    """Feeds per-epoch loss and wall time into a :class:`MetricsRegistry`.

    Attach to :meth:`repro.nn.train.Trainer.fit` via ``callbacks=[...]`` so
    training runs report through the same registry as the serving engine:

    * counter ``<prefix>_epochs`` — epochs completed;
    * gauge ``<prefix>_loss`` — latest training loss;
    * histogram ``<prefix>_epoch_time_s`` — per-epoch wall time;
    * histogram ``<prefix>_loss_per_epoch`` — training-loss trajectory;
    * gauge ``<prefix>_val_loss`` — latest validation loss (when present).
    """

    def __init__(self, registry: MetricsRegistry, prefix: str = "train") -> None:
        self.registry = registry
        self.prefix = prefix

    def on_epoch_end(self, epoch: int, logs: dict[str, float]) -> None:
        p = self.prefix
        self.registry.counter(f"{p}_epochs").inc()
        self.registry.gauge(f"{p}_loss").set(logs["train_loss"])
        self.registry.histogram(f"{p}_loss_per_epoch").observe(logs["train_loss"])
        self.registry.histogram(f"{p}_epoch_time_s").observe(logs["duration_s"])
        if "val_loss" in logs:
            self.registry.gauge(f"{p}_val_loss").set(logs["val_loss"])
