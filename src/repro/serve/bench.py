"""serve-bench: per-frame vs. micro-batched serving throughput.

The benchmark replays one recorded campaign as ``n_links`` interleaved
frame streams (round-robin, as a building with several sniffers would
produce) and pushes the identical frames through

1. the per-frame path — one :class:`~repro.data.streaming.StreamingDetector`
   per link, one ``predict`` call per frame; and
2. the micro-batched path — a single
   :class:`~repro.serve.engine.InferenceEngine` shared by all links.

Both paths run the same model and the same smoothing/debounce state
machine, so the frames/s ratio isolates exactly what micro-batching buys:
vectorizing the model forward pass over the batch.  The engine's metrics
registry comes back inside the report, so queue depth and batch-latency
percentiles print alongside the throughput numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import OccupancyDataset
from ..data.streaming import StreamingDetector
from ..exceptions import ConfigurationError
from .config import ServeConfig
from .engine import InferenceEngine
from .metrics import MetricsRegistry
from .robustness import FallbackPredictor


@dataclass
class ServeBenchReport:
    """Timing and metrics from one serve-bench run."""

    n_frames: int
    n_links: int
    max_batch: int
    per_frame_s: float
    batched_s: float
    per_frame_transitions: int
    batched_transitions: int
    registry: MetricsRegistry = field(repr=False)

    @property
    def per_frame_fps(self) -> float:
        return self.n_frames / self.per_frame_s if self.per_frame_s > 0 else float("inf")

    @property
    def batched_fps(self) -> float:
        return self.n_frames / self.batched_s if self.batched_s > 0 else float("inf")

    @property
    def speedup(self) -> float:
        return self.batched_fps / self.per_frame_fps if self.per_frame_fps > 0 else float("inf")

    def describe(self) -> str:
        lines = [
            f"frames replayed      : {self.n_frames} across {self.n_links} link(s)",
            f"per-frame path       : {self.per_frame_fps:10.1f} frames/s "
            f"({self.per_frame_s:.3f} s, {self.per_frame_transitions} transitions)",
            f"micro-batched path   : {self.batched_fps:10.1f} frames/s "
            f"({self.batched_s:.3f} s, {self.batched_transitions} transitions, "
            f"max_batch={self.max_batch})",
            f"speedup              : {self.speedup:10.2f}x",
            "",
            self.registry.report("engine metrics:"),
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload for the common bench envelope (see repro.benchkit)."""
        return {
            "bench": "serve-bench",
            "workload": {
                "n_frames": self.n_frames,
                "n_links": self.n_links,
                "max_batch": self.max_batch,
            },
            "throughput_fps": {
                "per_frame": self.per_frame_fps,
                "batched": self.batched_fps,
                "speedup": self.speedup,
            },
            "wall_s": {"per_frame": self.per_frame_s, "batched": self.batched_s},
            "transitions": {
                "per_frame": self.per_frame_transitions,
                "batched": self.batched_transitions,
            },
        }


def _interleaved_frames(
    dataset: OccupancyDataset, n_links: int
) -> list[tuple[str, float, np.ndarray]]:
    """Round-robin the campaign rows over ``n_links`` simulated sniffers."""
    link_ids = [f"link-{i}" for i in range(n_links)]
    t = dataset.timestamps_s
    csi = dataset.csi
    return [
        (link_ids[i % n_links], float(t[i]), csi[i])
        for i in range(len(dataset))
    ]


def run_serve_bench(
    estimator,
    dataset: OccupancyDataset,
    *,
    n_links: int = 4,
    max_batch: int = 64,
    max_latency_ms: float | None = None,
    queue_capacity: int | None = None,
    window: int = 5,
    hold_frames: int = 3,
    fallback: FallbackPredictor | None = None,
) -> ServeBenchReport:
    """Replay ``dataset`` through both serving paths and time them.

    The estimator must already be fitted; it is shared (read-only) by both
    paths.  The default ``max_latency_ms=None`` benchmarks the backlogged
    regime (every batch fills to ``max_batch``) — heavy traffic is exactly
    where micro-batching earns its keep; pass a budget to model a lightly
    loaded deployment instead.  Returns the :class:`ServeBenchReport`
    with the engine's metrics registry attached.
    """
    if n_links < 1:
        raise ConfigurationError("n_links must be >= 1")
    if len(dataset) == 0:
        raise ConfigurationError("dataset is empty; nothing to replay")
    frames = _interleaved_frames(dataset, n_links)

    # Per-frame path: one stateful detector per link, one predict per frame.
    detectors = {
        f"link-{i}": StreamingDetector(estimator, window=window, hold_frames=hold_frames)
        for i in range(n_links)
    }
    start = time.perf_counter()
    per_frame_transitions = 0
    for link_id, t_s, csi_row in frames:
        if detectors[link_id].update(t_s, csi_row) is not None:
            per_frame_transitions += 1
    per_frame_s = time.perf_counter() - start

    # Micro-batched path: one shared engine, vectorized over the batch.
    engine = InferenceEngine(
        estimator,
        ServeConfig(
            max_batch=max_batch,
            max_latency_ms=max_latency_ms,
            queue_capacity=(
                queue_capacity if queue_capacity is not None else 4 * max_batch
            ),
            window=window,
            hold_frames=hold_frames,
            fallback=fallback,
        ),
    )
    start = time.perf_counter()
    batched_transitions = 0
    for link_id, t_s, csi_row in frames:
        for result in engine.submit(link_id, t_s, csi_row):
            if result.transition is not None:
                batched_transitions += 1
    for result in engine.flush():
        if result.transition is not None:
            batched_transitions += 1
    batched_s = time.perf_counter() - start

    return ServeBenchReport(
        n_frames=len(frames),
        n_links=n_links,
        max_batch=max_batch,
        per_frame_s=per_frame_s,
        batched_s=batched_s,
        per_frame_transitions=per_frame_transitions,
        batched_transitions=batched_transitions,
        registry=engine.registry,
    )
