"""Typed submission results shared by the engine and fleet paths.

PR 3/4 plumbing let :class:`~repro.serve.queue.PendingFrame` and ad-hoc
tuples leak through the submission API: callers had to count frames
themselves to learn the id ``submit`` assigned, and fleet code had no
uniform way to say "this result belongs to tenant X".  The types here
normalise that surface:

* :class:`FrameTicket` — what every ``submit_frame`` call returns: the
  monotonic frame id, the tenant (link) id, the admission outcome, and
  whatever results the submission flushed.  The ticket is the join key
  into the :mod:`repro.obs` trace/event stores.
* results everywhere carry ``tenant_id``/``frame_id`` —
  :class:`~repro.serve.engine.InferenceResult` exposes ``tenant_id`` as
  an alias of ``link_id`` so single-engine and fleet code read the same.

Admission outcomes form a tiny closed vocabulary (:data:`TICKET_OUTCOMES`):
``"enqueued"`` (admitted; results may already be attached if the frame
tipped a batch), ``"rejected"`` (failed the basic shape/finite gate),
``"quarantined"`` (failed the validator chain; the frame is in the
engine's quarantine buffer with its verdict) and ``"rate_limited"``
(refused by the tenant's token-bucket rate limiter — the overload
control plane's typed backpressure signal, see :mod:`repro.overload`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import RateLimitError, StreamError

if TYPE_CHECKING:  # pragma: no cover - cycle guard, types only
    from .engine import InferenceResult

#: The closed set of admission outcomes a ticket can carry.
TICKET_OUTCOMES = ("enqueued", "rejected", "quarantined", "rate_limited")


@dataclass(frozen=True)
class FrameTicket:
    """Receipt for one submitted frame.

    ``results`` holds the :class:`~repro.serve.engine.InferenceResult`
    objects *this submission* flushed — usually empty (the frame is
    waiting in the micro-batch queue), occasionally the whole batch the
    frame completed.  A result for this very frame, when present, is the
    element whose ``frame_id`` matches :attr:`frame_id`.
    """

    #: Stream identity — the engine's ``link_id``, the fleet's tenant id.
    tenant_id: str
    #: Monotonic id the engine assigned; joins traces, events and results.
    frame_id: int
    #: Frame timestamp (stream time, seconds).
    t_s: float
    #: One of :data:`TICKET_OUTCOMES`.
    outcome: str
    #: Results flushed by this submission (any tenant, any frame id).
    results: "tuple[InferenceResult, ...]" = field(default_factory=tuple)

    @property
    def admitted(self) -> bool:
        """True when the frame made it past every admission gate."""
        return self.outcome == "enqueued"

    def require_admitted(self) -> "FrameTicket":
        """Return self when admitted, else raise a typed error.

        ``"rate_limited"`` raises :class:`~repro.exceptions.RateLimitError`
        (the caller overran its reserved rate — retry after backing off);
        the other refusals raise :class:`~repro.exceptions.StreamError`
        (the frame itself was bad).  Lets strict callers write
        ``engine.submit_frame(...).require_admitted()`` instead of
        string-matching outcomes.
        """
        if self.admitted:
            return self
        if self.outcome == "rate_limited":
            raise RateLimitError(
                f"tenant {self.tenant_id!r} frame {self.frame_id} at "
                f"t={self.t_s:g}s refused: over its reserved admission rate"
            )
        raise StreamError(
            f"tenant {self.tenant_id!r} frame {self.frame_id} at "
            f"t={self.t_s:g}s refused at admission: {self.outcome}"
        )
