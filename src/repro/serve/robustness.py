"""Robustness layer: fallback predictors and per-link health states.

An always-on building controller must keep emitting *some* occupancy
signal even when the primary model misbehaves (corrupted weights, a
feature-width mismatch after a firmware update, numerical blow-up).  The
engine therefore wraps every batch inference in a two-tier policy:

1. try the primary estimator's ``predict_proba``;
2. on any exception, route the same batch to a cheap fallback predictor
   and mark the affected links ``DEGRADED``.

Only when the fallback *also* fails does the engine raise
:class:`~repro.exceptions.ServingError` — at that point the stream is
genuinely dead and someone should be paged.
"""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError, ShapeError


class LinkHealth(enum.Enum):
    """Serving state of one link, exposed by ``InferenceEngine.health``."""

    #: No frame from this link has completed inference yet.
    IDLE = "idle"
    #: Last result came from the primary estimator.
    HEALTHY = "healthy"
    #: Last result came from the fallback, or the last frame was dropped
    #: as stale — the link is alive but the answer quality is reduced.
    DEGRADED = "degraded"


@runtime_checkable
class FallbackPredictor(Protocol):
    """Anything with a vectorized ``predict_proba`` can back up the primary."""

    def predict_proba(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class PriorFallback:
    """Constant-probability fallback: answer the campaign's occupancy prior.

    The cheapest predictor that is still calibrated in aggregate.  With
    the paper's Table II distribution (63.2 % empty) the sensible prior is
    ~0.37, biasing a blind system toward "empty" — the safe default for
    lighting/HVAC control.
    """

    def __init__(self, prior: float = 0.37) -> None:
        if not 0.0 <= prior <= 1.0:
            raise ConfigurationError("prior must be a probability in [0, 1]")
        self.prior = prior

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PriorFallback":
        """Set the prior to the empirical occupancy rate of ``y``."""
        y = np.asarray(y, dtype=float).ravel()
        if y.size:
            self.prior = float(np.mean(y))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(x).shape[0], self.prior)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)


class EnvThresholdFallback:
    """Env-only fallback for CSI+Env feature rows.

    When the primary model dies but the feature rows still carry the two
    environment columns (temperature, humidity at ``env_slice``), a warm
    and humid office is probably occupied.  A fixed logistic over the
    temperature excess above ``threshold_c`` gives a smooth, monotone
    probability without any training.
    """

    def __init__(self, env_slice: slice = slice(64, 66), threshold_c: float = 21.5,
                 scale_c: float = 1.0) -> None:
        if scale_c <= 0:
            raise ConfigurationError("scale_c must be positive")
        self.env_slice = env_slice
        self.threshold_c = threshold_c
        self.scale_c = scale_c

    def _env_columns(self, width: int) -> slice:
        """Validate the feature width before touching ``env_slice``.

        A CSI-only batch (64 columns with the default layout) used to
        produce an *empty* slice here and crash with a bare IndexError —
        the one failure mode a fallback predictor must not have.
        """
        start, stop, step = self.env_slice.indices(width)
        wanted_stop = self.env_slice.stop
        if (wanted_stop is not None and wanted_stop > width) or not range(start, stop, step):
            raise ShapeError(
                f"EnvThresholdFallback expects feature rows carrying environment "
                f"columns at {self.env_slice.start}:{self.env_slice.stop} (e.g. 64 "
                f"CSI subcarriers followed by temperature and humidity), got width "
                f"{width} — CSI-only rows have no T/H columns; use PriorFallback"
            )
        return slice(start, stop, step)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"expected a 2-D feature batch, got shape {x.shape}")
        temperature = x[:, self._env_columns(x.shape[1])][:, 0]
        z = (temperature - self.threshold_c) / self.scale_c
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)
