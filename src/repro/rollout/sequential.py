"""Anytime-valid champion/challenger comparison via betting e-processes.

A fixed-N evaluation of a challenger model answers the wrong question for
a live rollout: peeking at the running score and stopping "when it looks
significant" destroys a classical test's error control, while waiting for
a preregistered N serves a known-worse (or known-better) model for the
whole window.  :class:`SequentialComparison` replaces it with two
one-sided **e-processes** (test supermartingales) over the per-frame
correctness deltas

``d_i = challenger_correct_i − champion_correct_i ∈ {−1, 0, +1}``,

in the spirit of deep anytime-valid hypothesis testing: observe one frame
at a time, update both processes, and stop *the instant* either crosses
``1/α`` — the decision is valid at any data-dependent stopping time.

The win process tests "challenger is NOT better than the champion by more
than ``−margin``" (H0: ``E[d] ≤ −margin``) with the λ-mixture wealth

``E_win(n) = mean_λ ∏_{i≤n} (1 + λ · (d_i + margin))``,

a nonnegative supermartingale under H0 for any ``λ ∈ (0, 1/(1+margin))``,
so by Ville's inequality ``P(sup_n E_win ≥ 1/α) ≤ α``: promoting when it
crosses ``1/α`` wrongly promotes a not-better challenger with probability
at most α *no matter when or how often the score is inspected*.  The loss
process is the mirror image over ``−d_i``, catching a strictly worse
challenger early.  ``margin`` is the tolerance: with ``margin > 0`` a
challenger within ``margin`` of the champion's per-frame accuracy still
counts as a (non-inferior) win — the deployment-relevant question when
drift has already collapsed the champion.

Mixing over a small λ grid (rather than committing to one bet size)
keeps the process powerful across effect sizes: small λ wins slowly but
surely on small deltas, large λ compounds fast on large ones, and the
mixture of supermartingales is a supermartingale.  Everything here is
pure arithmetic over the delta counts — deterministic, allocation-free,
and independent of wall clock, so rollout decisions replay byte-identically
in the golden-trace tests.
"""

from __future__ import annotations

import enum
import math

from ..exceptions import ConfigurationError

#: Default λ grid: geometric sweep from cautious to aggressive bets.
DEFAULT_LAMBDAS = (0.05, 0.1, 0.2, 0.4)


class Verdict(enum.Enum):
    """The comparison's state after an update."""

    CONTINUE = "continue"   #: no boundary crossed yet — keep shadowing
    PROMOTE = "promote"     #: anytime-valid win: swap the challenger in
    REJECT = "reject"       #: anytime-valid loss: discard the challenger
    FUTILITY = "futility"   #: budget exhausted with no decision

    @property
    def decided(self) -> bool:
        return self is not Verdict.CONTINUE


class SequentialComparison:
    """Two one-sided e-processes over per-frame correctness deltas.

    Parameters
    ----------
    alpha:
        Error budget per side; each process stops at wealth ``1/alpha``.
    margin:
        Non-inferiority tolerance in per-frame accuracy.  ``0.0`` demands
        strict superiority; ``0.02`` promotes a challenger at most 2
        accuracy points *worse* per frame — and symmetrically makes the
        loss side only fire on challengers more than ``margin`` worse.
    lambdas:
        Bet-size mixture grid.  Every λ must lie in ``(0, 1/(1+margin))``
        so both processes' wealth terms stay strictly positive.
    min_frames:
        Frames observed before any boundary may fire (guards against
        deciding on a handful of lucky deltas; the e-process would still
        be valid without it, this is an operational floor).
    max_frames:
        Futility budget: with no boundary crossed after this many
        labelled frames, the shadow run stops undecided.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.05,
        margin: float = 0.0,
        lambdas: tuple[float, ...] = DEFAULT_LAMBDAS,
        min_frames: int = 16,
        max_frames: int = 4096,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError("alpha must lie in (0, 1)")
        if not 0.0 <= margin < 1.0:
            raise ConfigurationError("margin must lie in [0, 1)")
        if not lambdas:
            raise ConfigurationError("lambdas must be non-empty")
        bound = 1.0 / (1.0 + margin)
        if any(not 0.0 < lam < bound for lam in lambdas):
            raise ConfigurationError(
                f"every lambda must lie in (0, {bound:.4f}) "
                f"(= 1/(1+margin)) to keep the wealth terms positive"
            )
        if min_frames < 1:
            raise ConfigurationError("min_frames must be >= 1")
        if max_frames < min_frames:
            raise ConfigurationError("max_frames must be >= min_frames")
        self.alpha = float(alpha)
        self.margin = float(margin)
        self.lambdas = tuple(float(lam) for lam in lambdas)
        self.min_frames = int(min_frames)
        self.max_frames = int(max_frames)
        # Deltas take only three values, so each λ's log-wealth increment
        # is one of three precomputed numbers per side — an update is a
        # table lookup, not a log1p call.
        self._log_win = [
            tuple(math.log1p(lam * (d + self.margin)) for d in (-1.0, 0.0, 1.0))
            for lam in self.lambdas
        ]
        self._log_loss = [
            tuple(math.log1p(lam * (-d - self.margin)) for d in (-1.0, 0.0, 1.0))
            for lam in self.lambdas
        ]
        self._log_e_win = [0.0] * len(self.lambdas)
        self._log_e_loss = [0.0] * len(self.lambdas)
        self.n = 0
        self.wins = 0      # frames where only the challenger was correct
        self.losses = 0    # frames where only the champion was correct
        self.ties = 0      # both right or both wrong
        self._verdict = Verdict.CONTINUE
        self.decided_at: int | None = None

    # ------------------------------------------------------------- updating

    def update(self, champion_correct, challenger_correct) -> Verdict:
        """Feed one labelled frame's outcomes; returns the current verdict.

        Decisions are sticky: once a boundary fires, further calls return
        the settled verdict without accumulating (the shadow run is over).
        """
        if self._verdict.decided:
            return self._verdict
        delta = int(bool(challenger_correct)) - int(bool(champion_correct))
        slot = delta + 1
        if delta > 0:
            self.wins += 1
        elif delta < 0:
            self.losses += 1
        else:
            self.ties += 1
        self.n += 1
        for k in range(len(self.lambdas)):
            self._log_e_win[k] += self._log_win[k][slot]
            self._log_e_loss[k] += self._log_loss[k][slot]
        return self._check()

    def update_many(self, champion_correct, challenger_correct) -> Verdict:
        """Vector form of :meth:`update`; stops early once decided."""
        for champ, chall in zip(champion_correct, challenger_correct):
            verdict = self.update(champ, chall)
            if verdict.decided:
                return verdict
        return self._verdict

    def _check(self) -> Verdict:
        if self.n >= self.min_frames:
            threshold = 1.0 / self.alpha
            if self.e_win >= threshold:
                self._decide(Verdict.PROMOTE)
            elif self.e_loss >= threshold:
                self._decide(Verdict.REJECT)
        if not self._verdict.decided and self.n >= self.max_frames:
            self._decide(Verdict.FUTILITY)
        return self._verdict

    def _decide(self, verdict: Verdict) -> None:
        self._verdict = verdict
        self.decided_at = self.n

    # ------------------------------------------------------------ inspection

    @property
    def verdict(self) -> Verdict:
        return self._verdict

    @property
    def e_win(self) -> float:
        """Mixture wealth of the "challenger wins" process."""
        return sum(math.exp(v) for v in self._log_e_win) / len(self.lambdas)

    @property
    def e_loss(self) -> float:
        """Mixture wealth of the "challenger loses" process."""
        return sum(math.exp(v) for v in self._log_e_loss) / len(self.lambdas)

    @property
    def mean_delta(self) -> float:
        """Running mean of the correctness deltas (0.0 before any frame)."""
        return (self.wins - self.losses) / self.n if self.n else 0.0

    def snapshot(self) -> dict:
        """JSON-stable state for obs events and bench reports."""
        return {
            "n": self.n,
            "wins": self.wins,
            "losses": self.losses,
            "ties": self.ties,
            "e_win": self.e_win,
            "e_loss": self.e_loss,
            "mean_delta": self.mean_delta,
            "verdict": self._verdict.value,
        }

    def __repr__(self) -> str:
        return (
            f"SequentialComparison(n={self.n}, e_win={self.e_win:.3g}, "
            f"e_loss={self.e_loss:.3g}, verdict={self._verdict.value})"
        )
