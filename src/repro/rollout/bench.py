"""The ``rollout-bench`` harness: a simulated room shift, end to end.

Drives one engine through a seeded synthetic stream with an abrupt
mid-run **room shift** (a per-subcarrier affine remap of the CSI rows —
the furniture moved, the antenna turned) and exercises the whole
self-healing loop of :mod:`repro.rollout`:

drift sentinel TRIP → :class:`~repro.rollout.retrain.RetrainTrigger`
fine-tunes a challenger from the best-validation checkpoint on
post-drift frames → :class:`~repro.rollout.shadow.ShadowRunner` mirrors
live traffic → the anytime-valid
:class:`~repro.rollout.sequential.SequentialComparison` decides → the
:class:`~repro.rollout.promote.RolloutManager` hot-swaps the winner with
drain-before-swap semantics.

Two arms run from the same seed:

* **healthy** — the real retrain recipe; must end in exactly one
  promotion, with **zero dropped frames** and the shadow ledger
  reconciling *exactly* against the champion's frame counts;
* **forced-bad** — a sabotaged trigger freezing an untrained challenger;
  must end in a futility stop or rejection, **never** a promotion.
  The error control is the point: a garbage challenger surviving the
  sequential comparison would be a bug, not bad luck.

The report carries frames-to-detection (shift → sentinel TRIP),
frames-to-promotion (shift → hot-swap), the dropped-frame count, served
accuracy before / during / after the shift window, and the SHA-1 of the
champion's event-log dump (the byte-identical determinism surface).  CI
gates on the deterministic invariants only — drops, reconciliation, and
the two arms' verdicts — never on wall-clock numbers.
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass

import numpy as np

from ..baselines.scaler import StandardScaler
from ..benchkit import DEFAULT_SEED
from ..config import BehaviorConfig, CampaignConfig
from ..core.model_zoo import build_paper_mlp
from ..data.recording import CollectionCampaign
from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..guard.drift import DriftSentinel, ReferenceStats
from ..guard.supervisor import RecoverySupervisor
from ..nn.checkpoint import CheckpointCallback
from ..nn.losses import bce_with_logits_loss
from ..nn.optim import AdamW
from ..nn.train import Trainer
from ..obs.observer import Observer
from ..serve.config import ServeConfig
from ..serve.engine import InferenceEngine
from .promote import RolloutManager
from .retrain import RetrainTrigger
from .sequential import SequentialComparison

#: Stream cadence of the bench (frames per second of stream time).
BENCH_RATE_HZ = 2.0


class _SabotagedTrigger(RetrainTrigger):
    """A trigger whose "retrain" freezes an untrained, randomly
    initialised model — the forced-bad challenger.  Everything else
    (arming, buffering, checkpoint plumbing) is the real path."""

    def retrain(self, *, version: int = 0, label: str | None = None) -> InferencePlan:
        if self.buffered < self.min_frames:
            raise ConfigurationError(
                f"retrain needs >= {self.min_frames} buffered frames, "
                f"have {self.buffered}"
            )
        n_inputs = self.buffered_rows().shape[1]
        garbage = build_paper_mlp(n_inputs, seed=version + 7)
        self.retrains += 1
        return InferencePlan.from_model(
            garbage, scaler=self.scaler, version=version, label=label
        )


@dataclass
class RolloutArmStats:
    """What one arm (healthy or forced-bad) of the bench did."""

    promotions: int
    rollbacks: int
    stops: int
    frames_served: int
    dropped_frames: int
    frames_to_detection: int | None
    frames_to_promotion: int | None
    accuracy_before: float
    accuracy_during: float
    accuracy_after: float | None
    ledger_exact: bool
    shadow_frames: int
    champion_frames_during_shadow: int
    event_log_sha1: str


@dataclass
class RolloutBenchReport:
    """Everything one rollout-bench run measured."""

    n_train: int
    n_stream: int
    shift_at: int
    seed: int
    healthy: RolloutArmStats
    forced_bad: RolloutArmStats

    @property
    def zero_drops(self) -> bool:
        return (
            self.healthy.dropped_frames == 0 and self.forced_bad.dropped_frames == 0
        )

    @property
    def ledgers_reconciled(self) -> bool:
        return self.healthy.ledger_exact and self.forced_bad.ledger_exact

    @property
    def healthy_promoted(self) -> bool:
        return self.healthy.promotions >= 1 and self.healthy.rollbacks == 0

    @property
    def bad_never_promoted(self) -> bool:
        return self.forced_bad.promotions == 0 and self.forced_bad.stops >= 1

    def describe(self) -> str:
        h, b = self.healthy, self.forced_bad

        def fmt(value) -> str:
            return "n/a" if value is None else f"{value}"

        lines = [
            f"workload             : {self.n_train} train + {self.n_stream} "
            f"streamed frames, room shift at frame {self.shift_at}, "
            f"seed {self.seed}",
            f"healthy arm          : {h.promotions} promotion(s), "
            f"{h.stops} stop(s), {h.rollbacks} rollback(s)",
            f"  detection          : {fmt(h.frames_to_detection)} frames "
            f"shift -> sentinel TRIP",
            f"  promotion          : {fmt(h.frames_to_promotion)} frames "
            f"shift -> hot-swap",
            f"  accuracy           : {h.accuracy_before:.3f} before, "
            f"{h.accuracy_during:.3f} during, "
            + ("n/a after" if h.accuracy_after is None
               else f"{h.accuracy_after:.3f} after"),
            f"  dropped frames     : {h.dropped_frames} "
            f"({'OK' if h.dropped_frames == 0 else 'FAILED'})",
            f"  shadow ledger      : {h.shadow_frames} mirrored vs "
            f"{h.champion_frames_during_shadow} served "
            f"({'exact' if h.ledger_exact else 'MISMATCH'})",
            f"forced-bad arm       : {b.promotions} promotion(s), "
            f"{b.stops} stop(s), {b.rollbacks} rollback(s) "
            f"({'OK' if self.bad_never_promoted else 'FAILED'})",
            f"  dropped frames     : {b.dropped_frames} "
            f"({'OK' if b.dropped_frames == 0 else 'FAILED'})",
            f"event log sha1       : {h.event_log_sha1[:12]} (healthy), "
            f"{b.event_log_sha1[:12]} (forced-bad)",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload written as ``BENCH_rollout.json`` (CLI adds envelope).

        The ``gates`` block holds the CI-gated deterministic invariants;
        accuracy and frame counts are informational.
        """

        def arm(stats: RolloutArmStats) -> dict:
            return {
                "promotions": stats.promotions,
                "rollbacks": stats.rollbacks,
                "stops": stats.stops,
                "frames_served": stats.frames_served,
                "dropped_frames": stats.dropped_frames,
                "frames_to_detection": stats.frames_to_detection,
                "frames_to_promotion": stats.frames_to_promotion,
                "accuracy_before": stats.accuracy_before,
                "accuracy_during": stats.accuracy_during,
                "accuracy_after": stats.accuracy_after,
                "ledger_exact": stats.ledger_exact,
                "shadow_frames": stats.shadow_frames,
                "champion_frames_during_shadow": stats.champion_frames_during_shadow,
                "event_log_sha1": stats.event_log_sha1,
            }

        return {
            "bench": "rollout-bench",
            "workload": {
                "n_train": self.n_train,
                "n_stream": self.n_stream,
                "shift_at": self.shift_at,
            },
            "gates": {
                "zero_drops": self.zero_drops,
                "ledgers_reconciled": self.ledgers_reconciled,
                "healthy_promoted": self.healthy_promoted,
                "bad_never_promoted": self.bad_never_promoted,
            },
            "healthy": arm(self.healthy),
            "forced_bad": arm(self.forced_bad),
        }


def _room_shift(rows: np.ndarray) -> np.ndarray:
    """The simulated room shift: per-subcarrier amplitude inversion.

    Each subcarrier's amplitude is mirrored inside its observed range and
    re-gained — the multipath response of a rearranged room, where paths
    that used to be shadowed now dominate and vice versa.  The map is
    affine and invertible, so the shifted room is exactly as separable as
    the old one (a retrained challenger *can* learn it), but it flips the
    sign of every amplitude deviation the champion keys on: measured
    champion accuracy drops to chance.  The asymmetric gain additionally
    moves the per-subcarrier means so the drift sentinel fires within a
    handful of frames.
    """
    n = rows.shape[1]
    lo, hi = rows.min(axis=0), rows.max(axis=0)
    gain = np.where(np.arange(n) % 2 == 0, 1.6, 0.7)
    return (lo + hi - rows) * gain


def _run_arm(
    *,
    trigger_cls,
    x_train: np.ndarray,
    y_train: np.ndarray,
    stream_rows: np.ndarray,
    stream_labels: np.ndarray,
    shift_at: int,
    seed: int,
    train_epochs: int,
    retrain_epochs: int,
    min_frames: int,
    max_shadow_frames: int,
    checkpoint_dir: str,
) -> RolloutArmStats:
    """Train a champion, stream the shifted traffic, run the rollout loop."""
    n_inputs = x_train.shape[1]
    dt = 1.0 / BENCH_RATE_HZ

    # ---------------------------------------------------- champion training
    scaler = StandardScaler()
    n_val = max(16, len(x_train) // 5)
    x_fit, y_fit = x_train[:-n_val], y_train[:-n_val]
    x_val, y_val = x_train[-n_val:], y_train[-n_val:]
    x_fit_scaled = scaler.fit_transform(x_fit)
    model = build_paper_mlp(n_inputs, seed=seed)
    optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=1e-4)
    trainer = Trainer(
        model, optimizer, bce_with_logits_loss,
        batch_size=64, rng=np.random.default_rng(seed),
    )
    checkpoint = CheckpointCallback(trainer, checkpoint_dir, keep_last=2)
    trainer.fit(
        x_fit_scaled, y_fit, epochs=train_epochs,
        x_val=scaler.transform(x_val), y_val=y_val,
        callbacks=[checkpoint],
    )
    champion = InferencePlan.from_model(
        model, scaler=scaler, version=0, label="champion"
    )

    # ------------------------------------------------------- serving surface
    sentinel = DriftSentinel(
        ReferenceStats.fit(x_train), alpha=0.1, window=64, check_every=16
    )
    engine = InferenceEngine(
        champion,
        ServeConfig(
            max_batch=8,
            max_latency_ms=None,
            stale_after_s=None,
            queue_capacity=256,
            supervisor=RecoverySupervisor(sentinel=sentinel, drift_action="warn"),
            observer=Observer(label="rollout-bench"),
        ),
    )

    trigger = trigger_cls(
        trainer,
        scaler,
        checkpoint=checkpoint,
        buffer_size=512,
        min_frames=min_frames,
        epochs=retrain_epochs,
        # The buffer is one batch wide, so each epoch is a single
        # optimizer step; unlearning the old room in tens of steps needs
        # a hotter learning rate than the original fit.
        lr_scale=2.0,
    )

    def label_fn(frame) -> int:
        return int(stream_labels[int(round(frame.t_s / dt))])

    manager = RolloutManager.for_engine(
        engine,
        trigger,
        label_fn=label_fn,
        comparison_factory=lambda: SequentialComparison(
            alpha=0.05, min_frames=16, max_frames=max_shadow_frames
        ),
        guard_frames=32,
    )

    # ---------------------------------------------------------- the stream
    results = []
    for i, row in enumerate(stream_rows):
        ticket = engine.submit_frame("room-0", i * dt, row)
        results.extend(ticket.results)
    results.extend(engine.flush())

    # ------------------------------------------------------------ accounting
    events = list(engine.observer.events)
    promoted = [e for e in events if e.kind == "rollout.promoted"]
    trips = [e for e in events if e.kind == "drift.trip"]
    post_shift_trips = [e for e in trips if e.t_s >= shift_at * dt]
    frames_to_detection = (
        int(round(post_shift_trips[0].t_s / dt)) - shift_at
        if post_shift_trips else None
    )
    promo_idx = int(round(promoted[0].t_s / dt)) if promoted else None
    frames_to_promotion = promo_idx - shift_at if promo_idx is not None else None

    before, during, after = [], [], []
    for result in results:
        idx = int(round(result.t_s / dt))
        correct = int(result.probability >= 0.5) == int(stream_labels[idx])
        if idx < shift_at:
            before.append(correct)
        elif promo_idx is None or idx < promo_idx:
            during.append(correct)
        else:
            after.append(correct)

    def acc(window) -> float:
        return float(np.mean(window)) if window else float("nan")

    ledger = engine.observer.ledger()
    dropped = (
        ledger.get("submitted", 0)
        - ledger.get("answered", 0)
        + ledger.get("unaccounted", 0)
    )
    reconciliation = manager.last_reconciliation or {}
    dump = engine.observer.events.to_jsonl()

    return RolloutArmStats(
        promotions=manager.promotions,
        rollbacks=manager.rollbacks,
        stops=manager.stops,
        frames_served=len(results),
        dropped_frames=int(dropped),
        frames_to_detection=frames_to_detection,
        frames_to_promotion=frames_to_promotion,
        accuracy_before=acc(before),
        accuracy_during=acc(during),
        accuracy_after=acc(after) if promo_idx is not None else None,
        ledger_exact=bool(reconciliation.get("exact", False)),
        shadow_frames=int(reconciliation.get("shadow_submitted", 0)),
        champion_frames_during_shadow=int(reconciliation.get("champion_answered", 0)),
        event_log_sha1=hashlib.sha1(dump.encode()).hexdigest(),
    )


def run_rollout_bench(
    *,
    n_train: int = 512,
    n_stream: int = 768,
    shift_at: int = 128,
    train_epochs: int = 25,
    retrain_epochs: int = 40,
    min_frames: int = 96,
    max_shadow_frames: int = 384,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> RolloutBenchReport:
    """Run both bench arms; see the module docstring.

    ``quick`` shrinks the workload for CI smoke runs while keeping every
    gate — zero drops, exact reconciliation and the two arms' verdicts
    are scale-independent invariants.
    """
    if n_train < 64:
        raise ConfigurationError("n_train must be >= 64")
    if n_stream < 64:
        raise ConfigurationError("n_stream must be >= 64")
    if not 16 <= shift_at < n_stream:
        raise ConfigurationError("shift_at must lie in [16, n_stream)")
    if quick:
        n_train = min(n_train, 256)
        n_stream = min(n_stream, 512)
        shift_at = min(shift_at, 96)
        train_epochs = min(train_epochs, 12)
        min_frames = min(min_frames, 64)
        max_shadow_frames = min(max_shadow_frames, 224)

    total = n_train + n_stream
    # A deliberately busy occupant schedule: the stock office model has
    # hour-scale visit gaps, which leaves a minutes-long bench campaign
    # single-class.  One restless subject with ~2.5 min stays and ~3 min
    # gaps keeps both labels present in every bench segment.
    config = CampaignConfig(
        duration_h=total / (3600.0 * 0.5),
        sample_rate_hz=0.5,
        seed=seed,
        start_hour_of_day=10.0,
        behavior=BehaviorConfig(n_subjects=1, mean_stay_h=0.04, mean_gap_h=0.05),
    )
    dataset = CollectionCampaign(config).run()
    csi = np.asarray(dataset.csi)
    occupancy = (np.asarray(dataset.occupancy, dtype=int) > 0).astype(int)
    if len(csi) < total:
        raise ConfigurationError(
            f"campaign produced {len(csi)} rows, bench needs {total}"
        )
    # Stratified resample: one behavioural draw leaves minutes-long
    # single-class runs, so train set and stream are rebuilt by drawing
    # frames from the campaign's empty/occupied pools with p=0.5 — every
    # bench segment (train, pre-shift, shadow window, post-promotion)
    # sees both classes, whatever the simulated visit schedule did.
    empty_pool = np.flatnonzero(occupancy == 0)
    occupied_pool = np.flatnonzero(occupancy == 1)
    if len(empty_pool) < 32 or len(occupied_pool) < 32:
        raise ConfigurationError(
            f"campaign too single-class for the bench: "
            f"{len(empty_pool)} empty / {len(occupied_pool)} occupied frames"
        )
    sampler = np.random.default_rng(seed + 13)
    labels_all = (sampler.random(total) < 0.5).astype(int)
    idx = np.where(
        labels_all == 1,
        occupied_pool[sampler.integers(0, len(occupied_pool), total)],
        empty_pool[sampler.integers(0, len(empty_pool), total)],
    )
    rows_all = csi[idx]
    x_train, y_train = rows_all[:n_train], labels_all[:n_train].astype(float)
    stream_rows = np.array(rows_all[n_train:], copy=True)
    stream_labels = labels_all[n_train:]
    stream_rows[shift_at:] = _room_shift(stream_rows[shift_at:])

    arms = {}
    for name, trigger_cls in (
        ("healthy", RetrainTrigger),
        ("forced_bad", _SabotagedTrigger),
    ):
        with tempfile.TemporaryDirectory(prefix=f"rollout-bench-{name}-") as tmp:
            arms[name] = _run_arm(
                trigger_cls=trigger_cls,
                x_train=x_train,
                y_train=y_train,
                stream_rows=stream_rows,
                stream_labels=stream_labels,
                shift_at=shift_at,
                seed=seed,
                train_epochs=train_epochs,
                retrain_epochs=retrain_epochs,
                min_frames=min_frames,
                max_shadow_frames=max_shadow_frames,
                checkpoint_dir=tmp,
            )

    return RolloutBenchReport(
        n_train=n_train,
        n_stream=n_stream,
        shift_at=shift_at,
        seed=seed,
        healthy=arms["healthy"],
        forced_bad=arms["forced_bad"],
    )
