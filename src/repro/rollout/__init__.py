"""Drift-triggered self-retraining with champion/challenger rollout.

The self-healing loop for a live occupancy-detection service whose
traffic has drifted away from the training distribution (the paper's
"unconstrained environments" failure mode, operationalised):

1. :mod:`~repro.rollout.retrain` — the :class:`RetrainTrigger` buffers
   recent labelled, quarantine-cleared frames and, on a sentinel
   OK→TRIP excursion, fine-tunes a challenger from the last
   best-validation checkpoint;
2. :mod:`~repro.rollout.shadow` — the :class:`ShadowRunner` replays
   every champion-served frame through the frozen challenger plan,
   off the serving path, with its own exactly-reconciling obs ledger;
3. :mod:`~repro.rollout.sequential` — the
   :class:`SequentialComparison` scores the two on per-frame
   correctness deltas with anytime-valid e-processes, stopping the
   instant a win/loss boundary crosses (valid at any stopping time) or
   the futility budget runs out;
4. :mod:`~repro.rollout.promote` — the :class:`RolloutManager` drives
   the state machine, hot-swaps the winner through the surface's
   drain-before-swap path (zero dropped frames), and rolls back
   automatically on breaker trips or shadow-output divergence.

``python -m repro.cli rollout-bench`` exercises the whole loop against
a simulated mid-run room shift; see :mod:`repro.rollout.bench`.
"""

from .promote import RolloutManager, RolloutState
from .retrain import RetrainTrigger
from .sequential import DEFAULT_LAMBDAS, SequentialComparison, Verdict
from .shadow import ShadowRunner

__all__ = [
    "DEFAULT_LAMBDAS",
    "RetrainTrigger",
    "RolloutManager",
    "RolloutState",
    "SequentialComparison",
    "ShadowRunner",
    "Verdict",
]
