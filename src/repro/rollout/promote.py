"""The rollout state machine: drift → retrain → shadow → hot-swap.

:class:`RolloutManager` composes the other three pieces of
:mod:`repro.rollout` into one per-surface controller (one per engine, or
one per fleet tenant):

.. code-block:: text

              drift.trip (armed)           anytime-valid PROMOTE
    ┌──────┐ ──────────────────► ┌────────┐ ───────────────────► ┌───────┐
    │ IDLE │                     │ SHADOW │                      │ GUARD │
    └──────┘ ◄────────────────── └────────┘                      └───────┘
        ▲      REJECT / FUTILITY                                   │   │
        │      (rollout.futility_stop)                             │   │
        │                                                          │   │
        ├──────────────────────────────────────────────────────────┘   │
        │   breaker OPEN or shadow-output divergence                   │
        │   (rollout.rolled_back: swap the champion back)              │
        └──────────────────────────────────────────────────────────────┘
            guard window clean: promotion sticks, back to IDLE

Every transition is driven from ``on_batch`` — the post-emit hook the
engine (:meth:`repro.serve.engine.InferenceEngine.attach_rollout`) and
fleet (:meth:`repro.fleet.service.Fleet.attach_rollout`) call with
exactly the frames the champion just served.  Served outputs are final
before the hook runs, so the shadow leg can never perturb them, and a
promotion requested inside the hook rides the surface's own
drain-before-swap path (the engine defers the estimator swap until its
queue empties; the fleet runs a cutover tick before flipping the
registry binding) — zero frames dropped, zero frames re-routed.

Promotion is not trusted blindly.  While in GUARD the manager
(1) replays the shadow's buffered rows through the plan *actually
serving* and rolls back on any divergence from the recorded
pre-promotion shadow outputs — a frozen plan is deterministic, so a
nonzero difference proves the swap installed the wrong thing; and
(2) watches the primary circuit breaker, rolling back if the promoted
plan trips it.  Rollback swaps the retained champion back through the
same drain-before-swap path and restores the sentinel's previous
drift reference.

On a promotion that sticks, the sentinel's reference distribution is
refit from the retrain buffer (the challenger's own training traffic)
and the sentinel reset — the new champion is *expected* to see the
shifted distribution, and keeping the stale reference would leave the
sentinel permanently tripped.

Every transition emits one closed-taxonomy obs event
(``rollout.shadow_start`` / ``rollout.promoted`` /
``rollout.rolled_back`` / ``rollout.futility_stop``) on the champion's
observer, stream-time stamped so same-seed replays produce
byte-identical logs, and increments the labeled
``rollout_events_total{kind=...}`` metric family for Prometheus
exposition.
"""

from __future__ import annotations

import enum

import numpy as np

from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..guard.breaker import BreakerState
from ..guard.drift import DriftState, ReferenceStats
from .sequential import SequentialComparison, Verdict
from .shadow import ShadowRunner


class RolloutState(enum.Enum):
    """Where the controller is in the shadow → promote/rollback cycle."""

    IDLE = "idle"      #: serving the champion, watching for drift
    SHADOW = "shadow"  #: challenger mirroring traffic, comparison running
    GUARD = "guard"    #: challenger promoted, watching for regressions


#: gauge encoding of :class:`RolloutState` (``rollout_state`` metric).
_STATE_GAUGE = {RolloutState.IDLE: 0, RolloutState.SHADOW: 1, RolloutState.GUARD: 2}


class RolloutManager:
    """One serving surface's drift → retrain → shadow → swap controller.

    Build one with :meth:`for_engine` or :meth:`for_fleet_tenant` (which
    wire the surface's sentinel, breaker, observer, metrics and swap
    path), or construct directly for custom surfaces.

    Parameters
    ----------
    trigger:
        The :class:`~repro.rollout.retrain.RetrainTrigger` holding the
        labelled frame buffer and the fine-tune recipe.
    swap:
        ``swap(plan) -> previous`` — installs ``plan`` as the serving
        estimator with drain-before-swap semantics and returns the
        incumbent (held for rollback).
    sentinel:
        The surface's :class:`~repro.guard.drift.DriftSentinel`; ``None``
        disables drift-driven starts (call :meth:`start_challenger`
        manually).
    label_fn:
        ``label_fn(frame) -> 0 | 1 | None`` — the (possibly delayed)
        ground-truth oracle.  Labelled frames feed both the retrain
        buffer and the sequential comparison; unlabelled frames are
        shadowed but not scored.
    comparison_factory:
        Builds a fresh :class:`~repro.rollout.sequential.SequentialComparison`
        per shadow run; defaults to the class defaults.
    observer / registry:
        The *champion's* obs event sink and metrics registry (the shadow
        leg always gets its own observer).
    breaker:
        The primary circuit breaker watched during GUARD.
    current_plan:
        Zero-arg callable returning the estimator currently serving —
        lets the manager distinguish "drain still in progress" from "the
        swap installed the wrong plan".
    guard_frames:
        Served frames the promoted plan must survive before the
        promotion seals.
    divergence_tol:
        Max |Δprobability| tolerated between the serving plan's replay
        and the recorded shadow outputs (0.0: byte-identical, the frozen
        plan's own guarantee).
    refresh_reference:
        Refit the sentinel's drift reference from the retrain buffer on
        promotion (restored on rollback).
    shadow_keep_last:
        Replay-buffer depth handed to each :class:`ShadowRunner`.
    link_id:
        Label stamped on emitted events (tenant id on fleets).
    champion_version:
        Lineage version of the incumbent; each challenger is stamped
        ``version + 1`` and adopts it on promotion.
    """

    def __init__(
        self,
        trigger,
        swap,
        *,
        sentinel=None,
        label_fn=None,
        comparison_factory=None,
        observer=None,
        registry=None,
        breaker=None,
        current_plan=None,
        guard_frames: int = 64,
        divergence_tol: float = 0.0,
        refresh_reference: bool = True,
        shadow_keep_last: int = 256,
        link_id: str | None = None,
        champion_version: int = 0,
    ) -> None:
        if guard_frames < 1:
            raise ConfigurationError("guard_frames must be >= 1")
        if divergence_tol < 0:
            raise ConfigurationError("divergence_tol must be >= 0")
        if not callable(swap):
            raise ConfigurationError("swap must be callable")
        self.trigger = trigger
        self.swap = swap
        self.sentinel = sentinel
        self.label_fn = label_fn
        self.comparison_factory = (
            comparison_factory if comparison_factory is not None else SequentialComparison
        )
        self.observer = observer
        self.registry = registry
        self.breaker = breaker
        self.current_plan = current_plan
        self.guard_frames = int(guard_frames)
        self.divergence_tol = float(divergence_tol)
        self.refresh_reference = bool(refresh_reference)
        self.shadow_keep_last = int(shadow_keep_last)
        self.link_id = link_id
        self.champion_version = int(champion_version)

        self.state = RolloutState.IDLE
        self.shadow: ShadowRunner | None = None
        self.comparison: SequentialComparison | None = None
        self.frames_observed = 0
        self.promotions = 0
        self.rollbacks = 0
        self.stops = 0
        self.last_reconciliation: dict | None = None
        self._previous = None
        self._promoted_plan: InferencePlan | None = None
        self._old_reference = None
        self._guard_left = 0
        self._guard_verified = False
        self._mirrored = 0
        self._champion_answered_at_start = 0
        self._awaiting_data = False
        self._set_state(RolloutState.IDLE)

    # ------------------------------------------------------------- wiring

    @classmethod
    def for_engine(cls, engine, trigger, **kwargs) -> "RolloutManager":
        """Build a manager wired to an :class:`~repro.serve.engine.InferenceEngine`
        and attach it as the engine's rollout hook."""
        champion = engine.estimator
        kwargs.setdefault(
            "champion_version",
            champion.version if isinstance(champion, InferencePlan) else 0,
        )
        manager = cls(
            trigger,
            engine.replace_estimator,
            sentinel=engine.supervisor.sentinel,
            observer=engine.observer,
            registry=engine.registry,
            breaker=engine.supervisor.breaker,
            current_plan=lambda: engine.estimator,
            **kwargs,
        )
        engine.attach_rollout(manager)
        return manager

    @classmethod
    def for_fleet_tenant(cls, fleet, tenant_id: str, trigger, **kwargs) -> "RolloutManager":
        """Build a manager for one fleet tenant and attach it to the fleet."""
        state = fleet._tenant(tenant_id)

        def swap(plan):
            previous = fleet.plans.get(tenant_id)
            fleet.replace_plan(tenant_id, plan)
            return previous

        kwargs.setdefault("champion_version", fleet.plans.get(tenant_id).version)
        manager = cls(
            trigger,
            swap,
            sentinel=state.supervisor.sentinel,
            observer=state.observer,
            registry=fleet.metrics,
            breaker=state.supervisor.breaker,
            current_plan=lambda: fleet.plans.get(tenant_id),
            link_id=tenant_id,
            **kwargs,
        )
        fleet.attach_rollout(tenant_id, manager)
        return manager

    # ------------------------------------------------------------ plumbing

    def _set_state(self, state: RolloutState) -> None:
        self.state = state
        if self.registry is not None:
            name = "rollout_state" if self.link_id is None else (
                f"rollout_state{{tenant={self.link_id}}}"
            )
            self.registry.gauge(name).set(_STATE_GAUGE[state])

    def _emit(self, kind: str, t_s: float, **data) -> None:
        if self.observer is not None and self.observer.enabled:
            self.observer.emit(kind, t_s=t_s, link_id=self.link_id, **data)
        if self.registry is not None:
            short = kind.split(".", 1)[1]
            self.registry.counter(f"rollout_events_total{{kind={short}}}").inc()

    def _record_labels(self, frames, rows) -> list:
        """Feed labelled served frames to the retrain buffer.

        Returns the per-frame labels (None where unlabelled) for reuse by
        the comparison, so the oracle is consulted once per frame.
        """
        if self.label_fn is None:
            return [None] * len(frames)
        labels = [self.label_fn(frame) for frame in frames]
        keep = [i for i, label in enumerate(labels) if label is not None]
        if keep:
            self.trigger.record(
                np.asarray(rows)[keep], [labels[i] for i in keep]
            )
        return labels

    # ------------------------------------------------------------ the hook

    def on_batch(self, frames, rows, probabilities, now_s: float, source: str = "primary") -> None:
        """Process one served batch (called post-emit by the surface)."""
        if not len(frames):
            return
        self.frames_observed += len(frames)
        labels = self._record_labels(frames, rows)
        if self.state is RolloutState.IDLE:
            self._idle_step(now_s)
        elif self.state is RolloutState.SHADOW:
            self._shadow_step(frames, rows, probabilities, labels, now_s)
        elif self.state is RolloutState.GUARD:
            self._guard_step(frames, rows, probabilities, now_s)

    # ---------------------------------------------------------------- IDLE

    def _idle_step(self, now_s: float) -> None:
        if self._awaiting_data:
            if self.trigger.buffered >= self.trigger.min_frames:
                self._awaiting_data = False
                self.start_challenger(now_s)
            return
        if self.sentinel is None:
            return
        if self.trigger.observe_state(self.sentinel.state):
            # The buffer is dominated by pre-drift rows at the trip edge —
            # training on them would teach the challenger the *old* room.
            # Flush it and hold the fired excursion until min_frames of
            # post-drift labelled frames accumulate.
            self.trigger.clear()
            self._awaiting_data = True

    def start_challenger(self, now_s: float) -> bool:
        """Retrain a challenger and enter SHADOW; False when retrain refuses."""
        if self.state is not RolloutState.IDLE:
            raise ConfigurationError(
                f"cannot start a challenger while {self.state.value}"
            )
        try:
            plan = self.trigger.retrain(
                version=self.champion_version + 1, label="challenger"
            )
        except ConfigurationError:
            if self.registry is not None:
                self.registry.counter("rollout_retrain_skipped_total").inc()
            return False
        self.shadow = ShadowRunner(plan, keep_last=self.shadow_keep_last)
        self.comparison = self.comparison_factory()
        self._mirrored = 0
        self._champion_answered_at_start = (
            self.observer.events.count("frame.answered")
            if self.observer is not None and self.observer.enabled
            else 0
        )
        self._set_state(RolloutState.SHADOW)
        self._emit(
            "rollout.shadow_start",
            now_s,
            challenger_version=plan.version,
            challenger_fingerprint=plan.fingerprint()[:8],
            buffered_frames=self.trigger.buffered,
        )
        if self.registry is not None:
            self.registry.counter("rollout_shadows_total").inc()
        return True

    # -------------------------------------------------------------- SHADOW

    def _shadow_step(self, frames, rows, probabilities, labels, now_s: float) -> None:
        challenger_probs = self.shadow.observe_batch(frames, rows)
        self._mirrored += len(frames)
        for p_champ, p_chall, label in zip(probabilities, challenger_probs, labels):
            if label is None:
                continue
            self.comparison.update(
                int(p_champ >= 0.5) == label, int(p_chall >= 0.5) == label
            )
        verdict = self.comparison.verdict
        if verdict is Verdict.PROMOTE:
            self._promote(now_s)
        elif verdict in (Verdict.REJECT, Verdict.FUTILITY):
            self._stop(verdict, now_s)

    def reconcile(self) -> dict:
        """Champion-vs-shadow frame accounting for the current/last run.

        ``exact`` demands the shadow's own ledger closes (submitted ==
        answered, zero pending/unaccounted) *and* its frame count equals
        the champion's answered count over the shadow window — the
        precondition for trusting the sequential comparison.
        """
        if self.shadow is None:
            return {"exact": True, "shadow_submitted": 0, "champion_answered": 0}
        ledger = self.shadow.ledger()
        champion_answered = self._mirrored
        if self.observer is not None and self.observer.enabled:
            champion_answered = (
                self.observer.events.count("frame.answered")
                - self._champion_answered_at_start
            )
        return {
            "shadow_submitted": ledger.get("submitted", 0),
            "shadow_answered": ledger.get("answered", 0),
            "shadow_pending": ledger.get("pending", 0),
            "shadow_unaccounted": ledger.get("unaccounted", 0),
            "champion_answered": champion_answered,
            "exact": self.shadow.reconciles()
            and ledger.get("submitted", 0) == champion_answered,
        }

    def _promote(self, now_s: float) -> None:
        plan = self.shadow.plan
        self.last_reconciliation = self.reconcile()
        self._previous = self.swap(plan)
        self._promoted_plan = plan
        self._old_reference = None
        if (
            self.refresh_reference
            and self.sentinel is not None
            and self.trigger.buffered >= 2
        ):
            self._old_reference = self.sentinel.reference
            self.sentinel.reference = ReferenceStats.fit(self.trigger.buffered_rows())
            self.sentinel.reset()
        self.promotions += 1
        self.champion_version = plan.version
        snapshot = self.comparison.snapshot()
        self._guard_left = self.guard_frames
        self._guard_verified = False
        self._set_state(RolloutState.GUARD)
        self._emit(
            "rollout.promoted",
            now_s,
            version=plan.version,
            fingerprint=plan.fingerprint()[:8],
            n=snapshot["n"],
            wins=snapshot["wins"],
            losses=snapshot["losses"],
            ties=snapshot["ties"],
            e_win=snapshot["e_win"],
        )
        if self.registry is not None:
            self.registry.counter("rollout_promotions_total").inc()

    def abort(self, now_s: float = 0.0) -> dict | None:
        """Tear down an in-flight rollout because its surface is detaching.

        Called by :meth:`repro.fleet.service.Fleet.detach` (and usable by
        any surface) before the drain starts, so the shadow never mirrors
        frames the comparison will not score.  In SHADOW the run stops
        cleanly: the shadow ledger is reconciled one last time, a
        ``rollout.futility_stop`` event with ``decision="aborted"``
        closes the trace, and the challenger is discarded — no swap ever
        happened, so there is nothing to roll back.  In GUARD the
        promotion already swapped in and the tenant is leaving anyway:
        the retained champion and shadow buffer are released without a
        swap (the plan registry binding dies with the tenant).  IDLE is a
        no-op.  Returns the final shadow reconciliation (None when no
        shadow was live).
        """
        if self.state is RolloutState.SHADOW:
            self.last_reconciliation = self.reconcile()
            snapshot = self.comparison.snapshot()
            self.stops += 1
            self._set_state(RolloutState.IDLE)
            self.shadow = None
            self._emit(
                "rollout.futility_stop",
                now_s,
                decision="aborted",
                n=snapshot["n"],
                e_win=snapshot["e_win"],
                e_loss=snapshot["e_loss"],
            )
            if self.registry is not None:
                self.registry.counter("rollout_stops_total").inc()
            return self.last_reconciliation
        if self.state is RolloutState.GUARD:
            self.last_reconciliation = self.reconcile()
            self._seal()
            return self.last_reconciliation
        return None

    def _stop(self, verdict: Verdict, now_s: float) -> None:
        self.last_reconciliation = self.reconcile()
        snapshot = self.comparison.snapshot()
        self.stops += 1
        self._set_state(RolloutState.IDLE)
        self.shadow = None
        self._emit(
            "rollout.futility_stop",
            now_s,
            decision=verdict.value,
            n=snapshot["n"],
            e_win=snapshot["e_win"],
            e_loss=snapshot["e_loss"],
        )
        if self.registry is not None:
            self.registry.counter("rollout_stops_total").inc()

    # --------------------------------------------------------------- GUARD

    def _guard_step(self, frames, rows, probabilities, now_s: float) -> None:
        if self.current_plan is not None:
            current = self.current_plan()
            if current is not self._promoted_plan:
                if current is self._previous:
                    return  # drain-before-swap still in progress: old plan serving
                self._rollback(now_s, reason="unexpected_plan")
                return
        if not self._guard_verified:
            # The serving plan must reproduce the pre-promotion shadow
            # outputs exactly — the shadow buffer is the promotion's oath.
            serving = (
                self.current_plan() if self.current_plan is not None else self._promoted_plan
            )
            divergence = self.shadow.replay_divergence(serving)
            if divergence > self.divergence_tol:
                self._rollback(now_s, reason="divergence", divergence=divergence)
                return
            self._guard_verified = True
        if self.breaker is not None and self.breaker.state is BreakerState.OPEN:
            self._rollback(now_s, reason="breaker_open")
            return
        self._guard_left -= len(frames)
        if self._guard_left <= 0:
            self._seal()

    def _seal(self) -> None:
        """The guard window passed clean: the promotion is final."""
        self._set_state(RolloutState.IDLE)
        self.shadow = None
        self._previous = None
        self._promoted_plan = None
        self._old_reference = None
        if self.registry is not None:
            self.registry.counter("rollout_promotions_sealed_total").inc()

    def _rollback(self, now_s: float, *, reason: str, **data) -> None:
        self.swap(self._previous)
        if self._old_reference is not None and self.sentinel is not None:
            self.sentinel.reference = self._old_reference
            self.sentinel.reset()
        demoted = self._promoted_plan
        self.rollbacks += 1
        self.champion_version = (
            self._previous.version
            if isinstance(self._previous, InferencePlan)
            else max(0, self.champion_version - 1)
        )
        self._set_state(RolloutState.IDLE)
        self.shadow = None
        self._previous = None
        self._promoted_plan = None
        self._old_reference = None
        self._emit(
            "rollout.rolled_back",
            now_s,
            reason=reason,
            demoted_version=demoted.version if demoted is not None else None,
            **data,
        )
        if self.registry is not None:
            self.registry.counter("rollout_rollbacks_total").inc()

    def __repr__(self) -> str:
        return (
            f"RolloutManager(state={self.state.value}, "
            f"promotions={self.promotions}, rollbacks={self.rollbacks}, "
            f"stops={self.stops})"
        )
