"""Shadow execution: the challenger sees every live frame, serves none.

:class:`ShadowRunner` is the evaluation leg of a champion/challenger
rollout.  The serving surface (engine or fleet tenant) calls
:meth:`observe_batch` with exactly the frames the champion just answered;
the runner replays them through the challenger's frozen
:class:`~repro.fastpath.plan.InferencePlan` and records nothing into the
serving path — served outputs are already final before the shadow runs
(the rollout hooks fire post-emit by construction).

Accountability is the point, not a side effect: the runner owns its own
:class:`~repro.obs.observer.Observer`, and mirrors every mirrored frame
through the full ``frame_submitted`` → ``frame_outcome("answered")``
life cycle.  The shadow ledger therefore reconciles *exactly* — every
submitted frame answered, zero pending, zero unaccounted — and its
``submitted`` count must equal the number of frames the champion answered
while the shadow was live.  A mismatch means the challenger was evaluated
on different traffic than the champion served, which invalidates the
sequential comparison; :meth:`repro.rollout.promote.RolloutManager.reconcile`
checks it before any promotion.

The runner also keeps a bounded replay buffer of ``(rows, outputs)``.
After a hot-swap, the promotion controller re-runs the buffered rows
through the plan now actually serving and compares against these recorded
outputs — a frozen plan is deterministic, so any difference proves the
swap installed something other than the challenger that won the
comparison, and triggers automatic rollback.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..obs.observer import Observer


class ShadowRunner:
    """Replay live frames through a challenger plan, off the serving path.

    Parameters
    ----------
    plan:
        The challenger's frozen :class:`~repro.fastpath.plan.InferencePlan`.
    observer:
        The shadow leg's own ledger; a fresh
        :class:`~repro.obs.observer.Observer` labelled ``"shadow"`` (or
        ``"shadow:<plan label>"``) when omitted.  Never pass the
        champion's observer — the two ledgers reconcile *against* each
        other.
    keep_last:
        Rows retained in the post-promotion replay buffer.
    """

    def __init__(
        self,
        plan: InferencePlan,
        *,
        observer: Observer | None = None,
        keep_last: int = 256,
    ) -> None:
        if not isinstance(plan, InferencePlan):
            raise ConfigurationError(
                f"ShadowRunner replays frozen InferencePlans, got {type(plan).__name__}"
            )
        if keep_last < 1:
            raise ConfigurationError("keep_last must be >= 1")
        if observer is None:
            label = "shadow" if plan.label is None else f"shadow:{plan.label}"
            observer = Observer(label=label)
        self.plan = plan
        self.observer = observer
        self.keep_last = int(keep_last)
        self.frames_seen = 0
        # Replay buffer of (rows, outputs) *per observed batch*.  Batch
        # boundaries are preserved deliberately: BLAS picks different
        # kernels for different operand shapes (a 1-row matvec rounds
        # differently than the same row inside a 52-row GEMM), so exact
        # replay requires re-running each batch at its original shape.
        self._replay: deque[tuple[np.ndarray, np.ndarray]] = deque()
        self._replay_total = 0

    # -------------------------------------------------------------- running

    def observe_batch(self, frames, rows, t_s: float | None = None) -> np.ndarray:
        """Mirror one served batch through the challenger; returns its probs.

        ``frames`` are the champion's just-answered frames (engine
        ``PendingFrame`` or fleet ``TenantFrame`` — duck-typed on
        ``frame_id``/``t_s`` plus ``link_id`` or ``tenant_id``); ``rows``
        the batch rows the champion consumed, one per frame.  Each frame
        runs the full submitted→answered cycle on the shadow ledger.
        """
        # Cast once up front: the plan computes in float32, and the replay
        # buffer stores float32 copies — predicting from the same dtype
        # here is what makes the post-swap replay *exactly* reproducible.
        rows = np.asarray(rows, dtype=np.float32)
        if len(frames) != rows.shape[0]:
            raise ConfigurationError(
                f"{len(frames)} frames arrived with {rows.shape[0]} rows"
            )
        if not len(frames):
            return np.empty(0)
        probabilities = self.plan.predict_proba(rows)
        obs = self.observer
        for frame, p in zip(frames, probabilities):
            link = getattr(frame, "link_id", None)
            if link is None:
                link = frame.tenant_id
            frame_t = float(frame.t_s) if t_s is None else float(t_s)
            obs.frame_submitted(frame.frame_id, link, frame_t)
            obs.frame_outcome(
                "answered", frame.frame_id, link, frame_t, source="shadow"
            )
        # Copy: engine batch rows live in a reused ring buffer.
        self._replay.append(
            (np.array(rows, copy=True), np.asarray(probabilities, dtype=float).copy())
        )
        self._replay_total += len(frames)
        # Evict oldest whole batches past the row budget (never the
        # newest — one oversized batch is kept in full).
        while self._replay_total > self.keep_last and len(self._replay) > 1:
            _, evicted = self._replay.popleft()
            self._replay_total -= len(evicted)
        self.frames_seen += len(frames)
        return probabilities

    # ---------------------------------------------------------- accounting

    def ledger(self) -> dict[str, int]:
        """The shadow leg's frame ledger (must reconcile exactly)."""
        return self.observer.ledger()

    def reconciles(self) -> bool:
        """True when every mirrored frame is answered and accounted for."""
        ledger = self.ledger()
        return (
            ledger.get("unaccounted", 0) == 0
            and ledger.get("pending", 0) == 0
            and ledger.get("submitted", 0) == ledger.get("answered", 0) == self.frames_seen
        )

    # ------------------------------------------------------------- guarding

    def replay_divergence(self, plan) -> float:
        """Max |prob. difference| of ``plan`` vs the recorded shadow outputs.

        Called on the plan *actually serving* after a hot-swap.  The
        challenger is frozen and deterministic, so a correct swap yields
        exactly 0.0; anything else means the promoted plan is not the one
        that won the shadow comparison.  Returns 0.0 when the buffer is
        empty (nothing to check).
        """
        if not self._replay:
            return 0.0
        worst = 0.0
        for rows, recorded in self._replay:
            replayed = np.asarray(plan.predict_proba(rows), dtype=float).ravel()
            worst = max(worst, float(np.max(np.abs(replayed - recorded))))
        return worst

    @property
    def replay_depth(self) -> int:
        """Rows currently held in the replay buffer."""
        return self._replay_total

    def __repr__(self) -> str:
        return (
            f"ShadowRunner({self.plan!r}, frames_seen={self.frames_seen}, "
            f"replay_depth={self.replay_depth})"
        )
