"""Drift-triggered incremental retraining of a challenger model.

:class:`RetrainTrigger` is the first stage of the self-healing rollout
loop: it buffers the recent quarantine-cleared live frames (with their
labels — the simulator's ground truth in benches, delayed/annotated
labels in a real deployment), watches the
:class:`~repro.guard.drift.DriftSentinel` state the serving surface
feeds it, and on an escalation to TRIP launches an **incremental**
retrain:

1. restore the trainer's model and optimizer from the latest
   :class:`~repro.nn.checkpoint.CheckpointCallback` best-validation
   checkpoint — the last weights *known* to generalise, not whatever the
   drifting stream may have degraded into;
2. fine-tune on the buffered post-drift frames at a damped learning
   rate, through the **frozen original scaler** — the same scaler the
   champion plan folded in, so champion and challenger disagree only in
   their weights, never their input normalisation;
3. freeze the result into a fresh
   :class:`~repro.fastpath.plan.InferencePlan` carrying the next
   lineage ``version``.

Arming is edge-triggered with hysteresis: the trigger fires once per
OK→TRIP excursion and re-arms only when the sentinel returns to OK.  A
failed challenger (rejected or futile shadow run) therefore does not
spin the retrain loop on a persistently tripped sentinel — the next
attempt waits for the sentinel to recover or be re-referenced (which
promotion does, see :mod:`repro.rollout.promote`).
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..guard.drift import DriftState
from ..nn.checkpoint import CheckpointCallback, load_checkpoint


class RetrainTrigger:
    """Buffered labelled frames + drift arming + checkpoint-based retrain.

    Parameters
    ----------
    trainer:
        The :class:`~repro.nn.train.Trainer` owning the model and
        optimizer to fine-tune.  Retraining mutates them in place (the
        champion *plan* is frozen and unaffected).
    scaler:
        The champion's fitted scaler, applied to buffered rows before
        fitting and folded into the frozen challenger — or ``None`` when
        the model consumes raw features.
    checkpoint:
        Where the known-good weights live: a live
        :class:`~repro.nn.checkpoint.CheckpointCallback` (its
        ``best_path``, falling back to ``latest``), an explicit
        checkpoint path, or ``None`` to fine-tune from the current
        weights.
    buffer_size:
        Labelled frames retained (drop-oldest).
    min_frames:
        Floor below which :meth:`retrain` refuses to fit.
    epochs / lr_scale:
        Fine-tune budget: epochs over the buffer at
        ``optimizer.lr * lr_scale`` (restored afterwards).
    """

    def __init__(
        self,
        trainer,
        scaler=None,
        *,
        checkpoint: CheckpointCallback | str | Path | None = None,
        buffer_size: int = 2048,
        min_frames: int = 64,
        epochs: int = 2,
        lr_scale: float = 0.5,
    ) -> None:
        if buffer_size < 1:
            raise ConfigurationError("buffer_size must be >= 1")
        if not 1 <= min_frames <= buffer_size:
            raise ConfigurationError("min_frames must lie in [1, buffer_size]")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if lr_scale <= 0:
            raise ConfigurationError("lr_scale must be positive")
        self.trainer = trainer
        self.scaler = scaler
        self.checkpoint = checkpoint
        self.min_frames = int(min_frames)
        self.epochs = int(epochs)
        self.lr_scale = float(lr_scale)
        self._rows: deque[np.ndarray] = deque(maxlen=buffer_size)
        self._labels: deque[int] = deque(maxlen=buffer_size)
        self._armed = True
        self.retrains = 0

    # ------------------------------------------------------------ buffering

    def record(self, rows, labels) -> None:
        """Buffer quarantine-cleared frames with their (delayed) labels.

        Feed only frames that passed admission — the engine's shape gate
        and validator already refused the rest, and training on
        quarantined garbage would bake the fault into the challenger.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float32))
        labels = np.atleast_1d(labels)
        if rows.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"{rows.shape[0]} rows arrived with {labels.shape[0]} labels"
            )
        for row, label in zip(rows, labels):
            self._rows.append(np.array(row, copy=True))
            self._labels.append(int(label))

    @property
    def buffered(self) -> int:
        """Labelled frames currently held."""
        return len(self._rows)

    def buffered_rows(self) -> np.ndarray:
        """The buffered feature rows, stacked ``(buffered, n_features)``.

        Used by the promotion controller to refit the drift reference
        after a successful swap — the challenger's own training traffic
        *is* the new normal.
        """
        if not self._rows:
            raise ConfigurationError("the retrain buffer is empty")
        return np.stack(list(self._rows))

    def clear(self) -> None:
        """Drop every buffered frame (e.g. at a drift trip, so the
        fine-tune set is pure post-drift traffic)."""
        self._rows.clear()
        self._labels.clear()

    # --------------------------------------------------------------- arming

    @property
    def armed(self) -> bool:
        """True when the next TRIP escalation will fire."""
        return self._armed

    def observe_state(self, state: DriftState) -> bool:
        """Feed one sentinel state; True exactly once per OK→TRIP excursion."""
        if state is DriftState.TRIP:
            if self._armed:
                self._armed = False
                return True
            return False
        if state is DriftState.OK:
            self._armed = True
        return False

    # ------------------------------------------------------------- retraining

    def _resolve_checkpoint(self) -> Path | None:
        source = self.checkpoint
        if source is None:
            return None
        if isinstance(source, CheckpointCallback):
            path = source.best_path if source.best_path is not None else source.latest
            if path is None:
                raise ConfigurationError(
                    "the CheckpointCallback has saved no checkpoint to retrain from"
                )
            return path
        return Path(source)

    def retrain(self, *, version: int = 0, label: str | None = None) -> InferencePlan:
        """Restore best weights, fine-tune on the buffer, freeze a challenger.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        buffer holds fewer than ``min_frames`` labelled frames — a
        challenger trained on a sliver of post-drift data would only
        waste the shadow budget.
        """
        if self.buffered < self.min_frames:
            raise ConfigurationError(
                f"retrain needs >= {self.min_frames} buffered frames, "
                f"have {self.buffered}"
            )
        path = self._resolve_checkpoint()
        if path is not None:
            # Weights + optimizer moments only: restoring the shuffle RNG
            # would rewind the trainer's stream, and the fine-tune data is
            # new anyway.
            load_checkpoint(path).restore(
                model=self.trainer.model, optimizer=self.trainer.optimizer
            )
        x = np.stack(list(self._rows))
        y = np.array(self._labels, dtype=float)
        if self.scaler is not None:
            x = self.scaler.transform(x)
        optimizer = self.trainer.optimizer
        base_lr = optimizer.lr
        optimizer.lr = base_lr * self.lr_scale
        try:
            self.trainer.fit(x, y, epochs=self.epochs, verbose=False)
        finally:
            optimizer.lr = base_lr
        self.retrains += 1
        return InferencePlan.from_model(
            self.trainer.model, scaler=self.scaler, version=version, label=label
        )

    def __repr__(self) -> str:
        return (
            f"RetrainTrigger(buffered={self.buffered}, armed={self._armed}, "
            f"retrains={self.retrains})"
        )
