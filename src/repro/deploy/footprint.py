"""Flash/RAM footprint accounting against embedded targets.

Checks a (quantized or float) model against a device budget the way a
firmware engineer would before committing to a board: parameter storage in
flash, activation working set plus runtime overhead in RAM.  Ships the
Nucleo-L432KC profile the paper deploys on (STM32L432KC: 256 KiB flash,
64 KiB SRAM, 80 MHz Cortex-M4F).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DeploymentError
from ..nn.modules import Module
from .quantize import QuantizedMLP


@dataclass(frozen=True)
class DeviceProfile:
    """Resource envelope of an embedded target."""

    name: str
    flash_bytes: int
    ram_bytes: int
    clock_hz: float
    #: Flash the firmware itself (HAL, radio stack, inference loop) uses.
    firmware_overhead_bytes: int = 48 * 1024
    #: RAM reserved for stack/heap/drivers.
    ram_overhead_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if min(self.flash_bytes, self.ram_bytes) <= 0 or self.clock_hz <= 0:
            raise DeploymentError("device resources must be positive")


#: The paper's deployment target (STM32L432KC).
NUCLEO_L432KC = DeviceProfile(
    name="Nucleo-L432KC",
    flash_bytes=256 * 1024,
    ram_bytes=64 * 1024,
    clock_hz=80e6,
)


@dataclass(frozen=True)
class FootprintReport:
    """Model-vs-device accounting."""

    device: DeviceProfile
    model_flash_bytes: int
    model_ram_bytes: int

    @property
    def model_flash_kib(self) -> float:
        """Model size in KiB (the paper reports 15.18 KiB)."""
        return self.model_flash_bytes / 1024.0

    @property
    def model_ram_kib(self) -> float:
        """Working RAM in KiB (the paper reports 23.04 KiB)."""
        return self.model_ram_bytes / 1024.0

    @property
    def flash_utilisation(self) -> float:
        """Fraction of device flash consumed, including firmware overhead."""
        used = self.model_flash_bytes + self.device.firmware_overhead_bytes
        return used / self.device.flash_bytes

    @property
    def ram_utilisation(self) -> float:
        """Fraction of device RAM consumed, including runtime overhead."""
        used = self.model_ram_bytes + self.device.ram_overhead_bytes
        return used / self.device.ram_bytes

    @property
    def fits(self) -> bool:
        """True when both budgets close — the paper's deployability claim."""
        return self.flash_utilisation <= 1.0 and self.ram_utilisation <= 1.0

    def describe(self) -> str:
        return (
            f"{self.device.name}: model {self.model_flash_kib:.2f} KiB flash "
            f"({self.flash_utilisation:.0%} used incl. firmware), "
            f"{self.model_ram_kib:.2f} KiB RAM "
            f"({self.ram_utilisation:.0%} used incl. runtime) -> "
            f"{'FITS' if self.fits else 'DOES NOT FIT'}"
        )


def estimate_footprint(
    model: QuantizedMLP | Module,
    device: DeviceProfile = NUCLEO_L432KC,
    batch_buffer_rows: int = 1,
) -> FootprintReport:
    """Account a model against a device.

    Quantized models store int8 weights; float models store float32 and
    are reported as such (4x larger) so the benefit of quantization is
    visible in the report pair.
    """
    if batch_buffer_rows < 1:
        raise DeploymentError("batch_buffer_rows must be >= 1")
    if isinstance(model, QuantizedMLP):
        flash = model.flash_bytes()
        ram = model.working_ram_bytes() * batch_buffer_rows
    else:
        n_params = model.n_parameters()
        if n_params == 0:
            raise DeploymentError("model has no parameters")
        flash = 4 * n_params
        # Float path working set: the two widest activation buffers.
        widths = sorted(
            (p.data.shape[1] for _, p in model.named_parameters() if p.data.ndim == 2),
            reverse=True,
        )
        widest_pair = sum(widths[:2]) if len(widths) >= 2 else widths[0] * 2
        ram = 4 * widest_pair * batch_buffer_rows
    return FootprintReport(device=device, model_flash_bytes=flash, model_ram_bytes=ram)
