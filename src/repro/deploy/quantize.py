"""Int8 post-training quantization of the library's MLPs.

Symmetric per-tensor weight quantization with float32 biases — the layout
CMSIS-NN-style kernels on a Cortex-M4 consume.  The quantized model keeps
a float evaluation path so accuracy degradation can be measured directly
against the float model (tests assert it stays within a small margin on
the occupancy task).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DeploymentError, ShapeError
from ..nn.modules import Linear, ReLU, Sequential, Sigmoid, Tanh


@dataclass(frozen=True)
class QuantizedLinear:
    """One linear layer with int8 weights and a per-tensor scale."""

    weight_q: np.ndarray  # int8, shape (in, out)
    weight_scale: float
    bias: np.ndarray  # float32, shape (out,)

    def __post_init__(self) -> None:
        if self.weight_q.dtype != np.int8:
            raise DeploymentError("weights must be int8")
        if self.weight_scale <= 0:
            raise DeploymentError("weight_scale must be positive")
        if self.bias.shape != (self.weight_q.shape[1],):
            raise ShapeError("bias width must match the output width")

    @property
    def in_features(self) -> int:
        return int(self.weight_q.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight_q.shape[1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Dequantized evaluation (float accumulate, like CMSIS int32 acc)."""
        return x @ (self.weight_q.astype(np.float32) * self.weight_scale) + self.bias

    def flash_bytes(self) -> int:
        """Storage: int8 weights + float32 biases + the scale."""
        return self.weight_q.size + 4 * self.bias.size + 4


@dataclass(frozen=True)
class QuantizedMLP:
    """A quantized Sequential: linear layers with activation tags."""

    layers: tuple[QuantizedLinear, ...]
    #: Activation after each layer: "relu", "none" (and "sigmoid"/"tanh").
    activations: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.activations):
            raise DeploymentError("one activation tag per layer required")
        for a, b in zip(self.layers[:-1], self.layers[1:]):
            if a.out_features != b.in_features:
                raise DeploymentError(
                    f"layer widths mismatch: {a.out_features} -> {b.in_features}"
                )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the quantized network on float inputs."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        for layer, activation in zip(self.layers, self.activations):
            x = layer.forward(x)
            if activation == "relu":
                x = np.maximum(x, 0.0)
            elif activation == "sigmoid":
                x = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
            elif activation == "tanh":
                x = np.tanh(x)
            elif activation != "none":
                raise DeploymentError(f"unknown activation tag {activation!r}")
        return x

    def flash_bytes(self) -> int:
        """Total parameter storage in bytes."""
        return sum(layer.flash_bytes() for layer in self.layers)

    def working_ram_bytes(self) -> int:
        """Activation RAM: float32 double buffer of the widest layer pair."""
        widths = [self.layers[0].in_features] + [l.out_features for l in self.layers]
        widest_two = sorted(widths, reverse=True)[:2]
        return 4 * sum(widest_two)

    def n_parameters(self) -> int:
        return sum(l.weight_q.size + l.bias.size for l in self.layers)

    def max_abs_weight_error(self) -> float:
        """Upper bound of per-weight quantization error (half an LSB)."""
        return max(layer.weight_scale / 2.0 for layer in self.layers)


def _quantize_weight(weight: np.ndarray) -> tuple[np.ndarray, float]:
    max_abs = float(np.max(np.abs(weight)))
    if max_abs == 0.0:
        return np.zeros(weight.shape, dtype=np.int8), 1.0
    scale = max_abs / 127.0
    q = np.clip(np.round(weight / scale), -127, 127).astype(np.int8)
    return q, scale


def quantize_model(model: Sequential) -> QuantizedMLP:
    """Quantize a Sequential of Linear/activation modules to int8.

    Raises :class:`DeploymentError` on module types with no embedded
    equivalent (e.g. Dropout should be stripped before deployment — it is
    identity at inference anyway).
    """
    layers: list[QuantizedLinear] = []
    activations: list[str] = []
    pending: QuantizedLinear | None = None

    def flush(activation: str) -> None:
        nonlocal pending
        if pending is None:
            raise DeploymentError("activation module without a preceding Linear")
        layers.append(pending)
        activations.append(activation)
        pending = None

    for module in model.layers:
        if isinstance(module, Linear):
            if pending is not None:
                flush("none")
            assert module.bias is not None, "deployment requires biased layers"
            weight_q, scale = _quantize_weight(module.weight.data)
            pending = QuantizedLinear(weight_q, scale, module.bias.data.astype(np.float32))
        elif isinstance(module, ReLU):
            flush("relu")
        elif isinstance(module, Sigmoid):
            flush("sigmoid")
        elif isinstance(module, Tanh):
            flush("tanh")
        else:
            raise DeploymentError(
                f"module {type(module).__name__} has no embedded deployment path"
            )
    if pending is not None:
        flush("none")
    if not layers:
        raise DeploymentError("model contains no Linear layers")
    return QuantizedMLP(tuple(layers), tuple(activations))
