"""Inference latency: Cortex-M4 cycle model and host wall clock.

The paper reports 10.781 ms per sample on the full feature set.  Two
complementary reproductions:

* :func:`cortex_m4_latency_ms` — an analytic cycle model of a CMSIS-NN
  style int8 GEMV loop on the 80 MHz M4F (MAC throughput, load/store and
  loop overhead), evaluated for the model's layer widths;
* :func:`measure_inference_ms` — measured single-sample latency of the
  Python implementation on the host (reported alongside, never conflated).
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import DeploymentError
from ..fastpath.plan import InferencePlan
from ..nn.modules import Module
from ..nn.tensor import Tensor, no_grad
from .footprint import NUCLEO_L432KC, DeviceProfile
from .quantize import QuantizedMLP

#: Effective cycles per int8 multiply-accumulate on an M4 with SMLAD-style
#: dual-MAC plus load overhead (CMSIS-NN reports ~2 MACs / 3 cycles).
_CYCLES_PER_MAC = 1.6
#: Per-output-neuron overhead: bias load, requantize, activation, store.
_CYCLES_PER_NEURON = 24.0
#: Per-layer call overhead.
_CYCLES_PER_LAYER = 400.0


def cortex_m4_latency_ms(
    model: QuantizedMLP, device: DeviceProfile = NUCLEO_L432KC
) -> float:
    """Analytic single-sample latency of the quantized model on the M4."""
    cycles = 0.0
    for layer in model.layers:
        macs = layer.in_features * layer.out_features
        cycles += macs * _CYCLES_PER_MAC
        cycles += layer.out_features * _CYCLES_PER_NEURON
        cycles += _CYCLES_PER_LAYER
    return 1e3 * cycles / device.clock_hz


def measure_inference_ms(
    model: Module | QuantizedMLP | InferencePlan,
    n_inputs: int,
    n_repeats: int = 200,
    warmup: int = 20,
) -> float:
    """Median wall-clock single-sample inference time on the host [ms].

    Accepts all three execution forms — the autograd :class:`Module`, the
    int8 :class:`QuantizedMLP` and the frozen
    :class:`~repro.fastpath.plan.InferencePlan` — so the tensor-path,
    quantized and fastpath latencies print from one helper.
    """
    if n_repeats < 1 or warmup < 0:
        raise DeploymentError("invalid timing parameters")
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, n_inputs))

    if isinstance(model, InferencePlan):
        def run() -> None:
            model.forward(x)
    elif isinstance(model, QuantizedMLP):
        def run() -> None:
            model.forward(x)
    else:
        model.eval()

        def run() -> None:
            with no_grad():
                model(Tensor(x))

    for _ in range(warmup):
        run()
    samples = []
    for _ in range(n_repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return 1e3 * float(np.median(samples))
