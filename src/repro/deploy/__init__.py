"""Embedded deployment substrate (Nucleo-L432KC target).

The paper stresses deployability: "a model size of 15.18 KiB, with a RAM
occupancy of 23.04 KiB, being easily deployable over a resource-constraint
device such as Nucleo-L432KC" with 10.781 ms inference per sample.  This
subpackage reproduces that resource accounting without the physical board:

* :mod:`repro.deploy.quantize` — int8 post-training quantization;
* :mod:`repro.deploy.export` — C header generation of the weights;
* :mod:`repro.deploy.footprint` — flash/RAM budgets vs. the L432KC;
* :mod:`repro.deploy.timing` — cycle-model latency on the Cortex-M4 plus
  wall-clock measurement of the Python implementation.
"""

from .quantize import QuantizedLinear, QuantizedMLP, quantize_model
from .export import export_c_header, export_plan, load_plan
from .footprint import FootprintReport, estimate_footprint, NUCLEO_L432KC
from .timing import cortex_m4_latency_ms, measure_inference_ms
from .c_runtime import (
    generate_inference_source,
    write_firmware_bundle,
    compile_firmware,
    run_firmware,
    validate_against_python,
    host_compiler,
)

__all__ = [
    "QuantizedLinear",
    "QuantizedMLP",
    "quantize_model",
    "export_c_header",
    "export_plan",
    "load_plan",
    "FootprintReport",
    "estimate_footprint",
    "NUCLEO_L432KC",
    "cortex_m4_latency_ms",
    "measure_inference_ms",
    "generate_inference_source",
    "write_firmware_bundle",
    "compile_firmware",
    "run_firmware",
    "validate_against_python",
    "host_compiler",
]
