"""Binary logistic regression.

The paper's linear baseline: "the Logistic Regressor is a linear
classifier whose results demonstrate that it is not easy to describe the
intricate relationships of data in a linear manner" (Section V-B).
Optimised by full-batch gradient descent with optional L2 regularisation
and a backtracking-free adaptive step (halve on loss increase) — robust
enough for the ~100-feature problems here without an external solver.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..metrics.classification import accuracy


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class LogisticRegression:
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (never the intercept).
    lr:
        Initial gradient-descent step size.
    max_iter:
        Iteration budget.
    tol:
        Stop when the loss improves by less than this between iterations.
    """

    def __init__(
        self,
        l2: float = 1e-4,
        lr: float = 0.5,
        max_iter: int = 300,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ConfigurationError("l2 must be >= 0")
        if lr <= 0:
            raise ConfigurationError("lr must be positive")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.l2 = l2
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def _check_xy(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} labels")
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ShapeError("labels must be binary 0/1")
        return x, y

    def _loss(self, x: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
        p = _sigmoid(x @ w + b)
        eps = 1e-12
        nll = -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
        return float(nll + 0.5 * self.l2 * np.dot(w, w))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x, y = self._check_xy(x, y)
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        lr = self.lr
        loss = self._loss(x, y, w, b)
        for iteration in range(self.max_iter):
            p = _sigmoid(x @ w + b)
            error = p - y
            grad_w = x.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            new_w = w - lr * grad_w
            new_b = b - lr * grad_b
            new_loss = self._loss(x, y, new_w, new_b)
            if new_loss > loss:
                lr *= 0.5  # overshoot: shrink the step, retry next iteration
                if lr < 1e-10:
                    break
                continue
            improvement = loss - new_loss
            w, b, loss = new_w, new_b, new_loss
            self.n_iter_ = iteration + 1
            if improvement < self.tol:
                break
        self.weights_ = w
        self.intercept_ = b
        return self

    def _check_fitted_x(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LogisticRegression.predict before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.weights_.shape[0]:
            raise ShapeError(
                f"model fitted on {self.weights_.shape[0]} features, got {x.shape}"
            )
        return x

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(occupied) per row, shape ``(n,)``."""
        x = self._check_fitted_x(x)
        assert self.weights_ is not None
        return _sigmoid(x @ self.weights_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self.predict_proba(x) >= 0.5).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set (Estimator protocol)."""
        return accuracy(np.asarray(y), self.predict(x))

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logits ``x @ w + b``."""
        x = self._check_fitted_x(x)
        assert self.weights_ is not None
        return x @ self.weights_ + self.intercept_
