"""Histogram-binned CART decision trees.

An exact-split CART over millions of rows is too slow in pure Python, so —
like LightGBM — features are first quantised into at most ``n_bins``
quantile bins and split search runs on per-bin histograms.  Split finding
per node then costs ``O(n + n_bins)`` per candidate feature, which makes a
full random forest on the campaign dataset train in seconds.

Classification trees minimise Gini impurity (binary labels, matching the
paper's occupancy task); regression trees minimise within-node variance.
The public classes follow the fit/predict convention of the rest of
:mod:`repro.baselines`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError

#: Marker stored in the ``feature`` array for leaf nodes.
_LEAF = -1


def quantile_bin_edges(x: np.ndarray, n_bins: int) -> list[np.ndarray]:
    """Per-feature interior bin edges from quantiles (deduplicated)."""
    edges: list[np.ndarray] = []
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    for j in range(x.shape[1]):
        col_edges = np.unique(np.quantile(x[:, j], qs))
        edges.append(col_edges)
    return edges


def apply_bins(x: np.ndarray, edges: list[np.ndarray]) -> np.ndarray:
    """Quantise features to bin indices using precomputed edges."""
    if x.shape[1] != len(edges):
        raise ShapeError(f"{x.shape[1]} features but {len(edges)} edge sets")
    binned = np.empty(x.shape, dtype=np.int32)
    for j, col_edges in enumerate(edges):
        binned[:, j] = np.searchsorted(col_edges, x[:, j], side="right")
    return binned


class _BaseDecisionTree:
    """Shared CART machinery; subclasses choose the impurity criterion."""

    #: "gini" or "mse"; set by subclasses.
    criterion = "gini"

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 5,
        min_samples_split: int = 10,
        max_features: int | str | None = None,
        n_bins: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ConfigurationError("invalid min sample constraints")
        if n_bins < 2 or n_bins > 256:
            raise ConfigurationError("n_bins must be within [2, 256]")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.n_bins = n_bins
        self._rng = rng or np.random.default_rng()
        # Flat node arrays, filled during fit.
        self._feature: list[int] = []
        self._threshold_bin: list[int] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._edges: list[np.ndarray] | None = None

    # ----------------------------------------------------------------- sizes

    @property
    def n_nodes(self) -> int:
        return len(self._feature)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._feature:
            raise NotFittedError("tree not fitted")

        def node_depth(i: int) -> int:
            if self._feature[i] == _LEAF:
                return 0
            return 1 + max(node_depth(self._left[i]), node_depth(self._right[i]))

        return node_depth(0)

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, int):
            if not 1 <= self.max_features <= d:
                raise ConfigurationError(f"max_features must be in [1, {d}]")
            return self.max_features
        raise ConfigurationError(f"bad max_features: {self.max_features!r}")

    # ------------------------------------------------------------------- fit

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _best_split(
        self, binned: np.ndarray, y: np.ndarray, idx: np.ndarray, features: np.ndarray
    ) -> tuple[int, int] | None:
        """Best (feature, threshold_bin) by impurity decrease, or None."""
        n = idx.size
        y_node = y[idx]
        best_gain = 1e-12
        best: tuple[int, int] | None = None

        if self.criterion == "gini":
            total_pos = float(y_node.sum())
            parent_score = total_pos**2 / n + (n - total_pos) ** 2 / n
        else:
            sum_y = float(y_node.sum())
            sum_y2 = float((y_node**2).sum())
            parent_score = sum_y**2 / n

        for f in features:
            bins_f = binned[idx, f]
            counts = np.bincount(bins_f, minlength=self.n_bins)
            if self.criterion == "gini":
                pos = np.bincount(bins_f, weights=y_node, minlength=self.n_bins)
                c_counts = np.cumsum(counts)[:-1]
                c_pos = np.cumsum(pos)[:-1]
                n_left = c_counts
                n_right = n - c_counts
                valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
                if not np.any(valid):
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    left_score = np.where(
                        n_left > 0,
                        (c_pos**2 + (n_left - c_pos) ** 2) / np.maximum(n_left, 1),
                        0.0,
                    )
                    pos_right = total_pos - c_pos
                    right_score = np.where(
                        n_right > 0,
                        (pos_right**2 + (n_right - pos_right) ** 2) / np.maximum(n_right, 1),
                        0.0,
                    )
                gain = np.where(valid, left_score + right_score - parent_score, -np.inf)
            else:
                sums = np.bincount(bins_f, weights=y_node, minlength=self.n_bins)
                c_counts = np.cumsum(counts)[:-1]
                c_sums = np.cumsum(sums)[:-1]
                n_left = c_counts
                n_right = n - c_counts
                valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
                if not np.any(valid):
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    left_score = np.where(n_left > 0, c_sums**2 / np.maximum(n_left, 1), 0.0)
                    sums_right = sum_y - c_sums
                    right_score = np.where(
                        n_right > 0, sums_right**2 / np.maximum(n_right, 1), 0.0
                    )
                gain = np.where(valid, left_score + right_score - parent_score, -np.inf)

            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best = (int(f), k)
        return best

    def _fit_binned(self, binned: np.ndarray, y: np.ndarray) -> None:
        """Grow the tree from pre-binned features."""
        d = binned.shape[1]
        n_candidates = self._n_candidate_features(d)
        # Stack of (row indices, depth, parent slot setter).
        root_idx = np.arange(binned.shape[0])
        stack: list[tuple[np.ndarray, int, int, bool]] = [(root_idx, 0, -1, False)]
        while stack:
            idx, depth, parent, is_right = stack.pop()
            node_id = len(self._feature)
            if parent >= 0:
                if is_right:
                    self._right[parent] = node_id
                else:
                    self._left[parent] = node_id

            y_node = y[idx]
            make_leaf = (
                depth >= self.max_depth
                or idx.size < self.min_samples_split
                or np.all(y_node == y_node[0])
            )
            split = None
            if not make_leaf:
                if n_candidates == d:
                    features = np.arange(d)
                else:
                    features = self._rng.choice(d, size=n_candidates, replace=False)
                split = self._best_split(binned, y, idx, features)
                make_leaf = split is None

            if make_leaf:
                self._feature.append(_LEAF)
                self._threshold_bin.append(0)
                self._left.append(-1)
                self._right.append(-1)
                self._value.append(self._leaf_value(y_node))
                continue

            assert split is not None
            feature, threshold = split
            self._feature.append(feature)
            self._threshold_bin.append(threshold)
            self._left.append(-1)
            self._right.append(-1)
            self._value.append(self._leaf_value(y_node))

            go_left = binned[idx, feature] <= threshold
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            # Push right first so the left subtree is built (and numbered)
            # first, giving deterministic node ids.
            stack.append((right_idx, depth + 1, node_id, True))
            stack.append((left_idx, depth + 1, node_id, False))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_BaseDecisionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} targets")
        if self.criterion == "gini" and not np.all(np.isin(y, (0.0, 1.0))):
            raise ShapeError("classification labels must be binary 0/1")
        self._feature.clear()
        self._threshold_bin.clear()
        self._left.clear()
        self._right.clear()
        self._value.clear()
        self._edges = quantile_bin_edges(x, self.n_bins)
        binned = apply_bins(x, self._edges)
        self._fit_binned(binned, y)
        return self

    # --------------------------------------------------------------- predict

    def _raw_predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf value per row (probability or mean), vectorised traversal."""
        if self._edges is None or not self._feature:
            raise NotFittedError("tree not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != len(self._edges):
            raise ShapeError(f"expected (n, {len(self._edges)}), got {x.shape}")
        binned = apply_bins(x, self._edges)
        feature = np.array(self._feature)
        threshold = np.array(self._threshold_bin)
        left = np.array(self._left)
        right = np.array(self._right)
        value = np.array(self._value)

        node = np.zeros(x.shape[0], dtype=np.int64)
        active = feature[node] != _LEAF
        while np.any(active):
            rows = np.flatnonzero(active)
            current = node[rows]
            f = feature[current]
            go_left = binned[rows, f] <= threshold[current]
            node[rows] = np.where(go_left, left[current], right[current])
            active[rows] = feature[node[rows]] != _LEAF
        return value[node]


class DecisionTreeClassifier(_BaseDecisionTree):
    """Binary CART classifier (Gini criterion)."""

    criterion = "gini"

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(class 1) per row."""
        return self._raw_predict(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self._raw_predict(x) >= 0.5).astype(int)


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor (variance-reduction criterion)."""

    criterion = "mse"

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted mean per row."""
        return self._raw_predict(x)
