"""Scaled model pipelines: standardisation fused with a classifier.

Raw CSI amplitudes and degC/%RH environment columns differ by orders of
magnitude, so the distance-based and gradient-descent baselines need
standardised inputs.  Scaling is *part of the model* (fitted on the
training fold only, applied at predict time), which keeps the baseline
linear/metric in the original features and keeps the leakage boundary
honest.  These classes were previously private to the fold harness
(``core/experiment.py``); they are public now so the serving engine and
user code can treat them as ordinary
:class:`~repro.core.estimator.Estimator` conformers.

Both pipelines persist to a single NPZ archive (scaler statistics plus
the wrapped model's fitted state), giving them the same ``save``/``load``
surface as the neural :class:`~repro.core.detector.OccupancyDetector`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import NotFittedError, SerializationError
from ..metrics.classification import accuracy
from .knn import KNeighborsClassifier
from .logistic import LogisticRegression
from .scaler import StandardScaler


def _load_archive(path: str | Path, kind: str) -> dict[str, np.ndarray]:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such model file: {path}")
    with np.load(path) as archive:
        payload = {name: archive[name] for name in archive.files}
    if payload.get("__kind__", np.array("")).item() != kind:
        raise SerializationError(f"{path} is not a saved {kind} pipeline")
    return payload


class ScaledLogistic:
    """Logistic regression with internal standardisation.

    Our gradient-descent solver wants standardised inputs (sklearn's copes
    via conditioning); the model stays linear in the original features.
    """

    def __init__(self, **logistic_kwargs: float) -> None:
        self._scaler = StandardScaler()
        self._model = LogisticRegression(**logistic_kwargs)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ScaledLogistic":
        self._model.fit(self._scaler.fit_transform(x), y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._model.predict(self._scaler.transform(x))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._model.predict_proba(self._scaler.transform(x))

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return accuracy(np.asarray(y), self.predict(x))

    def save(self, path: str | Path) -> Path:
        """Persist the scaler statistics and the fitted weights."""
        if self._model.weights_ is None:
            raise NotFittedError("ScaledLogistic.save before fit")
        path = Path(path)
        np.savez_compressed(
            path,
            __kind__=np.array("scaled_logistic"),
            weights=self._model.weights_,
            intercept=np.array(self._model.intercept_),
            **self._scaler.state,
        )
        return path

    def load(self, path: str | Path) -> "ScaledLogistic":
        """Restore a pipeline saved with :meth:`save`."""
        payload = _load_archive(path, "scaled_logistic")
        self._scaler = StandardScaler.from_state(
            {"mean": payload["mean"], "scale": payload["scale"]}
        )
        self._model.weights_ = payload["weights"]
        self._model.intercept_ = float(payload["intercept"])
        return self


class ScaledKNN:
    """k-NN with internal standardisation (distances need equal scales).

    ``max_train_rows`` strides the training set down so brute-force
    distance evaluation stays fast at campaign scale.
    """

    def __init__(self, n_neighbors: int = 7, max_train_rows: int = 8000) -> None:
        self._scaler = StandardScaler()
        self._model = KNeighborsClassifier(n_neighbors)
        self._max_train_rows = max_train_rows

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ScaledKNN":
        stride = max(1, x.shape[0] // self._max_train_rows)
        self._model.fit(self._scaler.fit_transform(x)[::stride], np.asarray(y)[::stride])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._model.predict(self._scaler.transform(x))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._model.predict_proba(self._scaler.transform(x))

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return accuracy(np.asarray(y), self.predict(x))

    def save(self, path: str | Path) -> Path:
        """Persist the scaler statistics and the (strided) reference set."""
        if self._model._x is None or self._model._y is None:
            raise NotFittedError("ScaledKNN.save before fit")
        path = Path(path)
        np.savez_compressed(
            path,
            __kind__=np.array("scaled_knn"),
            x=self._model._x,
            y=self._model._y,
            n_neighbors=np.array(self._model.n_neighbors),
            **self._scaler.state,
        )
        return path

    def load(self, path: str | Path) -> "ScaledKNN":
        """Restore a pipeline saved with :meth:`save`."""
        payload = _load_archive(path, "scaled_knn")
        self._scaler = StandardScaler.from_state(
            {"mean": payload["mean"], "scale": payload["scale"]}
        )
        self._model = KNeighborsClassifier(int(payload["n_neighbors"]))
        self._model.fit(payload["x"], payload["y"])
        return self
