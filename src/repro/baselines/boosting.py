"""Gradient-boosted decision trees (binary classification).

The missing member of the classic non-linear baseline family: where the
random forest averages independent deep-ish trees, boosting fits shallow
regression trees sequentially on the logistic loss's gradient.  Built on
the same histogram-binned CART regressors as the forest, so it stays fast
at campaign scale.

Standard Friedman recipe: raw score ``F_m = F_{m-1} + lr * h_m`` where
``h_m`` is a regression tree fit to the residual ``y - sigmoid(F_{m-1})``;
``F_0`` is the log-odds of the base rate.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..metrics.classification import accuracy
from .tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class GradientBoostingClassifier:
    """Binary GBDT with logistic loss.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of the weak learners (shallow by design).
    subsample:
        Row fraction drawn (without replacement) per round — stochastic
        gradient boosting.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        n_bins: int = 64,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.n_bins = n_bins
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self.base_score_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} labels")
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ShapeError("labels must be binary 0/1")

        rng = np.random.default_rng(self.seed)
        rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(rate / (1.0 - rate)))
        scores = np.full(y.shape[0], self.base_score_)
        self.trees_ = []
        n = x.shape[0]
        sample_size = max(1, int(round(self.subsample * n)))
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(scores)
            if sample_size < n:
                idx = rng.choice(n, size=sample_size, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                n_bins=self.n_bins,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(x[idx], residual[idx])
            scores = scores + self.learning_rate * tree.predict(x)
            self.trees_.append(tree)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw boosted scores (log-odds scale)."""
        if not self.trees_:
            raise NotFittedError("GradientBoostingClassifier.predict before fit")
        x = np.asarray(x, dtype=float)
        scores = np.full(x.shape[0], self.base_score_)
        for tree in self.trees_:
            scores = scores + self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(class 1) per row."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self.decision_function(x) >= 0.0).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set (Estimator protocol)."""
        return accuracy(np.asarray(y), self.predict(x))

    def staged_accuracy(self, x: np.ndarray, y: np.ndarray) -> list[float]:
        """Accuracy after each boosting round (learning-curve diagnostics)."""
        if not self.trees_:
            raise NotFittedError("GradientBoostingClassifier used before fit")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int).ravel()
        scores = np.full(x.shape[0], self.base_score_)
        curve = []
        for tree in self.trees_:
            scores = scores + self.learning_rate * tree.predict(x)
            curve.append(float(np.mean((scores >= 0.0).astype(int) == y)))
        return curve
