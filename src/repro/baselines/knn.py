"""k-nearest-neighbours classifier.

A distance-based non-parametric baseline: CSI occupancy detection is
essentially a manifold problem ("is this frame near the empty manifold?"),
so k-NN is the natural sanity-check comparator for the learned models.
Brute-force with chunked distance evaluation — fine for the campaign
scales here, and free of index-structure complexity.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..metrics.classification import accuracy


class KNeighborsClassifier:
    """Binary k-NN with Euclidean distance and majority vote.

    Parameters
    ----------
    n_neighbors:
        Vote size; ties at even ``k`` break toward occupied (class 1).
    chunk_size:
        Rows of the query matrix processed per distance block, bounding
        memory at ``chunk_size * n_train`` floats.
    """

    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512) -> None:
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int).ravel()
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} labels")
        if not np.all(np.isin(y, (0, 1))):
            raise ShapeError("labels must be binary 0/1")
        if x.shape[0] < self.n_neighbors:
            raise ConfigurationError(
                f"need at least n_neighbors={self.n_neighbors} training rows"
            )
        self._x = x
        self._y = y
        self._sq_norms = np.einsum("ij,ij->i", x, x)
        return self

    def _neighbor_votes(self, queries: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._y is not None
        votes = np.empty(queries.shape[0])
        for start in range(0, queries.shape[0], self.chunk_size):
            block = queries[start : start + self.chunk_size]
            # Squared Euclidean distances via the expansion trick.
            d2 = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ self._x.T
                + self._sq_norms[None, :]
            )
            idx = np.argpartition(d2, self.n_neighbors - 1, axis=1)[:, : self.n_neighbors]
            votes[start : start + block.shape[0]] = self._y[idx].mean(axis=1)
        return votes

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Fraction of occupied neighbours per query row."""
        if self._x is None:
            raise NotFittedError("KNeighborsClassifier.predict before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self._x.shape[1]:
            raise ShapeError(f"expected (n, {self._x.shape[1]}) queries, got {x.shape}")
        return self._neighbor_votes(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote labels (ties -> occupied)."""
        return (self.predict_proba(x) >= 0.5).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set (Estimator protocol)."""
        return accuracy(np.asarray(y), self.predict(x))
