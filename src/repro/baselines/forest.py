"""Random forests: bagged histogram-CART ensembles.

The paper's strongest baseline (Table IV): "the RF is a non-linear ensemble
model based on decision trees, famous for its ability to resist
overfitting, which achieves excellent performance."  Standard Breiman
recipe: each tree sees a bootstrap resample of the rows and a random
``sqrt(d)`` feature subset per split; predictions average over trees.

``max_samples`` bounds the bootstrap size so forests stay fast on the
multi-hundred-thousand-row campaign datasets.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..metrics.classification import accuracy
from .tree import DecisionTreeClassifier, DecisionTreeRegressor, _BaseDecisionTree


class _BaseForest:
    """Shared bagging machinery."""

    #: Tree class instantiated per estimator; set by subclasses.
    tree_cls: type[_BaseDecisionTree]

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        max_features: int | str | None = "sqrt",
        max_samples: int | float | None = None,
        n_bins: int = 64,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_samples = max_samples
        self.n_bins = n_bins
        self.seed = seed
        self.trees_: list[_BaseDecisionTree] = []

    def _bootstrap_size(self, n: int) -> int:
        if self.max_samples is None:
            return n
        if isinstance(self.max_samples, float):
            if not 0.0 < self.max_samples <= 1.0:
                raise ConfigurationError("float max_samples must be in (0, 1]")
            return max(1, int(self.max_samples * n))
        if isinstance(self.max_samples, int):
            if self.max_samples < 1:
                raise ConfigurationError("int max_samples must be >= 1")
            return min(self.max_samples, n)
        raise ConfigurationError(f"bad max_samples: {self.max_samples!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_BaseForest":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} rows but {y.shape[0]} targets")
        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        size = self._bootstrap_size(n)
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=size)
            tree = self.tree_cls(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                n_bins=self.n_bins,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def _mean_raw(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise NotFittedError("forest not fitted")
        return np.mean([tree._raw_predict(x) for tree in self.trees_], axis=0)


class RandomForestClassifier(_BaseForest):
    """Bagged binary classifier; probability = mean of tree leaf fractions."""

    tree_cls = DecisionTreeClassifier

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(class 1) per row, averaged over the ensemble."""
        return self._mean_raw(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self._mean_raw(x) >= 0.5).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set (Estimator protocol)."""
        return accuracy(np.asarray(y), self.predict(x))


class RandomForestRegressor(_BaseForest):
    """Bagged regressor; prediction = mean of tree means."""

    tree_cls = DecisionTreeRegressor

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values per row."""
        return self._mean_raw(x)
