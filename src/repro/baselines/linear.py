"""Linear least-squares regression.

Section V-D fits "a least-squares solution, both using linear regression
(ordinary least squares) and non-linear regression [...] implemented with
our neural network model."  :class:`LinearRegression` is the closed-form
OLS half of that comparison (multi-output, so one fit covers temperature
and humidity simultaneously); :class:`RidgeRegression` adds Tikhonov
damping for ill-conditioned feature sets such as near-constant guard-bin
subcarriers.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError


class LinearRegression:
    """Ordinary least squares, multi-output, via ``lstsq``."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    def _check_xy(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.ndim == 1:
            y = y[:, None]
        if y.ndim != 2 or y.shape[0] != x.shape[0]:
            raise ShapeError(f"targets {y.shape} incompatible with inputs {x.shape}")
        return x, y

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        x, y = self._check_xy(x, y)
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean(axis=0)
            coef, *_ = np.linalg.lstsq(x - x_mean, y - y_mean, rcond=None)
            self.coef_ = coef
            self.intercept_ = y_mean - x_mean @ coef
        else:
            coef, *_ = np.linalg.lstsq(x, y, rcond=None)
            self.coef_ = coef
            self.intercept_ = np.zeros(y.shape[1])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted targets, shape ``(n, n_outputs)``."""
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("LinearRegression.predict before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.coef_.shape[0]:
            raise ShapeError(
                f"model fitted on {self.coef_.shape[0]} features, got {x.shape}"
            )
        return x @ self.coef_ + self.intercept_


class RidgeRegression(LinearRegression):
    """L2-damped least squares solved via the normal equations."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept)
        if alpha < 0:
            raise ConfigurationError("alpha must be >= 0")
        self.alpha = alpha

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x, y = self._check_xy(x, y)
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean(axis=0)
            xc = x - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(x.shape[1])
            y_mean = np.zeros(y.shape[1])
            xc, yc = x, y
        d = x.shape[1]
        gram = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - x_mean @ self.coef_
        return self
