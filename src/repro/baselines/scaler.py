"""Feature scaling.

Both the MLP and the logistic regressor need standardised inputs (CSI
amplitudes live on a very different scale from degrees Celsius and %RH).
Scalers follow the fit/transform convention and are serialisable via their
``state`` property so deployed models can reproduce the exact training
normalisation on-device.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ShapeError


class StandardScaler:
    """Per-feature standardisation to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def _check_x(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"expected 2-D features, got {x.shape}")
        return x

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = self._check_x(x)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # (Near-)constant features — e.g. guard-bin subcarriers whose
        # recorded values differ only by float rounding dust — scale to 1
        # so they transform to ~zero instead of amplifying that dust by
        # fifteen orders of magnitude.
        threshold = 1e-9 * np.maximum(1.0, np.abs(self.mean_))
        self.scale_ = np.where(std > threshold, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform before fit")
        x = self._check_x(x)
        if x.shape[1] != self.mean_.shape[0]:
            raise ShapeError(
                f"scaler fitted on {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform before fit")
        x = self._check_x(x)
        return x * self.scale_ + self.mean_

    @property
    def state(self) -> dict[str, np.ndarray]:
        """Serialisable parameters (for on-device preprocessing export)."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler has no state before fit")
        return {"mean": self.mean_.copy(), "scale": self.scale_.copy()}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=float)
        scaler.scale_ = np.asarray(state["scale"], dtype=float)
        return scaler


class MinMaxScaler:
    """Per-feature scaling to [0, 1] (used by the int8 quantizer)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"expected 2-D features, got {x.shape}")
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        # Same near-constant guard as StandardScaler.
        threshold = 1e-9 * np.maximum(1.0, np.abs(self.min_))
        self.range_ = np.where(span > threshold, span, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler.transform before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.min_.shape[0]:
            raise ShapeError(f"expected (n, {self.min_.shape[0]}), got {x.shape}")
        return (x - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler.inverse_transform before fit")
        return np.asarray(x, dtype=float) * self.range_ + self.min_
