"""Comparison models (Section V-B / V-D), implemented from scratch.

The paper baselines its MLP against scikit-learn's Logistic Regression and
Random Forest for occupancy detection (Table IV), and against ordinary
least squares for environment regression (Table V).  No sklearn is
available here, so this subpackage provides:

* :mod:`repro.baselines.scaler` — standard / min-max feature scaling;
* :mod:`repro.baselines.logistic` — gradient-descent logistic regression;
* :mod:`repro.baselines.tree` — histogram-binned CART decision trees
  (classification and regression);
* :mod:`repro.baselines.forest` — bootstrap-aggregated random forests;
* :mod:`repro.baselines.linear` — closed-form OLS / ridge regression;
* :mod:`repro.baselines.pipeline` — public scaled pipelines
  (standardisation fused with logistic regression or k-NN).
"""

from .scaler import StandardScaler, MinMaxScaler
from .knn import KNeighborsClassifier
from .boosting import GradientBoostingClassifier
from .logistic import LogisticRegression
from .pipeline import ScaledKNN, ScaledLogistic
from .tree import DecisionTreeClassifier, DecisionTreeRegressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .linear import LinearRegression, RidgeRegression

__all__ = [
    "StandardScaler",
    "KNeighborsClassifier",
    "GradientBoostingClassifier",
    "MinMaxScaler",
    "ScaledKNN",
    "ScaledLogistic",
    "LogisticRegression",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "LinearRegression",
    "RidgeRegression",
]
