"""Configuration dataclasses for the simulation and learning pipelines.

Every tunable of the reproduction lives here so that experiments are fully
described by a handful of frozen dataclasses.  Defaults mirror the paper's
data-collection campaign (Section IV-A): a 12 x 6 x 3 m office, a 2.4 GHz /
20 MHz link sampled at 20 Hz, six subjects, and a 74-hour recording split
70/30 into a training fold and five temporally disjoint test folds.

The full-scale campaign is ~5.4M rows; by default we generate a *scaled*
campaign (same structure, smaller duration and rate) so the benchmark suite
runs on a laptop.  Scaling factors are explicit fields, never hidden.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .exceptions import ConfigurationError

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Carrier frequency of the paper's link: 2.4 GHz band.
DEFAULT_CARRIER_HZ = 2.412e9

#: Channel bandwidth used by the paper's Nexmon capture (20 MHz -> 64 carriers).
DEFAULT_BANDWIDTH_HZ = 20e6

#: CSI sampling rate of the Nexmon capture in the paper.
DEFAULT_SAMPLE_RATE_HZ = 20.0


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer parameters of the sensing link.

    The subcarrier count follows the paper's Section II-A rule
    ``d_H = 3.2 * bandwidth`` (bandwidth in MHz), i.e. 64 subcarriers for a
    20 MHz IEEE 802.11 channel.
    """

    carrier_hz: float = DEFAULT_CARRIER_HZ
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    tx_power_dbm: float = 15.0
    noise_floor_dbm: float = -92.0
    #: Rician K-factor [dB] of the small-scale fading in an empty room.
    rician_k_db: float = 12.0
    #: Share of the static diffuse power assigned to the slow AR(1) drift.
    drift_fraction: float = 0.03
    #: Mean-reversion time constant of the drift component [s].
    drift_tau_s: float = 3600.0
    #: Motion-jitter power at mobility 1.0 relative to the static diffuse
    #: power; 0 disables the motion channel entirely (ablation knob).
    mobility_power_boost: float = 2.0

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0:
            raise ConfigurationError(f"carrier_hz must be positive, got {self.carrier_hz}")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(f"bandwidth_hz must be positive, got {self.bandwidth_hz}")
        if self.bandwidth_hz >= self.carrier_hz:
            raise ConfigurationError("bandwidth cannot exceed the carrier frequency")
        if not 0.0 <= self.drift_fraction <= 1.0:
            raise ConfigurationError("drift_fraction must be within [0, 1]")
        if self.drift_tau_s <= 0:
            raise ConfigurationError("drift_tau_s must be positive")
        if self.mobility_power_boost < 0:
            raise ConfigurationError("mobility_power_boost must be >= 0")

    @property
    def n_subcarriers(self) -> int:
        """Number of CSI entries, ``d_H = 3.2 * bandwidth_MHz`` (Sec. II-A)."""
        return int(round(3.2 * self.bandwidth_hz / 1e6))

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return SPEED_OF_LIGHT / self.carrier_hz


@dataclass(frozen=True)
class RoomConfig:
    """Geometry of the office in Section IV-A.

    A single large office, 12 x 6 x 3 metres, plasterboard internal walls and
    reinforced-concrete external walls, three windows and one door.  The AP
    and sniffer (RP1) sit 2 m apart at 1.4 m height; occupants cannot pass
    between them.
    """

    length_m: float = 12.0
    width_m: float = 6.0
    height_m: float = 3.0
    #: Transmitter (access point) position [x, y, z] in metres.
    tx_position: tuple[float, float, float] = (5.0, 0.5, 1.4)
    #: Receiver (RP1 CSI sniffer) position [x, y, z] in metres.
    rx_position: tuple[float, float, float] = (7.0, 0.5, 1.4)
    #: Additional sniffer positions (multi-link extension); each adds a
    #: 64-wide CSI block to every dataset row.
    extra_rx_positions: tuple[tuple[float, float, float], ...] = ()
    n_windows: int = 3
    #: Maximum image-method reflection order for the ray tracer.
    max_reflection_order: int = 1

    def __post_init__(self) -> None:
        for name in ("length_m", "width_m", "height_m"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        positions = [("tx_position", self.tx_position), ("rx_position", self.rx_position)]
        positions += [
            (f"extra_rx_positions[{i}]", pos)
            for i, pos in enumerate(self.extra_rx_positions)
        ]
        for name, pos in positions:
            if len(pos) != 3:
                raise ConfigurationError(f"{name} must be a 3-tuple")
            x, y, z = pos
            if not (0 <= x <= self.length_m and 0 <= y <= self.width_m and 0 <= z <= self.height_m):
                raise ConfigurationError(f"{name}={pos} lies outside the room")
        if self.max_reflection_order < 0:
            raise ConfigurationError("max_reflection_order must be >= 0")

    @property
    def all_rx_positions(self) -> tuple[tuple[float, float, float], ...]:
        """Primary plus extra receiver positions, in link order."""
        return (self.rx_position, *self.extra_rx_positions)


@dataclass(frozen=True)
class ThermalConfig:
    """Thermostat-driven thermal and humidity dynamics of the office.

    The paper notes the office "presents a heating system that activates and
    deactivates automatically" and that occupants modify the environment.
    Values bracket the observed ranges of Table III (T 18.4-40.1 degC,
    H 16-49 %RH).
    """

    #: Heating setpoint during office hours [degC].
    setpoint_day_c: float = 22.0
    #: Night-setback setpoint [degC]; produces the cold-morning fold-4 trap.
    setpoint_night_c: float = 19.0
    #: Thermostat hysteresis half-width [degC].
    hysteresis_c: float = 0.8
    #: Heater power when on, expressed as a heating rate [degC/hour].
    heater_rate_c_per_h: float = 3.0
    #: Exponential leakage time constant towards the outdoor temperature [h].
    leakage_tau_h: float = 6.0
    #: Mean January outdoor temperature in Verona [degC].
    outdoor_mean_c: float = 4.0
    #: Day/night outdoor swing amplitude [degC].
    outdoor_swing_c: float = 4.0
    #: Sensible heat gain per occupant, as a rate [degC/hour/person].
    occupant_heat_c_per_h: float = 0.35
    #: Moisture gain per occupant [%RH/hour/person].
    occupant_moisture_rh_per_h: float = 4.0
    #: Ventilation/leak decay of excess humidity towards baseline [h].
    humidity_tau_h: float = 1.5
    #: Baseline indoor relative humidity with no occupants [%RH].
    humidity_base_rh: float = 30.0
    #: Relative-humidity drop per degC of heating (psychrometric effect).
    humidity_per_deg_rh: float = 2.0
    #: Initial indoor temperature [degC].
    initial_temperature_c: float = 21.0
    #: Initial indoor relative humidity [%RH].
    initial_humidity_rh: float = 40.0

    def __post_init__(self) -> None:
        if self.hysteresis_c <= 0:
            raise ConfigurationError("hysteresis_c must be positive")
        if self.leakage_tau_h <= 0 or self.humidity_tau_h <= 0:
            raise ConfigurationError("time constants must be positive")
        if not 0 <= self.humidity_base_rh <= 100:
            raise ConfigurationError("humidity_base_rh must be within [0, 100]")


@dataclass(frozen=True)
class BehaviorConfig:
    """Occupant population and schedule model (Section V-A).

    Six subjects used the office freely over office hours.  The Markov
    activity model and the arrival/departure schedule are tuned so the
    resulting occupant-count histogram approximates Table II
    (empty 63.2 %, 1p 18.4 %, 2p 10.6 %, 3p 6.2 %, 4p 1.6 %).
    """

    n_subjects: int = 6
    #: Hour of day when subjects may start arriving.
    workday_start_h: float = 8.0
    #: Hour of day after which everyone has left.
    workday_end_h: float = 19.5
    #: Mean length of a subject's continuous stay in the office [h].
    mean_stay_h: float = 1.2
    #: Mean gap between a subject's visits during the workday [h].
    mean_gap_h: float = 5.0
    #: Mean occupant walking speed [m/s].
    walk_speed_mps: float = 1.0
    #: Probability per minute that a present occupant perturbs furniture.
    furniture_move_rate_per_min: float = 0.02

    def __post_init__(self) -> None:
        if self.n_subjects < 1:
            raise ConfigurationError("n_subjects must be >= 1")
        if not 0 <= self.workday_start_h < self.workday_end_h <= 24:
            raise ConfigurationError("workday hours must satisfy 0 <= start < end <= 24")
        if self.mean_stay_h <= 0 or self.mean_gap_h <= 0:
            raise ConfigurationError("stay/gap means must be positive")


@dataclass(frozen=True)
class CampaignConfig:
    """End-to-end data-collection campaign.

    The paper recorded 74 h starting 2022-01-04 15:08:40 at 20 Hz
    (5,362,340 rows).  ``duration_h`` and ``sample_rate_hz`` default to a
    laptop-scale campaign with identical structure; pass
    ``CampaignConfig.paper_scale()`` for the full-size arithmetic.
    """

    radio: RadioConfig = field(default_factory=RadioConfig)
    room: RoomConfig = field(default_factory=RoomConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    #: Campaign length in hours (paper: 74.0).
    duration_h: float = 74.0
    #: Rows per second (paper: 20.0).  Scaled down by default.
    sample_rate_hz: float = 0.5
    #: Campaign start expressed as hour-of-day (paper: 15:08:40 on Jan 4).
    start_hour_of_day: float = 15.0 + 8.0 / 60.0
    #: RNG seed; campaigns are fully reproducible.
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.duration_h <= 0:
            raise ConfigurationError("duration_h must be positive")
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if not 0 <= self.start_hour_of_day < 24:
            raise ConfigurationError("start_hour_of_day must be within [0, 24)")

    @property
    def n_samples(self) -> int:
        """Total number of rows the campaign will produce."""
        return int(round(self.duration_h * 3600.0 * self.sample_rate_hz))

    @classmethod
    def paper_scale(cls, **overrides: object) -> "CampaignConfig":
        """The full-size campaign of Section V-A (74 h at 20 Hz)."""
        cfg = cls(duration_h=74.0, sample_rate_hz=20.0)
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def smoke_scale(cls, **overrides: object) -> "CampaignConfig":
        """A tiny campaign for unit tests (structure-preserving)."""
        cfg = cls(duration_h=4.0, sample_rate_hz=0.25)
        return replace(cfg, **overrides) if overrides else cfg


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the paper's MLP training (Section V-B)."""

    epochs: int = 10
    learning_rate: float = 5e-3
    batch_size: int = 256
    weight_decay: float = 1e-4
    #: Hidden layer widths of the 4-layer MLP (Section IV-B).
    hidden_sizes: Sequence[int] = (128, 256, 128)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        if any(h < 1 for h in self.hidden_sizes):
            raise ConfigurationError("hidden sizes must all be >= 1")
