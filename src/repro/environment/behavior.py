"""World simulator: occupants, activities, furniture and climate over time.

:class:`BehaviorSimulator` ties the substrate together.  Per tick it

1. consults the presence schedule to decide who is inside,
2. advances a Markov activity model (walking/standing/sitting) for each
   present occupant and their kinematics,
3. occasionally perturbs furniture (chairs move, curtains toggle) while
   people are present — the paper's "unconstrained environment",
4. integrates the thermal and humidity models with the current head count,

and emits a :class:`WorldState` snapshot the recorder feeds to the channel
and sensor models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.geometry import Room, Vec3
from ..channel.propagation import Scatterer
from ..config import BehaviorConfig, ThermalConfig
from ..exceptions import ConfigurationError
from .hygro import HumiditySimulator
from .occupants import Activity, ExclusionBox, Occupant, default_population
from .room import OfficeLayout
from .schedule import PresenceInterval, ScheduleGenerator
from .thermal import ThermalSimulator

#: Per-minute transition matrix of the activity Markov chain, rows/cols in
#: order (WALKING, STANDING, SITTING).  Office workers mostly sit.
_ACTIVITY_ORDER = (Activity.WALKING, Activity.STANDING, Activity.SITTING)
_TRANSITIONS_PER_MIN = np.array(
    [
        [0.45, 0.25, 0.30],  # from walking
        [0.25, 0.40, 0.35],  # from standing
        [0.06, 0.04, 0.90],  # from sitting
    ]
)


#: Dataset activity codes (the paper's future-work task, Section VI).
ACTIVITY_CODES = {
    None: 0,  # room empty
    Activity.WALKING: 1,
    Activity.STANDING: 2,
    Activity.SITTING: 3,
}

ACTIVITY_NAMES = {0: "empty", 1: "walking", 2: "standing", 3: "sitting"}


@dataclass(frozen=True)
class WorldState:
    """Snapshot of everything the recorder needs at one instant."""

    t_s: float
    n_occupants: int
    occupied: bool
    temperature_c: float
    humidity_rh: float
    #: Dominant activity code (see ACTIVITY_CODES); 0 when empty.  The
    #: dominant activity is the most channel-affecting one present
    #: (walking > standing > sitting), which is also the easiest to sense.
    dominant_activity: int
    #: Bodies currently inside (time-varying channel contribution).
    occupant_scatterers: tuple[Scatterer, ...]
    #: Furniture contribution (changes only on layout perturbations).
    furniture_scatterers: tuple[Scatterer, ...]
    #: Bumped whenever the furniture layout changed; cache key for recorders.
    furniture_version: int
    #: Aggregate motion level in [0, 1], drives fading decorrelation.
    mobility: float

    @property
    def scatterers(self) -> tuple[Scatterer, ...]:
        """All channel scatterers, occupants first."""
        return self.occupant_scatterers + self.furniture_scatterers


class BehaviorSimulator:
    """Steps the office world forward in time.

    Parameters
    ----------
    room:
        Office geometry.
    behavior, thermal:
        Configuration of population and climate.
    tx, rx:
        Link endpoints (defines the occupant keep-out corridor).
    start_hour_of_day, duration_h:
        Campaign clock.
    rng:
        Seeded generator; the whole world is reproducible.
    """

    def __init__(
        self,
        room: Room,
        behavior: BehaviorConfig,
        thermal: ThermalConfig,
        tx: Vec3,
        rx: Vec3,
        start_hour_of_day: float,
        duration_h: float,
        rng: np.random.Generator,
    ) -> None:
        self.room = room
        self.behavior = behavior
        self._rng = rng
        self.exclusion = ExclusionBox.around_link(tx, rx)
        self.layout = OfficeLayout(room, rng=rng)
        self.occupants = default_population(rng, room, behavior.n_subjects)
        schedule_rng = np.random.default_rng(rng.integers(0, 2**63))
        self.schedule: list[PresenceInterval] = ScheduleGenerator(
            behavior, start_hour_of_day, duration_h, schedule_rng
        ).generate()
        self.thermal = ThermalSimulator(thermal, start_hour_of_day)
        self.hygro = HumiditySimulator(thermal)
        self._t_s = 0.0
        # Per-subject sorted interval arrays for O(log n) presence lookup.
        self._subject_intervals: list[tuple[np.ndarray, np.ndarray]] = []
        for sid in range(behavior.n_subjects):
            ivs = [iv for iv in self.schedule if iv.subject_id == sid]
            starts = np.array([iv.start_s for iv in ivs])
            ends = np.array([iv.end_s for iv in ivs])
            self._subject_intervals.append((starts, ends))

    # ------------------------------------------------------------- presence

    def _is_present(self, subject_id: int, t_s: float) -> bool:
        starts, ends = self._subject_intervals[subject_id]
        if starts.size == 0:
            return False
        idx = int(np.searchsorted(starts, t_s, side="right")) - 1
        return idx >= 0 and t_s < ends[idx]

    # ------------------------------------------------------------ activities

    def _advance_activity(self, occupant: Occupant, dt_s: float) -> None:
        """One Markov transition, scaled from the per-minute matrix."""
        if occupant.activity is Activity.AWAY:
            # Fresh arrival: people enter walking.
            occupant.activity = Activity.WALKING
            return
        p_change = min(dt_s / 60.0, 1.0)
        if self._rng.random() >= p_change:
            return
        row = _ACTIVITY_ORDER.index(occupant.activity)
        probs = _TRANSITIONS_PER_MIN[row]
        occupant.activity = self._rng.choice(_ACTIVITY_ORDER, p=probs)

    # ------------------------------------------------------------------ step

    def step(self, dt_s: float) -> WorldState:
        """Advance the world by ``dt_s`` seconds and return the new state."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        self._t_s += dt_s
        t = self._t_s

        n_present = 0
        mobility = 0.0
        scatterers: list[Scatterer] = []
        present_activities: list[Activity] = []
        for occupant in self.occupants:
            if self._is_present(occupant.subject_id, t):
                n_present += 1
                self._advance_activity(occupant, dt_s)
                occupant.step(dt_s, self.room, self._rng, self.exclusion)
                present_activities.append(occupant.activity)
            else:
                occupant.activity = Activity.AWAY
            s = occupant.as_scatterer()
            if s is not None:
                scatterers.append(s)
                mobility = max(mobility, occupant.mobility())

        # Dominant activity: walking beats standing beats sitting, because
        # that is the ordering of their channel footprint.
        dominant = 0
        for activity in (Activity.WALKING, Activity.STANDING, Activity.SITTING):
            if activity in present_activities:
                dominant = ACTIVITY_CODES[activity]
                break

        # Unconstrained-environment perturbations while people are around.
        if n_present > 0:
            rate = self.behavior.furniture_move_rate_per_min * dt_s / 60.0
            if self._rng.random() < rate:
                self.layout.perturb(1)
            if self._rng.random() < 0.3 * rate:
                self.layout.toggle_curtain()

        temperature = self.thermal.step(t, dt_s, n_present)
        humidity = self.hygro.step(dt_s, n_present, temperature)

        return WorldState(
            t_s=t,
            n_occupants=n_present,
            occupied=n_present > 0,
            temperature_c=float(temperature),
            humidity_rh=float(humidity),
            dominant_activity=dominant,
            occupant_scatterers=tuple(scatterers),
            furniture_scatterers=tuple(self.layout.static_scatterers()),
            furniture_version=self.layout.version,
            mobility=mobility,
        )

    @property
    def t_s(self) -> float:
        """Current campaign time in seconds."""
        return self._t_s
