"""Indoor relative-humidity dynamics.

Relative humidity in the simulated office is driven by three effects the
paper's Section V-A narrative names explicitly (breathing occupants, the
heating system, opened windows/doors):

* **Occupant moisture**: each person adds water vapour (breathing,
  perspiration), raising RH.
* **Psychrometric coupling**: warming air at constant absolute moisture
  *lowers* relative humidity — so heater cycles push RH down, producing the
  positive T-H correlation being only moderate (0.45) rather than 1.0.
* **Ventilation relaxation**: RH decays towards a baseline with a time
  constant, modelling air exchange.

State is a single RH value integrated with forward Euler; traces stay
inside Table III's 16-49 %RH envelope.
"""

from __future__ import annotations

import numpy as np

from ..config import ThermalConfig
from ..exceptions import ConfigurationError


class HumiditySimulator:
    """Integrates indoor relative humidity over a campaign."""

    def __init__(self, config: ThermalConfig) -> None:
        self.config = config
        self.humidity_rh = config.initial_humidity_rh
        self._last_temperature_c: float | None = None

    def step(self, dt_s: float, n_occupants: int, temperature_c: float) -> float:
        """Advance by ``dt_s`` and return the new relative humidity [%RH]."""
        if dt_s < 0:
            raise ConfigurationError("dt_s must be >= 0")
        if n_occupants < 0:
            raise ConfigurationError("n_occupants must be >= 0")
        cfg = self.config
        dt_h = dt_s / 3600.0

        moisture_gain = cfg.occupant_moisture_rh_per_h * n_occupants * dt_h
        relaxation = (self.humidity_rh - cfg.humidity_base_rh) / cfg.humidity_tau_h * dt_h

        if self._last_temperature_c is None:
            dT = 0.0
        else:
            dT = temperature_c - self._last_temperature_c
        self._last_temperature_c = temperature_c
        psychrometric = -cfg.humidity_per_deg_rh * dT

        self.humidity_rh += moisture_gain - relaxation + psychrometric
        self.humidity_rh = float(np.clip(self.humidity_rh, 5.0, 95.0))
        return self.humidity_rh
