"""Occupancy schedule generation.

Generates, per subject, the intervals during which they are inside the
office over the whole campaign.  The statistics are tuned so that a
74-hour campaign reproduces the *shape* of the paper's Table II occupant
histogram (empty ~63 %, and a decaying tail of 1..4 simultaneous people)
and Table III fold structure (empty nights, a mixed morning, a fully
occupied afternoon).

Subjects arrive/leave only within the workday window; nights are guaranteed
empty, which is what creates the three all-empty test folds of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import BehaviorConfig
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class PresenceInterval:
    """One continuous stay of one subject inside the office."""

    subject_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"interval must have positive length: [{self.start_s}, {self.end_s}]"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def covers(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


class ScheduleGenerator:
    """Samples per-subject presence intervals for a campaign.

    Parameters
    ----------
    config:
        Population/schedule tunables.
    start_hour_of_day:
        Hour of day at campaign time 0 (the paper starts 15:08).
    duration_h:
        Campaign length in hours.
    rng:
        Seeded generator; the schedule is fully reproducible.
    """

    def __init__(
        self,
        config: BehaviorConfig,
        start_hour_of_day: float,
        duration_h: float,
        rng: np.random.Generator,
    ) -> None:
        if duration_h <= 0:
            raise ConfigurationError("duration_h must be positive")
        self.config = config
        self.start_hour_of_day = start_hour_of_day
        self.duration_h = duration_h
        self._rng = rng

    def hour_of_day(self, t_s: float) -> float:
        """Wall-clock hour of day for campaign time ``t_s``."""
        return (self.start_hour_of_day + t_s / 3600.0) % 24.0

    def day_index(self, t_s: float) -> int:
        """Whole days elapsed since campaign start (day 0 = start day)."""
        return int((self.start_hour_of_day + t_s / 3600.0) // 24.0)

    def _workday_window_s(self, day: int) -> tuple[float, float] | None:
        """Campaign-time window of the workday on calendar day ``day``.

        Returns ``None`` if that day's workday lies entirely outside the
        campaign.
        """
        cfg = self.config
        day_origin_s = (day * 24.0 - self.start_hour_of_day) * 3600.0
        w0 = day_origin_s + cfg.workday_start_h * 3600.0
        w1 = day_origin_s + cfg.workday_end_h * 3600.0
        campaign_end_s = self.duration_h * 3600.0
        w0 = max(w0, 0.0)
        w1 = min(w1, campaign_end_s)
        if w1 <= w0:
            return None
        return w0, w1

    def _subject_day_intervals(
        self, subject_id: int, window: tuple[float, float]
    ) -> list[PresenceInterval]:
        """Alternating gap/stay sampling inside one workday window."""
        cfg = self.config
        w0, w1 = window
        intervals: list[PresenceInterval] = []
        # ~12% chance a subject skips the office entirely that day.
        if self._rng.random() < 0.12:
            return intervals
        t = w0 + self._rng.exponential(0.5 * cfg.mean_gap_h * 3600.0)
        while t < w1:
            stay = self._rng.exponential(cfg.mean_stay_h * 3600.0)
            stay = float(np.clip(stay, 120.0, (w1 - t)))
            intervals.append(PresenceInterval(subject_id, t, t + stay))
            # Afternoons are the office's busy period (the paper's final
            # test fold, 13:09-19:16, is fully occupied): shorten the gap
            # until the next visit when it starts in the afternoon.
            gap_mean = cfg.mean_gap_h * 3600.0
            if 13.0 <= self.hour_of_day(t + stay) < 19.0:
                gap_mean *= 0.35
            t += stay + self._rng.exponential(gap_mean)
        return intervals

    def generate(self) -> list[PresenceInterval]:
        """All presence intervals for all subjects over the campaign."""
        intervals: list[PresenceInterval] = []
        last_day = self.day_index(self.duration_h * 3600.0 - 1e-6)
        for day in range(last_day + 1):
            window = self._workday_window_s(day)
            if window is None:
                continue
            for subject in range(self.config.n_subjects):
                intervals.extend(self._subject_day_intervals(subject, window))
        intervals.sort(key=lambda iv: iv.start_s)
        return intervals


def occupancy_count(intervals: list[PresenceInterval], t_s: float) -> int:
    """How many subjects are inside at campaign time ``t_s``."""
    return sum(1 for iv in intervals if iv.covers(t_s))


def occupancy_counts(intervals: list[PresenceInterval], times_s: np.ndarray) -> np.ndarray:
    """Vectorised occupant count at each query time.

    Uses a +1/-1 event sweep, so the cost is
    ``O((n_intervals + n_times) log ...)`` rather than the quadratic naive
    scan — the campaign has thousands of intervals and millions of rows.
    """
    times_s = np.asarray(times_s, dtype=float)
    if not intervals:
        return np.zeros(times_s.shape, dtype=int)
    starts = np.array([iv.start_s for iv in intervals])
    ends = np.array([iv.end_s for iv in intervals])
    events = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones_like(starts), -np.ones_like(ends)])
    order = np.argsort(events, kind="stable")
    events = events[order]
    deltas = deltas[order]
    cumulative = np.cumsum(deltas)
    # Count at time t is the cumulative sum after all events <= t.  A start
    # at exactly t counts (interval covers t); an end at exactly t does not.
    idx = np.searchsorted(events, times_s, side="right")
    counts = np.where(idx > 0, cumulative[np.maximum(idx - 1, 0)], 0)
    return counts.astype(int)
