"""Occupant model: identity, kinematics and radar signature.

Each of the paper's six subjects is an :class:`Occupant` with a persistent
body build (height/radius, hence scattering cross-section), a desk they
gravitate to, and an activity-dependent motion model:

* ``WALKING`` — continuous 2D random-waypoint motion at ~1 m/s;
* ``STANDING`` — stationary, full height, small sway;
* ``SITTING`` — stationary at their desk, reduced effective height
  (a seated body intersects less of the propagation field);
* ``AWAY`` — outside the room, no channel interaction.

The RX/TX corridor is off limits — the paper states occupants cannot move
between AP and RP1 — enforced by an exclusion box around the link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..channel.geometry import Room, Vec3
from ..channel.propagation import Scatterer
from ..exceptions import GeometryError


class Activity(enum.Enum):
    """What an occupant is currently doing (paper Sec. IV-A examples)."""

    AWAY = "away"
    WALKING = "walking"
    STANDING = "standing"
    SITTING = "sitting"


@dataclass
class Occupant:
    """One subject with a body build and a current kinematic state."""

    subject_id: int
    height_m: float
    radius_m: float
    desk: Vec3
    walk_speed_mps: float = 1.0
    activity: Activity = Activity.AWAY
    position: Vec3 | None = None
    _waypoint: Vec3 | None = None

    def __post_init__(self) -> None:
        if self.height_m <= 0 or self.radius_m <= 0:
            raise GeometryError("occupant build must be positive")
        if self.position is None:
            self.position = self.desk

    @property
    def present(self) -> bool:
        return self.activity is not Activity.AWAY

    def effective_height_m(self) -> float:
        """Body height as seen by the channel (seated bodies are shorter)."""
        if self.activity is Activity.SITTING:
            return 0.75 * self.height_m
        return self.height_m

    def mobility(self) -> float:
        """Channel-decorrelation drive in [0, 1] for the fading model."""
        return {
            Activity.AWAY: 0.0,
            Activity.SITTING: 0.15,
            Activity.STANDING: 0.3,
            Activity.WALKING: 1.0,
        }[self.activity]

    def _pick_waypoint(self, room: Room, rng: np.random.Generator, forbidden: "ExclusionBox") -> Vec3:
        for _ in range(64):
            p = Vec3(
                float(rng.uniform(0.3, room.length_m - 0.3)),
                float(rng.uniform(0.3, room.width_m - 0.3)),
                0.0,
            )
            if not forbidden.contains(p):
                return p
        raise GeometryError("could not sample a waypoint outside the exclusion box")

    def step(
        self,
        dt_s: float,
        room: Room,
        rng: np.random.Generator,
        forbidden: "ExclusionBox",
    ) -> None:
        """Advance kinematics by ``dt_s`` according to the current activity."""
        assert self.position is not None
        if self.activity is Activity.AWAY:
            return
        if self.activity is Activity.SITTING:
            self.position = self.desk
            return
        if self.activity is Activity.STANDING:
            # Small sway around the current spot.
            sway = 0.03
            p = Vec3(
                float(np.clip(self.position.x + rng.normal(0, sway), 0.3, room.length_m - 0.3)),
                float(np.clip(self.position.y + rng.normal(0, sway), 0.3, room.width_m - 0.3)),
                0.0,
            )
            if not forbidden.contains(p):
                self.position = p
            return
        # WALKING: random waypoint.
        if self._waypoint is None or self.position.distance_to(self._waypoint) < 0.2:
            self._waypoint = self._pick_waypoint(room, rng, forbidden)
        direction = (self._waypoint - self.position).normalized()
        step_len = min(self.walk_speed_mps * dt_s, self.position.distance_to(self._waypoint))
        candidate = self.position + direction * step_len
        if forbidden.contains(candidate):
            self._waypoint = self._pick_waypoint(room, rng, forbidden)
        else:
            self.position = candidate

    def as_scatterer(self) -> Scatterer | None:
        """The occupant's channel contribution, or ``None`` when away."""
        if not self.present:
            return None
        assert self.position is not None
        return Scatterer(
            position=self.position,
            radius_m=self.radius_m,
            height_m=self.effective_height_m(),
            reflectivity=0.9,
            blocking_db=12.0,
        )


@dataclass(frozen=True)
class ExclusionBox:
    """The keep-out corridor between AP and sniffer (Sec. IV-A).

    "The AP and RP1 are placed 2 meters apart [...] and occupants cannot
    move between them."
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise GeometryError("exclusion box must have positive extent")

    def contains(self, p: Vec3) -> bool:
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    @classmethod
    def around_link(cls, tx: Vec3, rx: Vec3, margin_m: float = 0.4) -> "ExclusionBox":
        return cls(
            x_min=min(tx.x, rx.x) - margin_m,
            x_max=max(tx.x, rx.x) + margin_m,
            y_min=min(tx.y, rx.y) - margin_m,
            y_max=max(tx.y, rx.y) + margin_m,
        )


def default_population(rng: np.random.Generator, room: Room, n_subjects: int = 6) -> list[Occupant]:
    """The paper's six subjects (two women, four men) with varied builds."""
    occupants: list[Occupant] = []
    heights = rng.uniform(1.58, 1.90, n_subjects)
    radii = rng.uniform(0.18, 0.26, n_subjects)
    for i in range(n_subjects):
        x = 1.5 + (i % 3) * 3.5 + 0.6
        y = (2.0 if i < 3 else 4.5) + 0.5
        occupants.append(
            Occupant(
                subject_id=i,
                height_m=float(heights[i]),
                radius_m=float(radii[i]),
                desk=Vec3(min(x, room.length_m - 0.3), min(y, room.width_m - 0.3), 0.0),
            )
        )
    return occupants
