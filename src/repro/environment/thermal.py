"""Thermostat-driven indoor temperature dynamics.

A first-order lumped thermal model integrated with forward Euler::

    dT/dt = heater(t) + occupants(t) - (T - T_out(t)) / tau

* The **heater** is bang-bang with hysteresis around a setpoint that drops
  at night (night setback).  This produces the temperature sawtooth real
  offices show, the 0.77 time-vs-environment correlation the paper reports,
  and — crucially — the *fold-4 trap*: early-morning arrivals happen while
  the room is still cold, so Env-only classifiers that learned
  "warm = occupied" collapse on the morning fold exactly as in Table IV.
* **Occupants** add sensible heat proportional to the head count.
* **Leakage** pulls the room towards a sinusoidal January outdoor
  temperature.

The model is deliberately simple (one state variable) but its parameters
are physical and the resulting traces stay inside Table III's observed
18.4-40.1 degC envelope.
"""

from __future__ import annotations

import numpy as np

from ..config import ThermalConfig
from ..exceptions import ConfigurationError


class ThermalSimulator:
    """Integrates the office temperature over a campaign.

    Call :meth:`step` once per simulation tick, in time order.  The
    thermostat state (heater on/off) is part of the simulator state so the
    hysteresis cycle is stable regardless of tick length.
    """

    def __init__(self, config: ThermalConfig, start_hour_of_day: float) -> None:
        if not 0.0 <= start_hour_of_day < 24.0:
            raise ConfigurationError("start_hour_of_day must be in [0, 24)")
        self.config = config
        self.start_hour_of_day = start_hour_of_day
        self.temperature_c = config.initial_temperature_c
        self.heater_on = False

    def hour_of_day(self, t_s: float) -> float:
        return (self.start_hour_of_day + t_s / 3600.0) % 24.0

    def setpoint_c(self, t_s: float) -> float:
        """Active thermostat setpoint: day value 06:00-21:00, night setback otherwise."""
        hour = self.hour_of_day(t_s)
        if 6.0 <= hour < 21.0:
            return self.config.setpoint_day_c
        return self.config.setpoint_night_c

    def outdoor_c(self, t_s: float) -> float:
        """Sinusoidal outdoor temperature with an afternoon peak (~15:00)."""
        hour = self.hour_of_day(t_s)
        phase = 2.0 * np.pi * (hour - 15.0) / 24.0
        return self.config.outdoor_mean_c + self.config.outdoor_swing_c * np.cos(phase)

    def _update_thermostat(self, t_s: float) -> None:
        sp = self.setpoint_c(t_s)
        hys = self.config.hysteresis_c
        if self.heater_on and self.temperature_c >= sp + hys:
            self.heater_on = False
        elif not self.heater_on and self.temperature_c <= sp - hys:
            self.heater_on = True

    def step(self, t_s: float, dt_s: float, n_occupants: int) -> float:
        """Advance by ``dt_s`` seconds and return the new temperature [degC]."""
        if dt_s < 0:
            raise ConfigurationError("dt_s must be >= 0")
        if n_occupants < 0:
            raise ConfigurationError("n_occupants must be >= 0")
        self._update_thermostat(t_s)
        dt_h = dt_s / 3600.0
        cfg = self.config
        heating = cfg.heater_rate_c_per_h if self.heater_on else 0.0
        occupant_heat = cfg.occupant_heat_c_per_h * n_occupants
        leakage = (self.temperature_c - self.outdoor_c(t_s)) / cfg.leakage_tau_h
        self.temperature_c += dt_h * (heating + occupant_heat - leakage)
        return self.temperature_c
