"""Office-world behavioural substrate.

Simulates everything in the paper's data-collection environment that is not
the radio itself: the office layout with movable furniture
(:mod:`~repro.environment.room`), six occupants with kinematics and an
activity model (:mod:`~repro.environment.occupants`,
:mod:`~repro.environment.behavior`, :mod:`~repro.environment.schedule`),
thermostat-driven temperature (:mod:`~repro.environment.thermal`), humidity
dynamics (:mod:`~repro.environment.hygro`) and the Nordic-Thingy-like
ground-truth sensor (:mod:`~repro.environment.sensors`).
"""

from .room import FurnitureItem, OfficeLayout
from .occupants import Occupant, Activity
from .schedule import PresenceInterval, ScheduleGenerator
from .behavior import BehaviorSimulator, WorldState
from .thermal import ThermalSimulator
from .hygro import HumiditySimulator
from .sensors import ThingySensor

__all__ = [
    "FurnitureItem",
    "OfficeLayout",
    "Occupant",
    "Activity",
    "PresenceInterval",
    "ScheduleGenerator",
    "BehaviorSimulator",
    "WorldState",
    "ThermalSimulator",
    "HumiditySimulator",
    "ThingySensor",
]
