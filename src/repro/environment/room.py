"""Office layout with movable furniture.

The paper stresses that the environment is *unconstrained*: "the subjects
worked freely in the room, moving chairs, raising/lowering curtains, and
moving without a predefined pattern" (Section V-A).  Furniture displacement
changes the static multipath structure, so the occupied class is not a
single CSI template — a key reason linear classifiers fail on CSI while
non-linear ones succeed (Table IV).

:class:`OfficeLayout` maintains a set of furniture items (desks, chairs,
curtains, a cabinet) whose positions can take small random jumps when
occupants interact with them.  Each item contributes a weak static
scatterer to the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..channel.geometry import Room, Vec3
from ..channel.propagation import Scatterer
from ..exceptions import GeometryError


@dataclass(frozen=True)
class FurnitureItem:
    """A piece of furniture acting as a weak, movable scatterer.

    ``movable_radius_m`` bounds how far it can drift from its home
    position; curtains "move" vertically instead (raised/lowered), which we
    encode as a reflectivity change rather than a displacement.
    """

    name: str
    home: Vec3
    reflectivity: float
    height_m: float
    radius_m: float = 0.3
    movable_radius_m: float = 0.5
    position: Vec3 | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflectivity <= 1.0:
            raise GeometryError("reflectivity must be within [0, 1]")
        if self.movable_radius_m < 0:
            raise GeometryError("movable_radius_m must be >= 0")
        if self.position is None:
            object.__setattr__(self, "position", self.home)

    def displaced(self, rng: np.random.Generator, room: Room) -> "FurnitureItem":
        """A copy of this item after a random occupant-induced nudge."""
        if self.movable_radius_m == 0.0:
            return self
        angle = rng.uniform(0.0, 2.0 * np.pi)
        dist = rng.uniform(0.0, self.movable_radius_m)
        new = Vec3(
            float(np.clip(self.home.x + dist * np.cos(angle), 0.2, room.length_m - 0.2)),
            float(np.clip(self.home.y + dist * np.sin(angle), 0.2, room.width_m - 0.2)),
            self.home.z,
        )
        return replace(self, position=new)

    def as_scatterer(self) -> Scatterer:
        """This furniture item as a channel scatterer (weak, non-blocking)."""
        assert self.position is not None
        return Scatterer(
            position=self.position,
            radius_m=self.radius_m,
            height_m=self.height_m,
            reflectivity=self.reflectivity,
            blocking_db=2.0,
        )


def default_furniture() -> list[FurnitureItem]:
    """The simulated office's furnishing: 6 desks, 6 chairs, cabinet, curtains."""
    items: list[FurnitureItem] = []
    for i in range(6):
        x = 1.5 + (i % 3) * 3.5
        y = 2.0 if i < 3 else 4.5
        items.append(
            FurnitureItem(
                name=f"desk_{i}",
                home=Vec3(x, y, 0.0),
                reflectivity=0.05,
                height_m=0.75,
                radius_m=0.6,
                movable_radius_m=0.1,
            )
        )
        items.append(
            FurnitureItem(
                name=f"chair_{i}",
                home=Vec3(x + 0.6, y + 0.5, 0.0),
                reflectivity=0.03,
                height_m=1.0,
                radius_m=0.3,
                movable_radius_m=0.4,
            )
        )
    items.append(
        FurnitureItem(
            name="cabinet",
            home=Vec3(11.2, 0.8, 0.0),
            reflectivity=0.08,
            height_m=2.0,
            radius_m=0.5,
            movable_radius_m=0.0,
        )
    )
    for i in range(3):
        items.append(
            FurnitureItem(
                name=f"curtain_{i}",
                home=Vec3(2.5 + i * 3.5, 5.9, 0.0),
                reflectivity=0.03,
                height_m=2.2,
                radius_m=0.9,
                movable_radius_m=0.0,
            )
        )
    return items


class OfficeLayout:
    """Mutable furniture state of the office.

    ``perturb`` applies occupant-induced changes: chair displacements and
    curtain raises/lowers (a reflectivity toggle).  Call
    ``static_scatterers`` to get the current furniture contribution to the
    channel.
    """

    def __init__(
        self,
        room: Room,
        items: list[FurnitureItem] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.room = room
        self.items: list[FurnitureItem] = list(items) if items is not None else default_furniture()
        self._rng = rng or np.random.default_rng()
        #: Monotone counter bumped on every layout change; recorders use it
        #: to invalidate cached furniture channel contributions.
        self.version = 0
        for item in self.items:
            assert item.position is not None
            if not room.contains(item.position):
                raise GeometryError(f"furniture {item.name!r} at {item.position} outside room")

    def perturb(self, n_moves: int = 1) -> list[str]:
        """Randomly displace up to ``n_moves`` movable items; returns names moved."""
        movable = [i for i, it in enumerate(self.items) if it.movable_radius_m > 0]
        if not movable or n_moves <= 0:
            return []
        chosen = self._rng.choice(movable, size=min(n_moves, len(movable)), replace=False)
        moved: list[str] = []
        for idx in chosen:
            self.items[idx] = self.items[idx].displaced(self._rng, self.room)
            moved.append(self.items[idx].name)
        if moved:
            self.version += 1
        return moved

    def toggle_curtain(self) -> str | None:
        """Raise/lower a random curtain (reflectivity toggle); returns its name."""
        curtains = [i for i, it in enumerate(self.items) if it.name.startswith("curtain")]
        if not curtains:
            return None
        idx = int(self._rng.choice(curtains))
        item = self.items[idx]
        new_refl = 0.06 if item.reflectivity < 0.045 else 0.03
        self.items[idx] = replace(item, reflectivity=new_refl)
        self.version += 1
        return item.name

    def static_scatterers(self) -> list[Scatterer]:
        """The furniture contribution to the multipath channel."""
        return [item.as_scatterer() for item in self.items]
