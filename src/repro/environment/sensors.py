"""Ground-truth environmental sensor model (Nordic Thingy 52).

The paper's RP2 polls a Nordic Thingy 52 over Bluetooth for temperature and
humidity (Section IV-A).  The Thingy's HTS221-class sensor has:

* additive Gaussian noise (~0.1 degC / ~1 %RH),
* coarse reporting resolution — Table I shows humidity logged as an
  *integer* percentage and temperature at 0.01 degC,
* a slow response (the sensor's thermal mass low-pass filters the room),
* a per-device calibration offset.

:class:`ThingySensor` applies all four so the recorded T/H columns carry a
realistic measurement channel between the physical simulation and the
dataset — important because the paper's Env-only baselines consume these
measured values, not the latent truth.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError


class ThingySensor:
    """Temperature/humidity sensing chain of the Thingy 52.

    Parameters
    ----------
    temperature_noise_c, humidity_noise_rh:
        Std of the additive measurement noise.
    temperature_offset_c, humidity_offset_rh:
        Per-device calibration bias.
    response_tau_s:
        First-order lag of the sensing element.
    temperature_resolution_c, humidity_resolution_rh:
        Reporting quantization (Table I shows 0.01 degC and 1 %RH).
    """

    def __init__(
        self,
        temperature_noise_c: float = 0.15,
        humidity_noise_rh: float = 0.8,
        temperature_offset_c: float = 0.0,
        humidity_offset_rh: float = 0.0,
        response_tau_s: float = 60.0,
        temperature_resolution_c: float = 0.01,
        humidity_resolution_rh: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if temperature_noise_c < 0 or humidity_noise_rh < 0:
            raise ConfigurationError("noise levels must be >= 0")
        if response_tau_s <= 0:
            raise ConfigurationError("response_tau_s must be positive")
        if temperature_resolution_c <= 0 or humidity_resolution_rh <= 0:
            raise ConfigurationError("resolutions must be positive")
        self.temperature_noise_c = temperature_noise_c
        self.humidity_noise_rh = humidity_noise_rh
        self.temperature_offset_c = temperature_offset_c
        self.humidity_offset_rh = humidity_offset_rh
        self.response_tau_s = response_tau_s
        self.temperature_resolution_c = temperature_resolution_c
        self.humidity_resolution_rh = humidity_resolution_rh
        self._rng = rng or np.random.default_rng()
        self._lagged_t: float | None = None
        self._lagged_h: float | None = None

    def _lag(self, previous: float | None, value: float, dt_s: float) -> float:
        if previous is None or dt_s <= 0:
            return value
        alpha = 1.0 - float(np.exp(-dt_s / self.response_tau_s))
        return previous + alpha * (value - previous)

    def read(self, true_temperature_c: float, true_humidity_rh: float, dt_s: float) -> tuple[float, float]:
        """One sensor poll: returns (measured T [degC], measured H [%RH])."""
        self._lagged_t = self._lag(self._lagged_t, true_temperature_c, dt_s)
        self._lagged_h = self._lag(self._lagged_h, true_humidity_rh, dt_s)

        t = self._lagged_t + self.temperature_offset_c + self._rng.normal(0, self.temperature_noise_c)
        h = self._lagged_h + self.humidity_offset_rh + self._rng.normal(0, self.humidity_noise_rh)

        t = round(t / self.temperature_resolution_c) * self.temperature_resolution_c
        h = round(h / self.humidity_resolution_rh) * self.humidity_resolution_rh
        return float(t), float(np.clip(h, 0.0, 100.0))
