"""Dataset persistence: NPZ (fast, lossless) and CSV (Table I compatible).

The CSV writer emits exactly the Table I column layout so the files are
interchangeable with tooling written against the paper's format; NPZ keeps
the latent occupant count the simulator provides.
"""

from __future__ import annotations

import csv
import zipfile
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError, SchemaError, SerializationError
from .dataset import OccupancyDataset
from .schema import TableISchema


def save_npz(dataset: OccupancyDataset, path: str | Path) -> Path:
    """Serialize a dataset (including occupant counts) to a ``.npz`` file."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "timestamps_s": dataset.timestamps_s,
        "csi": dataset.csi,
        "temperature_c": dataset.temperature_c,
        "humidity_rh": dataset.humidity_rh,
        "occupancy": dataset.occupancy,
    }
    if dataset.occupant_count is not None:
        payload["occupant_count"] = dataset.occupant_count
    if dataset.activity is not None:
        payload["activity"] = dataset.activity
    np.savez_compressed(path, **payload)
    return path


def load_npz(path: str | Path) -> OccupancyDataset:
    """Inverse of :func:`save_npz`.

    A truncated or otherwise unreadable archive surfaces as a typed
    :class:`~repro.exceptions.SchemaError` naming the file, instead of a
    raw ``zipfile``/``numpy`` error from deep inside the loader.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such dataset file: {path}")
    try:
        archive = np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise SchemaError(
            f"{path} is not a readable .npz dataset (truncated or corrupt?): {exc}"
        ) from exc
    with archive:
        required = ("timestamps_s", "csi", "temperature_c", "humidity_rh", "occupancy")
        missing = [k for k in required if k not in archive]
        if missing:
            raise SerializationError(f"{path} is missing arrays: {missing}")
        count = archive["occupant_count"] if "occupant_count" in archive else None
        activity = archive["activity"] if "activity" in archive else None
        return OccupancyDataset(
            archive["timestamps_s"],
            archive["csi"],
            archive["temperature_c"],
            archive["humidity_rh"],
            archive["occupancy"],
            count,
            activity,
        )


def save_csv(dataset: OccupancyDataset, path: str | Path) -> Path:
    """Write the dataset as a Table I CSV (header + numeric rows)."""
    path = Path(path)
    schema = TableISchema(n_subcarriers=dataset.n_subcarriers)
    matrix = dataset.to_matrix()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.columns)
        for row in matrix:
            writer.writerow(
                [f"{row[0]:.3f}"]
                + [f"{v:.6g}" for v in row[1:-3]]
                + [f"{row[-3]:.2f}", f"{row[-2]:.0f}", f"{int(row[-1])}"]
            )
    return path


def load_csv(path: str | Path) -> OccupancyDataset:
    """Read a Table I CSV back into a dataset.

    The subcarrier count is inferred from the header (columns between
    ``timestamp`` and ``temperature``).  A malformed body — a ragged or
    non-numeric row, e.g. from a truncated download — raises a typed
    :class:`~repro.exceptions.SchemaError` naming the file and the first
    bad row, instead of a raw ``ValueError`` from ``float``/``numpy``.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such dataset file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SerializationError(f"{path} is empty") from exc
        expected_prefix = ["timestamp"]
        expected_suffix = ["temperature", "humidity", "occupancy"]
        if header[:1] != expected_prefix or header[-3:] != expected_suffix:
            raise SerializationError(f"{path} does not have the Table I header layout")
        n_subcarriers = len(header) - 4
        if n_subcarriers < 1:
            raise SerializationError(f"{path} header has no CSI columns")
        rows: list[list[float]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}: row {line_no} has {len(row)} columns, header "
                    f"declares {len(header)} (truncated file?)"
                )
            try:
                rows.append([float(v) for v in row])
            except ValueError as exc:
                raise SchemaError(
                    f"{path}: row {line_no} contains a non-numeric value ({exc})"
                ) from exc
    if not rows:
        raise DatasetError(f"{path} contains a header but no data rows")
    matrix = np.array(rows, dtype=float)
    return OccupancyDataset.from_matrix(matrix, n_subcarriers)
