"""Dataset persistence: NPZ (fast, lossless) and CSV (Table I compatible).

The CSV writer emits exactly the Table I column layout so the files are
interchangeable with tooling written against the paper's format; NPZ keeps
the latent occupant count the simulator provides.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError, SerializationError
from .dataset import OccupancyDataset
from .schema import TableISchema


def save_npz(dataset: OccupancyDataset, path: str | Path) -> Path:
    """Serialize a dataset (including occupant counts) to a ``.npz`` file."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "timestamps_s": dataset.timestamps_s,
        "csi": dataset.csi,
        "temperature_c": dataset.temperature_c,
        "humidity_rh": dataset.humidity_rh,
        "occupancy": dataset.occupancy,
    }
    if dataset.occupant_count is not None:
        payload["occupant_count"] = dataset.occupant_count
    if dataset.activity is not None:
        payload["activity"] = dataset.activity
    np.savez_compressed(path, **payload)
    return path


def load_npz(path: str | Path) -> OccupancyDataset:
    """Inverse of :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such dataset file: {path}")
    with np.load(path) as archive:
        required = ("timestamps_s", "csi", "temperature_c", "humidity_rh", "occupancy")
        missing = [k for k in required if k not in archive]
        if missing:
            raise SerializationError(f"{path} is missing arrays: {missing}")
        count = archive["occupant_count"] if "occupant_count" in archive else None
        activity = archive["activity"] if "activity" in archive else None
        return OccupancyDataset(
            archive["timestamps_s"],
            archive["csi"],
            archive["temperature_c"],
            archive["humidity_rh"],
            archive["occupancy"],
            count,
            activity,
        )


def save_csv(dataset: OccupancyDataset, path: str | Path) -> Path:
    """Write the dataset as a Table I CSV (header + numeric rows)."""
    path = Path(path)
    schema = TableISchema(n_subcarriers=dataset.n_subcarriers)
    matrix = dataset.to_matrix()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.columns)
        for row in matrix:
            writer.writerow(
                [f"{row[0]:.3f}"]
                + [f"{v:.6g}" for v in row[1:-3]]
                + [f"{row[-3]:.2f}", f"{row[-2]:.0f}", f"{int(row[-1])}"]
            )
    return path


def load_csv(path: str | Path) -> OccupancyDataset:
    """Read a Table I CSV back into a dataset.

    The subcarrier count is inferred from the header (columns between
    ``timestamp`` and ``temperature``).
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such dataset file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SerializationError(f"{path} is empty") from exc
        expected_prefix = ["timestamp"]
        expected_suffix = ["temperature", "humidity", "occupancy"]
        if header[:1] != expected_prefix or header[-3:] != expected_suffix:
            raise SerializationError(f"{path} does not have the Table I header layout")
        n_subcarriers = len(header) - 4
        if n_subcarriers < 1:
            raise SerializationError(f"{path} header has no CSI columns")
        rows = [[float(v) for v in row] for row in reader if row]
    if not rows:
        raise DatasetError(f"{path} contains a header but no data rows")
    matrix = np.array(rows, dtype=float)
    return OccupancyDataset.from_matrix(matrix, n_subcarriers)
