"""Dataset pipeline: from simulated world to Table I rows to folds.

* :mod:`repro.data.schema` — the Table I column layout.
* :mod:`repro.data.dataset` — :class:`OccupancyDataset` container.
* :mod:`repro.data.recording` — :class:`CollectionCampaign`, the 20 Hz
  recorder joining the channel, sniffer, world and sensor models.
* :mod:`repro.data.folds` — the temporal 70/30 split into the training
  fold and five test folds of Table III.
* :mod:`repro.data.io` — CSV / NPZ round trips.
* :mod:`repro.data.annotate` — the semi-automatic interval annotator.
* :mod:`repro.data.synthetic` — ``generate_benchmark_dataset``, the one-call
  entry point used by the examples and benchmarks.
"""

from .schema import TableISchema, SCHEMA
from .dataset import OccupancyDataset
from .recording import CollectionCampaign
from .folds import FoldSplit, Fold, make_paper_folds
from .io import save_npz, load_npz, save_csv, load_csv
from .annotate import IntervalAnnotator
from .synthetic import generate_benchmark_dataset
from .streaming import FrameStream, SmoothingDebouncer, StreamingDetector, Transition
from .preprocess import (
    hampel_filter,
    moving_average,
    select_subcarriers,
    WindowFeatureExtractor,
)

__all__ = [
    "TableISchema",
    "SCHEMA",
    "OccupancyDataset",
    "CollectionCampaign",
    "FoldSplit",
    "Fold",
    "make_paper_folds",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "IntervalAnnotator",
    "generate_benchmark_dataset",
    "hampel_filter",
    "moving_average",
    "select_subcarriers",
    "WindowFeatureExtractor",
    "FrameStream",
    "SmoothingDebouncer",
    "StreamingDetector",
    "Transition",
]
