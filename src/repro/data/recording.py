"""The data-collection campaign recorder.

:class:`CollectionCampaign` reproduces the paper's acquisition chain
(Section IV-A) end to end:

    world simulator -> multipath channel -> Rician fading -> Nexmon sniffer
                    -> Thingy sensor     ----------------------> row

Per tick it advances the office world, composes the ideal channel from the
static wall paths (with occupant shadowing), the occupants' scattered
paths and the cached furniture field, applies mobility-driven small-scale
fading and environmental hardware gain, pushes the result through the
sniffer front end, reads the Thingy sensor and emits one Table I row.

The furniture scattered field is recomputed only when the layout version
changes — furniture moves a few times per hour while CSI ticks 20 times a
second, so the cache removes the dominant per-frame cost.
"""

from __future__ import annotations

import numpy as np

from ..channel.atmosphere import AtmosphereState
from ..channel.fading import RicianFading
from ..channel.geometry import Room, Vec3
from ..channel.propagation import MultipathChannel
from ..channel.sniffer import NexmonSniffer, SnifferConfig
from ..channel.subcarriers import SubcarrierGrid
from ..config import CampaignConfig
from ..environment.behavior import BehaviorSimulator, WorldState
from ..environment.sensors import ThingySensor
from ..exceptions import DatasetError
from .dataset import OccupancyDataset


class CollectionCampaign:
    """Runs a full simulated data-collection campaign.

    Parameters
    ----------
    config:
        The campaign description (radio, room, climate, behaviour, length).
    sniffer_config:
        Optional receiver front-end overrides.

    Examples
    --------
    >>> from repro.config import CampaignConfig
    >>> campaign = CollectionCampaign(CampaignConfig.smoke_scale())
    >>> dataset = campaign.run()
    >>> dataset.n_subcarriers
    64
    """

    def __init__(
        self,
        config: CampaignConfig,
        sniffer_config: SnifferConfig | None = None,
    ) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        # Independent child generators so that e.g. changing the sniffer
        # noise model does not perturb the behavioural trajectory.
        self._rng_world = np.random.default_rng(rng.integers(0, 2**63))
        self._rng_fading = np.random.default_rng(rng.integers(0, 2**63))
        self._rng_sniffer = np.random.default_rng(rng.integers(0, 2**63))
        self._rng_sensor = np.random.default_rng(rng.integers(0, 2**63))

        self.grid = SubcarrierGrid(config.radio.bandwidth_hz, config.radio.carrier_hz)
        self.room = Room(config.room.length_m, config.room.width_m, config.room.height_m)
        tx = Vec3.from_array(config.room.tx_position)
        rx = Vec3.from_array(config.room.rx_position)
        # One multipath channel / fading process / sniffer per link (the
        # primary RP1 plus any extra sniffers of the multi-link extension).
        self.channels = [
            MultipathChannel(
                self.room,
                self.grid,
                tx,
                Vec3.from_array(position),
                max_reflection_order=config.room.max_reflection_order,
            )
            for position in config.room.all_rx_positions
        ]
        self.world = BehaviorSimulator(
            self.room,
            config.behavior,
            config.thermal,
            tx,
            rx,
            config.start_hour_of_day,
            config.duration_h,
            self._rng_world,
        )
        self.fadings = [
            RicianFading(
                self.grid.n_subcarriers,
                k_factor_db=config.radio.rician_k_db,
                drift_fraction=config.radio.drift_fraction,
                drift_tau_s=config.radio.drift_tau_s,
                mobility_power_boost=config.radio.mobility_power_boost,
                rng=np.random.default_rng(self._rng_fading.integers(0, 2**63)),
            )
            for _ in self.channels
        ]
        self.sniffers = [
            NexmonSniffer(
                self.grid,
                sniffer_config,
                rng=np.random.default_rng(self._rng_sniffer.integers(0, 2**63)),
            )
            for _ in self.channels
        ]
        self.sensor = ThingySensor(rng=self._rng_sensor)

        self._furniture_version: int | None = None
        self._furniture_fields: list[np.ndarray] | None = None

    @property
    def n_links(self) -> int:
        """Number of TX->RX links recorded per row."""
        return len(self.channels)

    # ------------------------------------------------------------- one frame

    def _ideal_channels(self, state: WorldState) -> list[np.ndarray]:
        """Compose the ideal complex channel of every link for a snapshot."""
        atmosphere = AtmosphereState(state.temperature_c, state.humidity_rh)
        occupants = list(state.occupant_scatterers)

        if state.furniture_version != self._furniture_version:
            self._furniture_fields = [
                channel.scattered_field(list(state.furniture_scatterers))
                for channel in self.channels
            ]
            self._furniture_version = state.furniture_version
        assert self._furniture_fields is not None

        fields = []
        for channel, furniture in zip(self.channels, self._furniture_fields):
            h = (
                channel.static_field(occupants, atmosphere)
                + channel.scattered_field(occupants)
                + furniture
            )
            fields.append(h * channel.environmental_gain(atmosphere))
        return fields

    # ------------------------------------------------------------------- run

    def run(self, progress_every: int | None = None) -> OccupancyDataset:
        """Execute the campaign and return the recorded dataset.

        Parameters
        ----------
        progress_every:
            If set, print a progress line every that many rows (the paper's
            full-scale campaign is 5.4M rows; feedback matters).
        """
        cfg = self.config
        n = cfg.n_samples
        if n < 2:
            raise DatasetError(
                f"campaign would produce only {n} rows; increase duration or rate"
            )
        dt = 1.0 / cfg.sample_rate_hz

        timestamps = np.empty(n)
        csi = np.empty((n, self.n_links * self.grid.n_subcarriers))
        temperature = np.empty(n)
        humidity = np.empty(n)
        occupancy = np.empty(n, dtype=int)
        counts = np.empty(n, dtype=int)
        activities = np.empty(n, dtype=int)

        row = 0
        for i in range(n):
            state = self.world.step(dt)
            amplitudes: list[np.ndarray] = []
            for channel_h, fading, sniffer in zip(
                self._ideal_channels(state), self.fadings, self.sniffers
            ):
                h_faded = fading.apply(channel_h, dt, state.mobility)
                captured = sniffer.capture(h_faded)
                if captured is not None:
                    amplitudes.append(captured)
            if len(amplitudes) < self.n_links:  # frame lost on some link
                continue
            t_meas, h_meas = self.sensor.read(state.temperature_c, state.humidity_rh, dt)

            timestamps[row] = state.t_s
            csi[row] = np.concatenate(amplitudes)
            temperature[row] = t_meas
            humidity[row] = h_meas
            occupancy[row] = int(state.occupied)
            counts[row] = state.n_occupants
            activities[row] = state.dominant_activity
            row += 1
            if progress_every and row % progress_every == 0:
                print(f"  recorded {row}/{n} rows (t={state.t_s / 3600.0:.1f} h)")

        if row < 2:
            raise DatasetError("campaign lost almost every frame; check frame_loss_rate")
        return OccupancyDataset(
            timestamps[:row],
            csi[:row],
            temperature[:row],
            humidity[:row],
            occupancy[:row],
            counts[:row],
            activities[:row],
        )
