"""Temporal train/test folds (Table III).

The paper's evaluation protocol is deliberately harsh: "In temporal order,
the train set represents 70 % of the collected data, and the test set the
remaining 30 %.  The test set is further divided into five folds,
representing different scenarios over time. [...] the train set never
changes, and the models are never re-trained." (Section V-B.)

Because the campaign starts mid-afternoon and spans three nights, the last
30 % naturally contains: three all-empty night folds, a mixed morning fold
(the Env-only trap — cold room, people arriving) and a fully occupied
afternoon fold.  :func:`make_paper_folds` cuts the folds by *time*, exactly
like the paper's wall-clock boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from .dataset import OccupancyDataset


@dataclass(frozen=True)
class Fold:
    """One evaluation fold with its Table III bookkeeping columns."""

    index: int
    role: str  # "train" or "test"
    data: OccupancyDataset
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.role not in ("train", "test"):
            raise DatasetError(f"role must be 'train' or 'test', got {self.role!r}")
        if self.end_s <= self.start_s:
            raise DatasetError("fold must span positive time")

    @property
    def n_empty(self) -> int:
        """Empty-row count (Table III 'Empty' column)."""
        return int(np.count_nonzero(self.data.occupancy == 0))

    @property
    def n_occupied(self) -> int:
        """Occupied-row count (Table III 'Occupied' column)."""
        return int(np.count_nonzero(self.data.occupancy == 1))

    def temperature_range(self) -> tuple[float, float]:
        """Min/max temperature (Table III 'T' column)."""
        return float(self.data.temperature_c.min()), float(self.data.temperature_c.max())

    def humidity_range(self) -> tuple[float, float]:
        """Min/max humidity (Table III 'H' column)."""
        return float(self.data.humidity_rh.min()), float(self.data.humidity_rh.max())

    def describe(self) -> dict[str, object]:
        """One Table III row as a dict."""
        t_lo, t_hi = self.temperature_range()
        h_lo, h_hi = self.humidity_range()
        return {
            "fold": self.index,
            "role": self.role,
            "start_h": self.start_s / 3600.0,
            "end_h": self.end_s / 3600.0,
            "empty": self.n_empty,
            "occupied": self.n_occupied,
            "T": (round(t_lo, 2), round(t_hi, 2)),
            "H": (round(h_lo, 0), round(h_hi, 0)),
        }


@dataclass(frozen=True)
class FoldSplit:
    """The paper's split: one training fold (index 0) + N test folds (1..N)."""

    train: Fold
    tests: tuple[Fold, ...]

    def __post_init__(self) -> None:
        if self.train.role != "train":
            raise DatasetError("train fold must have role 'train'")
        if not self.tests:
            raise DatasetError("need at least one test fold")
        if any(f.role != "test" for f in self.tests):
            raise DatasetError("test folds must have role 'test'")
        indices = [f.index for f in self.tests]
        if indices != list(range(1, len(indices) + 1)):
            raise DatasetError(f"test folds must be numbered 1..N, got {indices}")

    @property
    def all_folds(self) -> tuple[Fold, ...]:
        return (self.train, *self.tests)

    def table_iii(self) -> list[dict[str, object]]:
        """The full Table III as a list of row dicts."""
        return [fold.describe() for fold in self.all_folds]


def make_paper_folds(
    dataset: OccupancyDataset,
    train_fraction: float = 0.7,
    n_test_folds: int = 5,
) -> FoldSplit:
    """Cut a campaign dataset into the paper's temporal folds.

    The first ``train_fraction`` of the *time span* becomes the training
    fold; the remainder is divided into ``n_test_folds`` equal-duration test
    windows.  Raises :class:`DatasetError` if any window would be empty of
    rows (the campaign is too short for the requested split).
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if n_test_folds < 1:
        raise DatasetError("n_test_folds must be >= 1")
    if len(dataset) < (n_test_folds + 1) * 2:
        raise DatasetError("dataset too small for the requested fold count")

    t = dataset.timestamps_s
    t0, t1 = float(t[0]), float(t[-1])
    span = t1 - t0
    if span <= 0:
        raise DatasetError("dataset spans zero time")
    cut = t0 + train_fraction * span

    train_data = dataset.window(t0, cut)
    train = Fold(0, "train", train_data, t0, cut)

    edges = np.linspace(cut, t1, n_test_folds + 1)
    # Make the final edge inclusive of the last row.
    edges[-1] = np.nextafter(t1, np.inf)
    tests = []
    for i in range(n_test_folds):
        window = dataset.window(float(edges[i]), float(edges[i + 1]))
        tests.append(Fold(i + 1, "test", window, float(edges[i]), float(edges[i + 1])))
    return FoldSplit(train=train, tests=tuple(tests))
