"""The :class:`OccupancyDataset` container.

A numpy-backed, schema-validated table of campaign rows with the accessors
every downstream stage needs: CSI block, environment block, labels,
temporal slicing, concatenation and class statistics.  It also stores the
latent ground-truth occupant *count* (0..n) when available, which the
profiling code uses to regenerate Table II — the paper's annotators had
the video feed, we have the simulator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DatasetError, ShapeError
from .schema import TableISchema


class OccupancyDataset:
    """Rows of (timestamp, CSI amplitudes, temperature, humidity, label).

    Parameters
    ----------
    timestamps_s:
        Seconds since campaign start, shape ``(n,)``, non-decreasing.
    csi:
        CSI amplitudes, shape ``(n, d_H)``, non-negative.
    temperature_c, humidity_rh:
        Environment columns, shape ``(n,)``.
    occupancy:
        Binary labels, shape ``(n,)``, values in {0, 1}.
    occupant_count:
        Optional latent ground truth count (0..k), shape ``(n,)``.
    activity:
        Optional latent dominant-activity codes, shape ``(n,)``:
        0 empty, 1 walking, 2 standing, 3 sitting (the label set of the
        paper's future-work activity-recognition task, Section VI).
    """

    def __init__(
        self,
        timestamps_s: np.ndarray,
        csi: np.ndarray,
        temperature_c: np.ndarray,
        humidity_rh: np.ndarray,
        occupancy: np.ndarray,
        occupant_count: np.ndarray | None = None,
        activity: np.ndarray | None = None,
    ) -> None:
        t = np.ascontiguousarray(timestamps_s, dtype=float)
        csi = np.ascontiguousarray(csi, dtype=float)
        temp = np.ascontiguousarray(temperature_c, dtype=float)
        hum = np.ascontiguousarray(humidity_rh, dtype=float)
        occ = np.ascontiguousarray(occupancy, dtype=int)

        if t.ndim != 1:
            raise ShapeError("timestamps must be 1-D")
        n = t.size
        if csi.ndim != 2 or csi.shape[0] != n:
            raise ShapeError(f"csi must be (n, d_H) with n={n}, got {csi.shape}")
        for name, col in (("temperature", temp), ("humidity", hum), ("occupancy", occ)):
            if col.shape != (n,):
                raise ShapeError(f"{name} must have shape ({n},), got {col.shape}")
        if n > 1 and np.any(np.diff(t) < 0):
            raise DatasetError("timestamps must be non-decreasing")
        if not np.all(np.isin(occ, (0, 1))):
            raise DatasetError("occupancy labels must be 0 or 1")
        if np.any(csi < 0):
            raise DatasetError("CSI amplitudes must be non-negative")
        if np.any((hum < 0) | (hum > 100)):
            raise DatasetError("humidity must be within [0, 100]")

        if occupant_count is not None:
            occupant_count = np.ascontiguousarray(occupant_count, dtype=int)
            if occupant_count.shape != (n,):
                raise ShapeError(f"occupant_count must have shape ({n},)")
            if np.any(occupant_count < 0):
                raise DatasetError("occupant_count must be >= 0")
            if np.any((occupant_count > 0) != (occ == 1)):
                raise DatasetError("occupant_count and occupancy labels disagree")

        if activity is not None:
            activity = np.ascontiguousarray(activity, dtype=int)
            if activity.shape != (n,):
                raise ShapeError(f"activity must have shape ({n},)")
            if np.any((activity < 0) | (activity > 3)):
                raise DatasetError("activity codes must be within 0..3")
            if np.any((activity > 0) != (occ == 1)):
                raise DatasetError("activity and occupancy labels disagree")

        self._t = t
        self._csi = csi
        self._temp = temp
        self._hum = hum
        self._occ = occ
        self._count = occupant_count
        self._activity = activity
        self.schema = TableISchema(n_subcarriers=csi.shape[1] if csi.size else 64)

    # ---------------------------------------------------------------- basics

    def __len__(self) -> int:
        return int(self._t.size)

    @property
    def n_subcarriers(self) -> int:
        return int(self._csi.shape[1])

    @property
    def timestamps_s(self) -> np.ndarray:
        return self._t

    @property
    def csi(self) -> np.ndarray:
        """CSI amplitude block, shape ``(n, d_H)``."""
        return self._csi

    @property
    def temperature_c(self) -> np.ndarray:
        return self._temp

    @property
    def humidity_rh(self) -> np.ndarray:
        return self._hum

    @property
    def environment(self) -> np.ndarray:
        """Environment block [T, H], shape ``(n, 2)``."""
        return np.column_stack([self._temp, self._hum])

    @property
    def occupancy(self) -> np.ndarray:
        """Binary labels, shape ``(n,)``."""
        return self._occ

    @property
    def occupant_count(self) -> np.ndarray | None:
        """Latent occupant count when the source (simulator) provides it."""
        return self._count

    @property
    def activity(self) -> np.ndarray | None:
        """Latent dominant-activity codes (0 empty / 1 walk / 2 stand / 3 sit)."""
        return self._activity

    # ------------------------------------------------------------- selection

    def select(self, mask_or_indices: np.ndarray) -> "OccupancyDataset":
        """Row subset (boolean mask or integer indices, time order preserved)."""
        idx = np.asarray(mask_or_indices)
        if idx.dtype == bool:
            if idx.shape != (len(self),):
                raise ShapeError("boolean mask length mismatch")
            idx = np.flatnonzero(idx)
        if idx.size == 0:
            raise DatasetError("selection must keep at least one row")
        if np.any(np.diff(idx) < 0):
            raise DatasetError("selection must preserve time order")
        return OccupancyDataset(
            self._t[idx],
            self._csi[idx],
            self._temp[idx],
            self._hum[idx],
            self._occ[idx],
            None if self._count is None else self._count[idx],
            None if self._activity is None else self._activity[idx],
        )

    def window(self, t0_s: float, t1_s: float) -> "OccupancyDataset":
        """Rows with ``t0 <= t < t1``."""
        if t1_s <= t0_s:
            raise DatasetError(f"window bounds inverted: [{t0_s}, {t1_s})")
        return self.select((self._t >= t0_s) & (self._t < t1_s))

    @classmethod
    def concatenate(cls, parts: Sequence["OccupancyDataset"]) -> "OccupancyDataset":
        """Stack temporally ordered datasets into one."""
        if not parts:
            raise DatasetError("need at least one dataset to concatenate")
        widths = {p.n_subcarriers for p in parts}
        if len(widths) != 1:
            raise DatasetError(f"inconsistent subcarrier counts: {sorted(widths)}")
        counts = [p.occupant_count for p in parts]
        has_counts = all(c is not None for c in counts)
        activities = [p.activity for p in parts]
        has_activities = all(a is not None for a in activities)
        return cls(
            np.concatenate([p.timestamps_s for p in parts]),
            np.vstack([p.csi for p in parts]),
            np.concatenate([p.temperature_c for p in parts]),
            np.concatenate([p.humidity_rh for p in parts]),
            np.concatenate([p.occupancy for p in parts]),
            np.concatenate(counts) if has_counts else None,  # type: ignore[arg-type]
            np.concatenate(activities) if has_activities else None,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------ statistics

    def class_balance(self) -> dict[str, float]:
        """Fractions of empty/occupied rows (Table II bottom line)."""
        n = len(self)
        occupied = float(np.count_nonzero(self._occ)) / n
        return {"empty": 1.0 - occupied, "occupied": occupied}

    def count_histogram(self) -> dict[int, int]:
        """Samples per simultaneous-occupant count (Table II top rows)."""
        if self._count is None:
            raise DatasetError("this dataset carries no occupant_count ground truth")
        values, freqs = np.unique(self._count, return_counts=True)
        return {int(v): int(f) for v, f in zip(values, freqs)}

    def duration_s(self) -> float:
        """Campaign time spanned by the rows."""
        if len(self) < 2:
            return 0.0
        return float(self._t[-1] - self._t[0])

    def to_matrix(self) -> np.ndarray:
        """Full numeric table in Table I column order, shape ``(n, d_H+4)``."""
        return np.column_stack([self._t, self._csi, self._temp, self._hum, self._occ])

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, n_subcarriers: int) -> "OccupancyDataset":
        """Inverse of :meth:`to_matrix`."""
        matrix = np.asarray(matrix, dtype=float)
        expected = n_subcarriers + 4
        if matrix.ndim != 2 or matrix.shape[1] != expected:
            raise ShapeError(f"matrix must be (n, {expected}), got {matrix.shape}")
        return cls(
            matrix[:, 0],
            matrix[:, 1 : 1 + n_subcarriers],
            matrix[:, -3],
            matrix[:, -2],
            matrix[:, -1].astype(int),
        )
