"""Streaming (online) view of a campaign.

A deployed detector consumes CSI frame by frame, not as a matrix.
:class:`FrameStream` replays an :class:`~repro.data.dataset.OccupancyDataset`
in that shape, and :class:`StreamingDetector` wraps a fitted estimator with
the state a real controller keeps: per-frame probability, a majority-vote
smoothing window and debounced occupancy transitions.  That state machine
lives in :class:`SmoothingDebouncer` so the micro-batched serving engine
(:mod:`repro.serve.engine`) can run the identical logic per link.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..exceptions import ConfigurationError, ShapeError, ValidationError
from .dataset import OccupancyDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.estimator import Estimator


@dataclass(frozen=True)
class Frame:
    """One streamed observation."""

    t_s: float
    csi: np.ndarray
    occupancy: int


class FrameStream:
    """Iterates a dataset as (timestamp, CSI row, label) frames."""

    def __init__(self, dataset: OccupancyDataset) -> None:
        self.dataset = dataset

    def __len__(self) -> int:
        return len(self.dataset)

    def __iter__(self) -> Iterator[Frame]:
        t = self.dataset.timestamps_s
        csi = self.dataset.csi
        occ = self.dataset.occupancy
        for i in range(len(self.dataset)):
            yield Frame(float(t[i]), csi[i], int(occ[i]))


@dataclass(frozen=True)
class Transition:
    """A debounced occupancy change the controller would act on."""

    t_s: float
    occupied: bool


class SmoothingDebouncer:
    """Majority-vote smoothing + debounce over a stream of raw 0/1 votes.

    The anti-flicker state machine every controller needs: raw per-frame
    decisions enter, a majority vote over the last ``window`` frames
    smooths them, and a state flip is only committed after the smoothed
    value has disagreed with the current state for ``hold_frames``
    consecutive frames.  Ties in an even window round toward occupied
    (mean exactly 0.5 counts as 1), matching the >= 0.5 decision rule of
    the classifiers.

    Parameters
    ----------
    window:
        Majority-vote length in frames (1 disables smoothing).
    hold_frames:
        A state change must persist this many frames before it commits
        (debounce, prevents flicker).
    """

    def __init__(self, window: int = 5, hold_frames: int = 3) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if hold_frames < 1:
            raise ConfigurationError("hold_frames must be >= 1")
        self.window = window
        self.hold_frames = hold_frames
        self._votes: deque[int] = deque(maxlen=window)
        self._state = 0
        self._pending_state: int | None = None
        self._pending_count = 0

    @property
    def state(self) -> int:
        """The current debounced occupancy state (0/1)."""
        return self._state

    def reset(self) -> None:
        """Forget all votes and return to the empty state."""
        self._votes.clear()
        self._state = 0
        self._pending_state = None
        self._pending_count = 0

    def update(self, raw: int) -> int | None:
        """Consume one raw vote; returns the new state when a flip commits."""
        self._votes.append(int(raw))
        smoothed = int(np.mean(self._votes) >= 0.5)

        if smoothed == self._state:
            self._pending_state = None
            self._pending_count = 0
            return None
        if smoothed != self._pending_state:
            self._pending_state = smoothed
            self._pending_count = 1
        else:
            self._pending_count += 1
        if self._pending_count >= self.hold_frames:
            self._state = smoothed
            self._pending_state = None
            self._pending_count = 0
            return smoothed
        return None


def check_csi_row(csi_row: np.ndarray, row_index: int | None = None) -> np.ndarray:
    """Validate one streamed CSI row: 1-D and finite.

    Raises :class:`~repro.exceptions.ShapeError` on wrong dimensionality
    and :class:`~repro.exceptions.ValidationError` (a
    :class:`~repro.exceptions.StreamError` subclass, so existing handlers
    keep working) on NaN/inf amplitudes — a real sniffer occasionally
    emits garbage rows, and they must be rejected before they poison a
    smoothing window.  The error names the first offending column and,
    when the caller passes ``row_index``, the stream position.
    """
    csi_row = np.asarray(csi_row, dtype=float)
    if csi_row.ndim != 1:
        raise ShapeError(f"expected a 1-D CSI row, got shape {csi_row.shape}")
    finite = np.isfinite(csi_row)
    if not finite.all():
        column = int(np.flatnonzero(~finite)[0])
        where = f"row {row_index}, " if row_index is not None else ""
        raise ValidationError(
            f"CSI frame ({where}column {column}) contains a non-finite value "
            f"({csi_row[column]})",
            row_index=row_index,
            column=column,
        )
    return csi_row


class StreamingDetector:
    """Stateful frame-by-frame wrapper around a fitted estimator.

    Parameters
    ----------
    detector:
        Any fitted :class:`~repro.core.estimator.Estimator` (the paper's
        :class:`~repro.core.detector.OccupancyDetector` or a baseline).
    window:
        Majority-vote length in frames (1 disables smoothing).
    hold_frames:
        A state change must persist this many frames before a
        :class:`Transition` is emitted (debounce, prevents flicker).
    """

    def __init__(
        self,
        detector: "Estimator",
        window: int = 5,
        hold_frames: int = 3,
    ) -> None:
        self.detector = detector
        self.window = window
        self.hold_frames = hold_frames
        self._debouncer = SmoothingDebouncer(window, hold_frames)

    @property
    def state(self) -> int:
        """The current debounced occupancy state (0/1)."""
        return self._debouncer.state

    def update(self, t_s: float, csi_row: np.ndarray) -> Transition | None:
        """Consume one frame; returns a transition when the state flips."""
        csi_row = check_csi_row(csi_row)
        raw = int(self.detector.predict(csi_row[None, :])[0])
        flipped = self._debouncer.update(raw)
        if flipped is None:
            return None
        return Transition(t_s, bool(flipped))

    def run(self, stream: Iterable[Frame]) -> list[Transition]:
        """Replay a whole stream; returns the emitted transitions."""
        return [
            event
            for frame in stream
            if (event := self.update(frame.t_s, frame.csi)) is not None
        ]
