"""Streaming (online) view of a campaign.

A deployed detector consumes CSI frame by frame, not as a matrix.
:class:`FrameStream` replays an :class:`~repro.data.dataset.OccupancyDataset`
in that shape, and :class:`StreamingDetector` wraps a fitted
:class:`~repro.core.detector.OccupancyDetector` with the state a real
controller keeps: per-frame probability, a majority-vote smoothing window
and debounced occupancy transitions.  The smart-building example uses the
same logic; here it is a reusable, tested component.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.detector import OccupancyDetector
from ..exceptions import ConfigurationError, ShapeError
from .dataset import OccupancyDataset


@dataclass(frozen=True)
class Frame:
    """One streamed observation."""

    t_s: float
    csi: np.ndarray
    occupancy: int


class FrameStream:
    """Iterates a dataset as (timestamp, CSI row, label) frames."""

    def __init__(self, dataset: OccupancyDataset) -> None:
        self.dataset = dataset

    def __len__(self) -> int:
        return len(self.dataset)

    def __iter__(self) -> Iterator[Frame]:
        t = self.dataset.timestamps_s
        csi = self.dataset.csi
        occ = self.dataset.occupancy
        for i in range(len(self.dataset)):
            yield Frame(float(t[i]), csi[i], int(occ[i]))


@dataclass(frozen=True)
class Transition:
    """A debounced occupancy change the controller would act on."""

    t_s: float
    occupied: bool


class StreamingDetector:
    """Stateful frame-by-frame wrapper around a fitted detector.

    Parameters
    ----------
    detector:
        A fitted :class:`OccupancyDetector`.
    window:
        Majority-vote length in frames (1 disables smoothing).
    hold_frames:
        A state change must persist this many frames before a
        :class:`Transition` is emitted (debounce, prevents flicker).
    """

    def __init__(
        self,
        detector: OccupancyDetector,
        window: int = 5,
        hold_frames: int = 3,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if hold_frames < 1:
            raise ConfigurationError("hold_frames must be >= 1")
        self.detector = detector
        self.window = window
        self.hold_frames = hold_frames
        self._votes: deque[int] = deque(maxlen=window)
        self._state = 0
        self._pending_state: int | None = None
        self._pending_count = 0

    @property
    def state(self) -> int:
        """The current debounced occupancy state (0/1)."""
        return self._state

    def update(self, t_s: float, csi_row: np.ndarray) -> Transition | None:
        """Consume one frame; returns a transition when the state flips."""
        csi_row = np.asarray(csi_row, dtype=float)
        if csi_row.ndim != 1:
            raise ShapeError(f"expected a 1-D CSI row, got shape {csi_row.shape}")
        raw = int(self.detector.predict(csi_row[None, :])[0])
        self._votes.append(raw)
        smoothed = int(np.mean(self._votes) >= 0.5)

        if smoothed == self._state:
            self._pending_state = None
            self._pending_count = 0
            return None
        if smoothed != self._pending_state:
            self._pending_state = smoothed
            self._pending_count = 1
        else:
            self._pending_count += 1
        if self._pending_count >= self.hold_frames:
            self._state = smoothed
            self._pending_state = None
            self._pending_count = 0
            return Transition(t_s, bool(smoothed))
        return None

    def run(self, stream: FrameStream) -> list[Transition]:
        """Replay a whole stream; returns the emitted transitions."""
        return [
            event
            for frame in stream
            if (event := self.update(frame.t_s, frame.csi)) is not None
        ]
