"""CSI preprocessing utilities.

The paper's headline is that its MLP works on *raw* CSI amplitudes,
avoiding the "computationally-demanding pre-processing pipelines" of
prior work (Section I).  To make that claim testable, this module
implements the standard WiFi-sensing preprocessing stages so the ablation
benchmarks can compare raw-vs-preprocessed inputs:

* :func:`hampel_filter` — the classic outlier scrubber for CSI streams;
* :func:`moving_average` — temporal smoothing;
* :func:`select_subcarriers` — guard-bin removal / band selection;
* :class:`WindowFeatureExtractor` — sliding-window statistics
  (mean/std/min/max per subcarrier), the feature set most pre-deep-learning
  CSI papers hand-crafted.

All functions are pure and shape-documented; windowed extraction returns
the window-end timestamps and majority labels so temporal fold semantics
survive the transformation.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError, ShapeError
from .dataset import OccupancyDataset


def hampel_filter_scalar(
    series: np.ndarray, window: int = 7, n_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Reference (per-window Python loop) form of :func:`hampel_filter`.

    This is the readable specification: one rolling window at a time,
    median / MAD / threshold spelled out.  :func:`hampel_filter` is the
    stride-trick vectorization of exactly this computation, and the test
    suite asserts the two are *byte-identical* on every input — keep them
    in lockstep when editing either.  Use the vectorized form in real
    pipelines; this one exists for verification and for reading.
    """
    if window < 3 or window % 2 == 0:
        raise ShapeError("window must be an odd integer >= 3")
    if n_sigmas <= 0:
        raise ShapeError("n_sigmas must be positive")
    x = np.asarray(series, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.ndim != 2:
        raise ShapeError(f"expected 1-D or 2-D input, got shape {x.shape}")
    n = x.shape[0]
    if n < window:
        raise ShapeError(f"series of {n} rows shorter than window {window}")

    half = window // 2
    cleaned = x.copy()
    mask = np.zeros(x.shape, dtype=bool)
    for j in range(x.shape[1]):
        padded = np.pad(x[:, j], (half, half), mode="edge")
        for i in range(n):
            values = padded[i : i + window]
            median = np.median(values)
            mad = np.median(np.abs(values - median))
            threshold = n_sigmas * max(1.4826 * mad, 1e-12)
            if np.abs(x[i, j] - median) > threshold:
                cleaned[i, j] = median
                mask[i, j] = True
    if squeeze:
        return cleaned[:, 0], mask[:, 0]
    return cleaned, mask


def hampel_filter(
    series: np.ndarray, window: int = 7, n_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Median-absolute-deviation outlier replacement (per column).

    Values farther than ``n_sigmas`` robust standard deviations from the
    rolling median are replaced by that median.  Returns
    ``(cleaned, outlier_mask)``; works on 1-D series or ``(n, d)`` blocks.
    """
    if window < 3 or window % 2 == 0:
        raise ShapeError("window must be an odd integer >= 3")
    if n_sigmas <= 0:
        raise ShapeError("n_sigmas must be positive")
    x = np.asarray(series, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.ndim != 2:
        raise ShapeError(f"expected 1-D or 2-D input, got shape {x.shape}")
    n = x.shape[0]
    if n < window:
        raise ShapeError(f"series of {n} rows shorter than window {window}")

    half = window // 2
    # Build a (n, window) sliding view per column via stride tricks on a
    # padded copy (edge padding keeps the ends usable).
    padded = np.pad(x, ((half, half), (0, 0)), mode="edge")
    shape = (n, window, x.shape[1])
    strides = (padded.strides[0], padded.strides[0], padded.strides[1])
    windows = np.lib.stride_tricks.as_strided(padded, shape=shape, strides=strides)
    medians = np.median(windows, axis=1)
    mad = np.median(np.abs(windows - medians[:, None, :]), axis=1)
    robust_sigma = 1.4826 * mad
    threshold = n_sigmas * np.maximum(robust_sigma, 1e-12)
    mask = np.abs(x - medians) > threshold
    cleaned = np.where(mask, medians, x)
    if squeeze:
        return cleaned[:, 0], mask[:, 0]
    return cleaned, mask


def moving_average(series: np.ndarray, window: int = 5) -> np.ndarray:
    """Centered moving average per column (edges use shorter windows)."""
    if window < 1:
        raise ShapeError("window must be >= 1")
    x = np.asarray(series, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    n = x.shape[0]
    if n < 1:
        raise ShapeError("series must have at least one row")
    # One strided windowed sum over all columns at once, replacing the old
    # per-column np.convolve loop.  ``lo``/``hi`` reproduce np.convolve's
    # mode="same" alignment (window [i - lo, i + hi]); zero padding plus an
    # analytic per-row sample count gives the shorter-window edge average.
    lo = window - 1 - (window - 1) // 2
    hi = (window - 1) // 2
    padded = np.zeros((n + window - 1, x.shape[1]))
    padded[lo : lo + n] = x
    windows = np.lib.stride_tricks.sliding_window_view(padded, window, axis=0)
    sums = windows.sum(axis=-1)
    idx = np.arange(n)
    counts = np.minimum(idx + hi, n - 1) - np.maximum(idx - lo, 0) + 1
    out = sums / counts[:, None]
    return out[:, 0] if squeeze else out


def select_subcarriers(
    csi: np.ndarray,
    drop_guards: bool = True,
    band: tuple[int, int] | None = None,
    n_subcarriers: int = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """Column selection: remove guard bins and/or keep one band.

    Returns ``(selected_block, kept_indices)``.
    """
    csi = np.asarray(csi, dtype=float)
    if csi.ndim != 2 or csi.shape[1] != n_subcarriers:
        raise ShapeError(f"expected (n, {n_subcarriers}) CSI block, got {csi.shape}")
    keep = np.ones(n_subcarriers, dtype=bool)
    if drop_guards:
        from ..channel.subcarriers import SubcarrierGrid

        grid = SubcarrierGrid(20e6 * n_subcarriers / 64, 2.412e9)
        keep &= ~grid.is_guard
    if band is not None:
        lo, hi = band
        if not 0 <= lo < hi <= n_subcarriers:
            raise ShapeError(f"band {band} outside [0, {n_subcarriers}]")
        band_mask = np.zeros(n_subcarriers, dtype=bool)
        band_mask[lo:hi] = True
        keep &= band_mask
    if not np.any(keep):
        raise DatasetError("selection keeps no subcarriers")
    idx = np.flatnonzero(keep)
    return csi[:, idx], idx


class WindowFeatureExtractor:
    """Sliding-window statistics over the CSI block.

    For each non-overlapping window of ``window`` rows, emits per
    subcarrier the statistics in ``stats`` (concatenated), the window-end
    timestamp and the majority occupancy label.  This is the hand-crafted
    feature pipeline the paper's related work uses — and that the paper's
    raw-amplitude MLP renders unnecessary (the ablation benchmark
    quantifies the difference).
    """

    SUPPORTED = ("mean", "std", "min", "max", "range")

    def __init__(self, window: int = 10, stats: tuple[str, ...] = ("mean", "std")) -> None:
        if window < 2:
            raise ShapeError("window must be >= 2")
        unknown = set(stats) - set(self.SUPPORTED)
        if unknown:
            raise ShapeError(f"unknown stats {sorted(unknown)}; supported: {self.SUPPORTED}")
        if not stats:
            raise ShapeError("need at least one statistic")
        self.window = window
        self.stats = tuple(stats)

    def n_features(self, n_subcarriers: int) -> int:
        return len(self.stats) * n_subcarriers

    def _compute(self, block: np.ndarray) -> np.ndarray:
        features = []
        for stat in self.stats:
            if stat == "mean":
                features.append(block.mean(axis=0))
            elif stat == "std":
                features.append(block.std(axis=0))
            elif stat == "min":
                features.append(block.min(axis=0))
            elif stat == "max":
                features.append(block.max(axis=0))
            elif stat == "range":
                features.append(block.max(axis=0) - block.min(axis=0))
        return np.concatenate(features)

    def transform(
        self, dataset: OccupancyDataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Windowed features over a dataset.

        Returns ``(x, y, t)``: feature matrix of shape
        ``(n_windows, len(stats) * d_H)``, majority occupancy labels and
        window-end timestamps.
        """
        n = len(dataset)
        if n < self.window:
            raise DatasetError(f"dataset of {n} rows shorter than window {self.window}")
        n_windows = n // self.window
        used = n_windows * self.window
        # One reshape to (n_windows, window, d) and reductions along axis 1
        # replace the old per-window Python loop; numpy's round is
        # half-to-even like Python's round(), so majority labels match the
        # scalar int(round(mean)) exactly.
        blocks = dataset.csi[:used].reshape(n_windows, self.window, -1)
        features = []
        for stat in self.stats:
            if stat == "mean":
                features.append(blocks.mean(axis=1))
            elif stat == "std":
                features.append(blocks.std(axis=1))
            elif stat == "min":
                features.append(blocks.min(axis=1))
            elif stat == "max":
                features.append(blocks.max(axis=1))
            elif stat == "range":
                features.append(blocks.max(axis=1) - blocks.min(axis=1))
        x = np.concatenate(features, axis=1)
        occupancy = dataset.occupancy[:used].reshape(n_windows, self.window)
        y = np.round(occupancy.mean(axis=1)).astype(int)
        t = dataset.timestamps_s[self.window - 1 : used : self.window].copy()
        return x, y, t
