"""One-call benchmark dataset generation.

``generate_benchmark_dataset`` is the entry point the examples, tests and
benchmarks use: it runs a :class:`~repro.data.recording.CollectionCampaign`
at the requested scale and returns the dataset plus the paper's fold split.
Results are cached on disk (keyed by the campaign configuration) because
the recorded campaign is deterministic in its seed and regenerating the
default-scale dataset takes tens of seconds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from ..config import CampaignConfig
from ..data.dataset import OccupancyDataset
from ..data.folds import FoldSplit, make_paper_folds
from ..data.io import load_npz, save_npz
from ..data.recording import CollectionCampaign


#: Bumped whenever the generation *code* changes in a way that alters the
#: produced rows for an unchanged configuration (e.g. RNG restructuring).
#: Part of the cache key, so stale campaigns are regenerated.
GENERATOR_VERSION = 2


def _config_digest(config: CampaignConfig) -> str:
    """Stable hash of a campaign configuration + generator version."""
    payload = json.dumps(
        {"config": asdict(config), "generator_version": GENERATOR_VERSION},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Where cached campaigns live (override with the ``cache_dir`` argument)."""
    return Path.home() / ".cache" / "repro-wifi-sensing"


def generate_benchmark_dataset(
    config: CampaignConfig | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    progress: bool = False,
) -> OccupancyDataset:
    """Generate (or load from cache) the campaign dataset.

    Parameters
    ----------
    config:
        Campaign description; defaults to the laptop-scale 74 h campaign.
    cache_dir:
        Cache directory; ``None`` uses :func:`default_cache_dir`.
    use_cache:
        Set ``False`` to force regeneration.
    progress:
        Print progress lines while recording.
    """
    config = config or CampaignConfig()
    cache_root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_path = cache_root / f"campaign-{_config_digest(config)}.npz"

    if use_cache and cache_path.exists():
        return load_npz(cache_path)

    campaign = CollectionCampaign(config)
    dataset = campaign.run(progress_every=20_000 if progress else None)

    if use_cache:
        cache_root.mkdir(parents=True, exist_ok=True)
        save_npz(dataset, cache_path)
    return dataset


def generate_benchmark_folds(
    config: CampaignConfig | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    progress: bool = False,
) -> tuple[OccupancyDataset, FoldSplit]:
    """Dataset plus the paper's 70/30 temporal fold split (Table III)."""
    dataset = generate_benchmark_dataset(config, cache_dir, use_cache, progress)
    return dataset, make_paper_folds(dataset)
