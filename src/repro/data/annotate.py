"""Semi-automatic occupancy annotation.

The paper's labels came from "an external observer [who] manually annotated
the presence of humans based on recorded video data.  A semiautomatic
annotation tool simplified the process considerably by avoiding the need
to explicitly annotate every single timestamp." (Section IV-A.)

:class:`IntervalAnnotator` reproduces that workflow: the annotator marks
*state-change events* ("room became occupied at t", "room emptied at t")
and the tool expands them into a dense per-timestamp label vector.  It also
supports the reverse operation (compressing a dense label vector into
events), label-noise injection for robustness experiments, and validation
against the simulator's latent truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError


@dataclass(frozen=True)
class AnnotationEvent:
    """One observer action: at ``t_s`` the room state became ``occupied``."""

    t_s: float
    occupied: bool


class IntervalAnnotator:
    """Expands sparse state-change events into dense per-row labels."""

    def __init__(self, initial_occupied: bool = False) -> None:
        self.initial_occupied = initial_occupied
        self._events: list[AnnotationEvent] = []

    def mark(self, t_s: float, occupied: bool) -> None:
        """Record a state change at ``t_s`` (events may arrive out of order)."""
        self._events.append(AnnotationEvent(float(t_s), bool(occupied)))

    @property
    def events(self) -> list[AnnotationEvent]:
        return sorted(self._events, key=lambda e: e.t_s)

    def labels(self, timestamps_s: np.ndarray) -> np.ndarray:
        """Dense 0/1 label per timestamp implied by the recorded events."""
        timestamps_s = np.asarray(timestamps_s, dtype=float)
        events = self.events
        out = np.full(timestamps_s.shape, int(self.initial_occupied), dtype=int)
        if not events:
            return out
        event_times = np.array([e.t_s for e in events])
        states = np.array([int(e.occupied) for e in events])
        idx = np.searchsorted(event_times, timestamps_s, side="right")
        has_event = idx > 0
        out[has_event] = states[idx[has_event] - 1]
        return out

    @classmethod
    def from_dense(cls, timestamps_s: np.ndarray, labels: np.ndarray) -> "IntervalAnnotator":
        """Compress a dense label vector back into state-change events.

        This is what makes the tool "semi-automatic": a 74-hour campaign has
        millions of rows but only dozens of occupancy transitions.
        """
        timestamps_s = np.asarray(timestamps_s, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if timestamps_s.shape != labels.shape:
            raise DatasetError("timestamps and labels must have equal shape")
        if labels.size == 0:
            raise DatasetError("cannot annotate an empty series")
        if not np.all(np.isin(labels, (0, 1))):
            raise DatasetError("labels must be binary")
        annotator = cls(initial_occupied=bool(labels[0]))
        changes = np.flatnonzero(np.diff(labels) != 0) + 1
        for i in changes:
            annotator.mark(float(timestamps_s[i]), bool(labels[i]))
        return annotator

    def n_events(self) -> int:
        return len(self._events)


def inject_label_noise(
    labels: np.ndarray, flip_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Flip a fraction of labels — models annotator error for ablations."""
    if not 0.0 <= flip_fraction <= 1.0:
        raise DatasetError("flip_fraction must be within [0, 1]")
    labels = np.asarray(labels, dtype=int).copy()
    n_flip = int(round(flip_fraction * labels.size))
    if n_flip:
        idx = rng.choice(labels.size, size=n_flip, replace=False)
        labels[idx] = 1 - labels[idx]
    return labels
