"""The Table I data schema.

Each dataset row is::

    timestamp | a0 .. a{d_H-1} | temperature | humidity | occupancy

with the CSI amplitudes of all subcarriers, the Thingy's temperature in
degC, humidity in integer %RH, and the binary occupancy label (0 = empty,
1 = at least one person).  The schema object carries column names and
validation so CSV round trips and external tools agree on the layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SchemaError


@dataclass(frozen=True)
class TableISchema:
    """Column layout of the collected data (paper Table I)."""

    n_subcarriers: int = 64

    def __post_init__(self) -> None:
        if self.n_subcarriers < 1:
            raise SchemaError("n_subcarriers must be >= 1")

    @property
    def csi_columns(self) -> list[str]:
        """Subcarrier amplitude column names a0..a{d_H-1}."""
        return [f"a{i}" for i in range(self.n_subcarriers)]

    @property
    def columns(self) -> list[str]:
        """All column names, in Table I order."""
        return ["timestamp", *self.csi_columns, "temperature", "humidity", "occupancy"]

    @property
    def n_columns(self) -> int:
        return self.n_subcarriers + 4

    def validate_row(self, row: np.ndarray) -> None:
        """Raise :class:`SchemaError` if a numeric row violates the schema."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.n_columns,):
            raise SchemaError(f"row has {row.shape} values, schema expects {self.n_columns}")
        if not np.all(np.isfinite(row)):
            raise SchemaError("row contains non-finite values")
        occupancy = row[-1]
        if occupancy not in (0.0, 1.0):
            raise SchemaError(f"occupancy must be 0 or 1, got {occupancy}")
        humidity = row[-2]
        if not 0.0 <= humidity <= 100.0:
            raise SchemaError(f"humidity {humidity} outside [0, 100]")
        csi = row[1 : 1 + self.n_subcarriers]
        if np.any(csi < 0.0):
            raise SchemaError("CSI amplitudes must be non-negative")


#: Default schema: the paper's 20 MHz / 64-subcarrier layout.
SCHEMA = TableISchema()
