"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at an application boundary while still being able
to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent or out of range."""


class ConfigError(ConfigurationError):
    """A removed legacy configuration surface was used.

    Distinct from its parent so migration failures are catchable on their
    own; the message always carries the hint for the supported
    replacement (e.g. the ``ServeConfig``-only ``InferenceEngine``
    constructor)."""


class GeometryError(ReproError, ValueError):
    """A geometric primitive or room layout is invalid."""


class ChannelError(ReproError):
    """The CSI channel simulator was used incorrectly."""


class DatasetError(ReproError):
    """A dataset container or split is malformed."""


class SchemaError(DatasetError):
    """Column data does not match the Table I schema."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before ``fit`` was called."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dimensionality."""


class AutogradError(ReproError, RuntimeError):
    """Invalid use of the autograd engine (e.g. backward on non-scalar)."""


class DeploymentError(ReproError):
    """A model does not satisfy an embedded-deployment constraint."""


class SerializationError(ReproError):
    """A model or dataset artifact could not be (de)serialized."""


class StreamError(ReproError, ValueError):
    """A streamed CSI frame is malformed (e.g. non-finite values)."""


class ValidationError(StreamError):
    """A streamed row failed a validation check.

    Subclasses :class:`StreamError` so existing admission-rejection
    handlers keep working, while carrying enough context to debug the
    offending sniffer: ``row_index`` (position in the stream, when the
    caller knows it) and ``column`` (first offending feature column).
    """

    def __init__(
        self,
        message: str,
        *,
        row_index: int | None = None,
        column: int | None = None,
    ) -> None:
        super().__init__(message)
        self.row_index = row_index
        self.column = column


class ServingError(ReproError, RuntimeError):
    """The inference engine cannot make progress (primary and fallback failed)."""


class RateLimitError(ServingError):
    """A frame was refused admission by its tenant's rate limiter.

    Raised only by the *strict* admission surfaces
    (:meth:`repro.overload.RateLimiter.require`,
    :meth:`repro.serve.FrameTicket.require_admitted`); the engine and
    fleet themselves never raise on rate limiting — they return a typed
    ``"rate_limited"`` ticket outcome so shed load stays countable."""


class DeadlineError(ServingError):
    """A frame outlived its deadline budget where that is an invariant.

    The serving paths shed expired frames (``frame.deadline_expired``)
    rather than raising; this error marks the places where serving a
    stale answer would be a contract violation — e.g. the overload-bench
    "no deadline-violating frame is ever served" gate."""
