"""Gap repair: fill short per-link CSI dropouts with synthetic frames.

A quarantined burst or a few lost packets leave holes in a link's frame
cadence.  Downstream, holes starve the smoothing window and make the
debouncer sluggish exactly when the controller needs continuity.  For
*short* gaps the physically honest fix is interpolation: room state
changes on the scale of seconds-to-minutes, so holding the last frame (or
linearly blending into the next) is a far better estimate than silence.

:class:`GapRepairer` watches each link's admitted frames, learns the
nominal inter-frame interval (or takes it as config), and when a frame
arrives late it emits fill frames on the missing grid points — every fill
flagged ``repaired`` end to end (:class:`~repro.serve.queue.PendingFrame`
through :class:`~repro.serve.engine.InferenceResult`), so metrics and
benchmarks can always separate measured answers from manufactured ones.
Long outages are *not* repaired: inventing an hour of CSI would be
fiction, so gaps beyond ``max_fill`` frames are counted and left open.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

#: Supported fill strategies.
REPAIR_MODES = ("hold", "linear")


@dataclass(frozen=True)
class FillFrame:
    """One synthetic frame emitted into a gap."""

    t_s: float
    row: np.ndarray


class _LinkCadence:
    """Per-link repair state: last good frame plus learned cadence."""

    def __init__(self) -> None:
        self.last_t: float | None = None
        self.last_row: np.ndarray | None = None
        self.deltas: list[float] = []
        self.interval_s: float | None = None


class GapRepairer:
    """Detect and fill short frame dropouts, per link.

    Parameters
    ----------
    expected_interval_s:
        Nominal inter-frame interval.  ``None`` learns it per link as the
        median of the first ``learn_frames`` observed deltas — sniffers
        at different rates coexist behind one engine.
    max_fill:
        Longest gap (in missing frames) that is repaired; longer gaps are
        counted in :attr:`gaps_unrepaired` and left open.
    mode:
        ``"hold"`` repeats the last good row into the gap; ``"linear"``
        blends linearly between the frames bracketing the gap.
    tolerance:
        A delta counts as a gap once it exceeds
        ``interval * (1 + tolerance)`` — absorbs normal jitter.
    """

    def __init__(
        self,
        expected_interval_s: float | None = None,
        *,
        max_fill: int = 8,
        mode: str = "hold",
        tolerance: float = 0.5,
        learn_frames: int = 5,
    ) -> None:
        if expected_interval_s is not None and expected_interval_s <= 0:
            raise ConfigurationError("expected_interval_s must be positive (or None)")
        if max_fill < 1:
            raise ConfigurationError("max_fill must be >= 1")
        if mode not in REPAIR_MODES:
            raise ConfigurationError(f"mode must be one of {REPAIR_MODES}, got {mode!r}")
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if learn_frames < 2:
            raise ConfigurationError("learn_frames must be >= 2")
        self.expected_interval_s = expected_interval_s
        self.max_fill = max_fill
        self.mode = mode
        self.tolerance = tolerance
        self.learn_frames = learn_frames
        self._links: dict[str, _LinkCadence] = {}
        #: Lifetime repair ledger.
        self.gaps_repaired = 0
        self.frames_filled = 0
        self.gaps_unrepaired = 0

    def interval_s(self, link_id: str) -> float | None:
        """The cadence in use for one link (None while still learning)."""
        if self.expected_interval_s is not None:
            return self.expected_interval_s
        state = self._links.get(link_id)
        return None if state is None else state.interval_s

    def observe(self, link_id: str, t_s: float, row: np.ndarray) -> list[FillFrame]:
        """Consume one admitted frame; returns fills for any gap it closes.

        Fill frames carry timestamps on the missing cadence grid
        (``last_t + k * interval``) so replay scoring can line them up
        with the frames that were actually lost.
        """
        t_s = float(t_s)
        row = np.asarray(row, dtype=float)
        state = self._links.setdefault(link_id, _LinkCadence())
        if state.last_t is None:
            state.last_t, state.last_row = t_s, row
            return []
        dt = t_s - state.last_t
        if dt <= 0:  # reordered duplicate — keep the newest frame as anchor
            return []

        interval = self.expected_interval_s
        if interval is None:
            if state.interval_s is None:
                state.deltas.append(dt)
                if len(state.deltas) >= self.learn_frames:
                    state.interval_s = statistics.median(state.deltas)
            interval = state.interval_s

        fills: list[FillFrame] = []
        if interval is not None and dt > interval * (1.0 + self.tolerance):
            n_missing = int(round(dt / interval)) - 1
            if 1 <= n_missing <= self.max_fill:
                last_row = state.last_row
                for k in range(1, n_missing + 1):
                    if self.mode == "hold":
                        fill_row = last_row.copy()
                    else:
                        weight = k / (n_missing + 1)
                        fill_row = last_row + (row - last_row) * weight
                    fills.append(FillFrame(state.last_t + k * interval, fill_row))
                self.gaps_repaired += 1
                self.frames_filled += n_missing
            elif n_missing > self.max_fill:
                self.gaps_unrepaired += 1
        state.last_t, state.last_row = t_s, row
        return fills

    def reset(self) -> None:
        """Forget all per-link state and the repair ledger."""
        self._links.clear()
        self.gaps_repaired = 0
        self.frames_filled = 0
        self.gaps_unrepaired = 0
