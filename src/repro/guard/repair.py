"""Gap repair: fill short per-link CSI dropouts with synthetic frames.

A quarantined burst or a few lost packets leave holes in a link's frame
cadence.  Downstream, holes starve the smoothing window and make the
debouncer sluggish exactly when the controller needs continuity.  For
*short* gaps the physically honest fix is interpolation: room state
changes on the scale of seconds-to-minutes, so holding the last frame (or
linearly blending into the next) is a far better estimate than silence.

:class:`GapRepairer` watches each link's admitted frames, learns the
nominal inter-frame interval (or takes it as config), and when a frame
arrives late it emits fill frames on the missing grid points — every fill
flagged ``repaired`` end to end (:class:`~repro.serve.queue.PendingFrame`
through :class:`~repro.serve.engine.InferenceResult`), so metrics and
benchmarks can always separate measured answers from manufactured ones.
Long outages are *not* repaired: inventing an hour of CSI would be
fiction, so gaps beyond ``max_fill`` frames are counted and left open.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

#: Supported fill strategies.
REPAIR_MODES = ("hold", "linear")


@dataclass(frozen=True)
class FillFrame:
    """One synthetic frame emitted into a gap."""

    t_s: float
    row: np.ndarray


class _LinkCadence:
    """Per-link repair state: last good frame plus learned cadence."""

    def __init__(self) -> None:
        self.last_t: float | None = None
        self.last_row: np.ndarray | None = None
        self.deltas: list[float] = []
        self.interval_s: float | None = None


class GapRepairer:
    """Detect and fill short frame dropouts, per link.

    Parameters
    ----------
    expected_interval_s:
        Nominal inter-frame interval.  ``None`` learns it per link as the
        median of the first ``learn_frames`` observed deltas — sniffers
        at different rates coexist behind one engine.
    max_fill:
        Longest gap (in missing frames) that is repaired; longer gaps are
        counted in :attr:`gaps_unrepaired` and left open.
    mode:
        ``"hold"`` repeats the last good row into the gap; ``"linear"``
        blends linearly between the frames bracketing the gap.
    tolerance:
        A delta counts as a gap once it exceeds
        ``interval * (1 + tolerance)`` — absorbs normal jitter.
    """

    def __init__(
        self,
        expected_interval_s: float | None = None,
        *,
        max_fill: int = 8,
        mode: str = "hold",
        tolerance: float = 0.5,
        learn_frames: int = 5,
    ) -> None:
        if expected_interval_s is not None and expected_interval_s <= 0:
            raise ConfigurationError("expected_interval_s must be positive (or None)")
        if max_fill < 1:
            raise ConfigurationError("max_fill must be >= 1")
        if mode not in REPAIR_MODES:
            raise ConfigurationError(f"mode must be one of {REPAIR_MODES}, got {mode!r}")
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if learn_frames < 2:
            raise ConfigurationError("learn_frames must be >= 2")
        self.expected_interval_s = expected_interval_s
        self.max_fill = max_fill
        self.mode = mode
        self.tolerance = tolerance
        self.learn_frames = learn_frames
        self._links: dict[str, _LinkCadence] = {}
        #: Lifetime repair ledger.
        self.gaps_repaired = 0
        self.frames_filled = 0
        self.gaps_unrepaired = 0

    def interval_s(self, link_id: str) -> float | None:
        """The cadence in use for one link (None while still learning)."""
        if self.expected_interval_s is not None:
            return self.expected_interval_s
        state = self._links.get(link_id)
        return None if state is None else state.interval_s

    def observe(self, link_id: str, t_s: float, row: np.ndarray) -> list[FillFrame]:
        """Consume one admitted frame; returns fills for any gap it closes.

        Fill frames carry timestamps on the missing cadence grid
        (``last_t + k * interval``) so replay scoring can line them up
        with the frames that were actually lost.
        """
        t_s = float(t_s)
        row = np.asarray(row, dtype=float)
        state = self._links.setdefault(link_id, _LinkCadence())
        if state.last_t is None:
            state.last_t, state.last_row = t_s, row
            return []
        dt = t_s - state.last_t
        if dt <= 0:  # reordered duplicate — keep the newest frame as anchor
            return []

        interval = self.expected_interval_s
        if interval is None:
            if state.interval_s is None:
                state.deltas.append(dt)
                if len(state.deltas) >= self.learn_frames:
                    state.interval_s = statistics.median(state.deltas)
            interval = state.interval_s

        fills: list[FillFrame] = []
        if interval is not None and dt > interval * (1.0 + self.tolerance):
            n_missing = int(round(dt / interval)) - 1
            if 1 <= n_missing <= self.max_fill:
                last_row = state.last_row
                for k in range(1, n_missing + 1):
                    if self.mode == "hold":
                        fill_row = last_row.copy()
                    else:
                        weight = k / (n_missing + 1)
                        fill_row = last_row + (row - last_row) * weight
                    fills.append(FillFrame(state.last_t + k * interval, fill_row))
                self.gaps_repaired += 1
                self.frames_filled += n_missing
            elif n_missing > self.max_fill:
                self.gaps_unrepaired += 1
        state.last_t, state.last_row = t_s, row
        return fills

    def observe_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray
    ) -> list[list[FillFrame]]:
        """Batch form of :meth:`observe`: fills per frame of one link's block.

        Semantically identical to calling :meth:`observe` on each
        ``(t_s[i], rows[i])`` in order — same fill timestamps, rows,
        ledger counts and final cadence state (tests assert exact
        equality) — but gap detection over the block is one vectorized
        pass instead of n Python calls.  Anchor seeding and cadence
        learning are inherently sequential, so the first frames run the
        scalar path until the link's interval is known; fills themselves
        are built per gap, which is fine because gaps are rare by
        definition.
        """
        t = np.asarray(t_s, dtype=float)
        block = np.asarray(rows, dtype=float)
        if t.ndim != 1 or block.ndim != 2 or block.shape[0] != t.shape[0]:
            raise ConfigurationError(
                f"observe_batch needs (n,) timestamps and (n, d) rows, got "
                f"{t.shape} and {block.shape}"
            )
        n = t.shape[0]
        fills: list[list[FillFrame]] = [[] for _ in range(n)]
        i = 0
        while i < n:
            state = self._links.get(link_id)
            if (
                state is not None
                and state.last_t is not None
                and self.interval_s(link_id) is not None
            ):
                break
            fills[i] = self.observe(link_id, t[i], block[i])
            i += 1
        if i >= n:
            return fills

        state = self._links[link_id]
        interval = self.interval_s(link_id)
        assert interval is not None and state.last_t is not None
        tail = t[i:]
        # The anchor a frame is measured against is the running max of
        # (pre-batch anchor, earlier tail timestamps): reordered frames
        # (dt <= 0) never advance the anchor, and an advancing frame's
        # timestamp is by definition the new max.
        prev = np.empty(tail.size)
        prev[0] = state.last_t
        if tail.size > 1:
            np.maximum(np.maximum.accumulate(tail[:-1]), state.last_t, out=prev[1:])
        dt = tail - prev
        advancing = dt > 0
        # Index (within the tail) of the latest advancing frame strictly
        # before each position; -1 means the pre-batch anchor row.
        anchor_idx = np.empty(tail.size, dtype=np.int64)
        anchor_idx[0] = -1
        if tail.size > 1:
            positions = np.where(advancing, np.arange(tail.size), -1)
            np.maximum.accumulate(positions[:-1], out=anchor_idx[1:])

        for k in np.flatnonzero(dt > interval * (1.0 + self.tolerance)):
            n_missing = int(round(float(dt[k]) / interval)) - 1
            if 1 <= n_missing <= self.max_fill:
                j = int(anchor_idx[k])
                last_row = state.last_row if j < 0 else block[i + j]
                last_t = float(prev[k])
                row = block[i + k]
                gap_fills: list[FillFrame] = []
                for m in range(1, n_missing + 1):
                    if self.mode == "hold":
                        fill_row = last_row.copy()
                    else:
                        weight = m / (n_missing + 1)
                        fill_row = last_row + (row - last_row) * weight
                    gap_fills.append(FillFrame(last_t + m * interval, fill_row))
                fills[i + k] = gap_fills
                self.gaps_repaired += 1
                self.frames_filled += n_missing
            elif n_missing > self.max_fill:
                self.gaps_unrepaired += 1

        advanced = np.flatnonzero(advancing)
        if advanced.size:
            final = int(advanced[-1])
            state.last_t = float(tail[final])
            state.last_row = block[i + final]
        return fills

    def reset(self) -> None:
        """Forget all per-link state and the repair ledger."""
        self._links.clear()
        self.gaps_repaired = 0
        self.frames_filled = 0
        self.gaps_unrepaired = 0
