"""Drift sentinels: is the serving distribution still the training one?

The paper's own Table IV shows the failure mode (the Env-only model
collapses on fold 4 when conditions leave the training range), and the
domain-shift literature the ROADMAP cites calls environment drift the
dominant deployed-CSI failure.  Models do not announce that their inputs
have wandered; a sentinel has to measure it.

Two complementary signals, both scored against training-fold
:class:`ReferenceStats` (persisted next to the model through the same
atomic-write machinery as :mod:`repro.nn.serialize`):

* a per-feature **EWMA of the serving mean** — cheap, per-batch, catches
  sustained level shifts (gain drift, a stuck sensor) as a z-score
  against the reference mean/std;
* a rolling-window **PSI** (population stability index, the binned
  KS-style score) against the reference decile histogram — catches shape
  changes the mean alone misses.

Crossing the WARN/TRIP thresholds emits :class:`DriftEvent` state
changes, which the :class:`~repro.guard.supervisor.RecoverySupervisor`
turns into metrics-registry counters and (optionally) a degraded serving
mode.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError, SerializationError
from ..nn.serialize import atomic_savez, decode_meta, encode_meta, open_archive

_META_KEY = "__meta__"
_KIND = "repro-reference-stats"


@dataclass(frozen=True)
class ReferenceStats:
    """Training-fold feature statistics: the envelope serving is judged by.

    Carries per-feature mean/std/min/max plus a decile histogram
    (``bin_edges``/``bin_probs``) for PSI scoring.  Fitted once on the
    training fold and persisted alongside the model weights.
    """

    mean: np.ndarray
    std: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    bin_edges: np.ndarray  # (n_features, n_bins + 1)
    bin_probs: np.ndarray  # (n_features, n_bins)
    n_rows: int

    @property
    def n_features(self) -> int:
        return int(self.mean.shape[0])

    @property
    def n_bins(self) -> int:
        return int(self.bin_probs.shape[1])

    @classmethod
    def fit(cls, x: np.ndarray, n_bins: int = 10) -> "ReferenceStats":
        """Compute reference statistics over a (rows, features) matrix."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ConfigurationError(
                f"need a 2-D matrix with >= 2 rows to fit reference stats, got {x.shape}"
            )
        if n_bins < 2:
            raise ConfigurationError("n_bins must be >= 2")
        mean = x.mean(axis=0)
        std = np.maximum(x.std(axis=0), 1e-8)
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.quantile(x, quantiles, axis=0).T  # (features, bins+1)
        probs = np.empty((x.shape[1], n_bins))
        for j in range(x.shape[1]):
            probs[j] = _bin_counts(x[:, j], edges[j]) / x.shape[0]
        return cls(
            mean=mean,
            std=std,
            minimum=x.min(axis=0),
            maximum=x.max(axis=0),
            bin_edges=edges,
            bin_probs=probs,
            n_rows=int(x.shape[0]),
        )

    def amplitude_envelope(self, margin: float = 4.0) -> tuple[np.ndarray, np.ndarray]:
        """Per-feature [low, high] admission bounds: min/max plus headroom.

        ``margin`` is expressed in multiples of each feature's observed
        range, so quiet subcarriers get tight gates and busy ones stay
        permissive.
        """
        if margin < 0:
            raise ConfigurationError("margin must be >= 0")
        span = np.maximum(self.maximum - self.minimum, 1e-8)
        return self.minimum - margin * span, self.maximum + margin * span

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> Path:
        """Atomically write the stats next to the model (``*.npz``)."""
        payload = {
            "mean": self.mean,
            "std": self.std,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "bin_edges": self.bin_edges,
            "bin_probs": self.bin_probs,
            _META_KEY: encode_meta(
                {
                    "kind": _KIND,
                    "version": 1,
                    "n_rows": self.n_rows,
                    "n_features": self.n_features,
                    "n_bins": self.n_bins,
                }
            ),
        }
        return atomic_savez(path, payload)

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceStats":
        """Inverse of :meth:`save`; corrupt archives raise SerializationError."""
        path = Path(path)
        with open_archive(path) as archive:
            if _META_KEY not in archive:
                raise SerializationError(f"{path} is not a reference-stats archive")
            meta = decode_meta(archive[_META_KEY], path)
            if meta.get("kind") != _KIND:
                raise SerializationError(
                    f"{path} holds {meta.get('kind')!r}, not {_KIND!r}"
                )
            arrays = {}
            for key in ("mean", "std", "minimum", "maximum", "bin_edges", "bin_probs"):
                if key not in archive:
                    raise SerializationError(f"{path} is missing array {key!r}")
                arrays[key] = archive[key]
        stats = cls(n_rows=int(meta["n_rows"]), **arrays)
        if stats.mean.shape[0] != int(meta["n_features"]):
            raise SerializationError(
                f"{path}: manifest says {meta['n_features']} features, "
                f"arrays carry {stats.mean.shape[0]}"
            )
        return stats


def _bin_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Histogram counts over quantile edges, outer bins open-ended."""
    idx = np.searchsorted(edges[1:-1], values, side="right")
    return np.bincount(idx, minlength=edges.shape[0] - 1).astype(float)


def psi(reference_probs: np.ndarray, observed_probs: np.ndarray, eps: float = 1e-4) -> float:
    """Population Stability Index between two binned distributions.

    The standard scorecard-monitoring statistic: 0 for identical
    distributions, ~0.1 for mild shift, > 0.25 conventionally "major
    shift".  Probabilities are floored at ``eps`` so empty bins cannot
    produce infinities.
    """
    p = np.maximum(np.asarray(reference_probs, dtype=float), eps)
    q = np.maximum(np.asarray(observed_probs, dtype=float), eps)
    p, q = p / p.sum(), q / q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


class DriftState(enum.Enum):
    """Sentinel severity ladder."""

    OK = "ok"
    WARN = "warn"
    TRIP = "trip"


_STATE_ORDER = {DriftState.OK: 0, DriftState.WARN: 1, DriftState.TRIP: 2}


@dataclass(frozen=True)
class DriftEvent:
    """One sentinel state change, with the scores that caused it."""

    t_s: float
    state: DriftState
    previous: DriftState
    z_score: float
    psi_score: float

    @property
    def escalation(self) -> bool:
        """True when severity increased (OK→WARN, WARN→TRIP, OK→TRIP)."""
        return _STATE_ORDER[self.state] > _STATE_ORDER[self.previous]


class DriftSentinel:
    """Streaming drift detector against fixed reference statistics.

    Parameters
    ----------
    reference:
        Training-fold :class:`ReferenceStats`.
    alpha:
        EWMA smoothing factor per frame (0.02 ≈ a ~50-frame memory).
    warn_z / trip_z:
        Thresholds on the worst per-feature z-score of the EWMA mean.
    warn_psi / trip_psi:
        Thresholds on the mean per-feature PSI of the rolling window.
        Note the defaults are far above the textbook 0.1/0.25 guidance:
        occupancy CSI is strongly autocorrelated, so any short window
        sits in *one* occupancy regime while the reference histogram is
        the whole-campaign mixture — clean streams score PSI ≈ 1–4
        against it depending on how long the current stay lasts.  The
        defaults make a long single-regime stretch at most a WARN and
        reserve TRIP for genuine level shifts (a ×4 gain error scores
        ≈ 6.8).
    window:
        Rolling-window length (frames) for the PSI score.
    check_every:
        Recompute PSI every this many observed frames (it is the
        expensive half; the EWMA updates on every frame).
    """

    def __init__(
        self,
        reference: ReferenceStats,
        *,
        alpha: float = 0.02,
        warn_z: float = 6.0,
        trip_z: float = 12.0,
        warn_psi: float = 3.0,
        trip_psi: float = 6.0,
        window: int = 256,
        check_every: int = 64,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if not 0 < warn_z < trip_z:
            raise ConfigurationError("need 0 < warn_z < trip_z")
        if not 0 < warn_psi < trip_psi:
            raise ConfigurationError("need 0 < warn_psi < trip_psi")
        if window < 8 or check_every < 1:
            raise ConfigurationError("need window >= 8 and check_every >= 1")
        self.reference = reference
        self.alpha = alpha
        self.warn_z, self.trip_z = warn_z, trip_z
        self.warn_psi, self.trip_psi = warn_psi, trip_psi
        self.window = window
        self.check_every = check_every
        self._ewma = reference.mean.copy()
        self._buffer: deque[np.ndarray] = deque(maxlen=window)
        self._since_check = 0
        self._state = DriftState.OK
        self._z = 0.0
        self._psi = 0.0

    @property
    def state(self) -> DriftState:
        return self._state

    @property
    def z_score(self) -> float:
        """Worst per-feature |EWMA mean − reference mean| / reference std."""
        return self._z

    @property
    def psi_score(self) -> float:
        """Mean per-feature PSI of the rolling window (0 until it fills)."""
        return self._psi

    def observe(self, rows: np.ndarray, t_s: float = 0.0) -> list[DriftEvent]:
        """Feed served rows; returns state-change events (usually empty)."""
        # Copy, don't view: buffered rows outlive this call, and the serving
        # engine reuses (overwrites) its batch buffers between flushes.
        rows = np.atleast_2d(np.array(rows, dtype=float))
        if rows.shape[1] != self.reference.n_features:
            raise ConfigurationError(
                f"rows have {rows.shape[1]} features, reference has "
                f"{self.reference.n_features}"
            )
        for row in rows:
            self._ewma = (1.0 - self.alpha) * self._ewma + self.alpha * row
            self._buffer.append(row)
        self._since_check += rows.shape[0]
        self._z = float(
            np.max(np.abs(self._ewma - self.reference.mean) / self.reference.std)
        )
        if self._since_check >= self.check_every and len(self._buffer) >= self.window // 2:
            self._since_check = 0
            self._psi = self._window_psi()
        new_state = self._classify()
        if new_state is self._state:
            return []
        event = DriftEvent(float(t_s), new_state, self._state, self._z, self._psi)
        self._state = new_state
        return [event]

    def _window_psi(self) -> float:
        window = np.asarray(self._buffer)
        scores = np.empty(self.reference.n_features)
        for j in range(self.reference.n_features):
            observed = _bin_counts(window[:, j], self.reference.bin_edges[j])
            scores[j] = psi(self.reference.bin_probs[j], observed / window.shape[0])
        return float(scores.mean())

    def _classify(self) -> DriftState:
        if self._z >= self.trip_z or self._psi >= self.trip_psi:
            return DriftState.TRIP
        if self._z >= self.warn_z or self._psi >= self.warn_psi:
            return DriftState.WARN
        return DriftState.OK

    def reset(self) -> None:
        """Return to the reference state (new stream, post-incident)."""
        self._ewma = self.reference.mean.copy()
        self._buffer.clear()
        self._since_check = 0
        self._state = DriftState.OK
        self._z = 0.0
        self._psi = 0.0
