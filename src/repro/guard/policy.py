"""One declarative bundle of guard configuration.

Benchmarks and the CLI need to stand up the whole detect→contain→recover
stack — validator chain, gap repairer, breakers, drift sentinel — many
times with identical settings (once per chaos scenario, so scenarios
can't contaminate each other through shared per-link state).
:class:`GuardPolicy` is that recipe: a frozen dataclass of knobs plus
:meth:`build`, which manufactures *fresh* component instances each call.

The dataclass is deliberately serialisation-friendly (numbers, strings,
one :class:`~repro.guard.drift.ReferenceStats`) so a policy can be logged
next to the benchmark results that used it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .breaker import CircuitBreaker
from .drift import DriftSentinel, ReferenceStats
from .repair import GapRepairer
from .supervisor import RecoverySupervisor
from .validation import (
    AmplitudeRangeCheck,
    EnvPlausibilityCheck,
    FiniteCheck,
    FrameValidator,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
)


@dataclass(frozen=True)
class GuardPolicy:
    """Recipe for a full self-healing stack; :meth:`build` instantiates it.

    Parameters mirror the component constructors; see
    :class:`~repro.guard.validation.FrameValidator`,
    :class:`~repro.guard.repair.GapRepairer`,
    :class:`~repro.guard.breaker.CircuitBreaker` and
    :class:`~repro.guard.drift.DriftSentinel` for semantics.
    """

    #: Training-fold statistics; drives the amplitude envelope and drift.
    reference: ReferenceStats
    #: Feature width the validator admits (CSI, or CSI + T/H).
    n_features: int
    # --- validation ---
    amplitude_margin: float = 8.0
    #: Where the T/H columns sit; ``None`` skips the plausibility check
    #: (CSI-only feature layouts).
    env_slice: slice | None = None
    monotonic_tolerance_s: float = 60.0
    quarantine_capacity: int = 256
    # --- repair ---
    expected_interval_s: float | None = None
    max_fill: int = 8
    repair_mode: str = "hold"
    # --- circuit breaker ---
    failure_threshold: int = 3
    cooldown_s: float = 60.0
    backoff_factor: float = 2.0
    #: Kept deliberately short relative to outage scales: the cost of a
    #: probe is one batch on a maybe-dead model, the cost of a long
    #: cooldown is serving the fallback after the primary already healed.
    max_cooldown_s: float = 240.0
    jitter: float = 0.1
    probe_batches: int = 2
    guard_fallback: bool = True
    # --- drift ---
    drift_alpha: float = 0.02
    warn_z: float = 6.0
    trip_z: float = 12.0
    drift_action: str = "warn"
    drift_window: int = 256
    drift_check_every: int = 64
    # --- determinism ---
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_features != self.reference.n_features:
            raise ConfigurationError(
                f"policy covers {self.n_features} features but the reference "
                f"stats carry {self.reference.n_features}"
            )

    def build_validator(self) -> FrameValidator:
        low, high = self.reference.amplitude_envelope(self.amplitude_margin)
        checks = [
            SubcarrierCountCheck(self.n_features),
            FiniteCheck(),
            AmplitudeRangeCheck(low, high),
            TimestampMonotonicityCheck(self.monotonic_tolerance_s),
        ]
        if self.env_slice is not None:
            checks.append(EnvPlausibilityCheck(self.env_slice))
        return FrameValidator(checks)

    def build_repairer(self) -> GapRepairer:
        return GapRepairer(
            self.expected_interval_s, max_fill=self.max_fill, mode=self.repair_mode
        )

    def build_supervisor(self, registry=None) -> RecoverySupervisor:
        breaker = CircuitBreaker(
            failure_threshold=self.failure_threshold,
            cooldown_s=self.cooldown_s,
            backoff_factor=self.backoff_factor,
            max_cooldown_s=self.max_cooldown_s,
            jitter=self.jitter,
            probe_batches=self.probe_batches,
            seed=self.seed,
        )
        fallback_breaker = None
        if self.guard_fallback:
            fallback_breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                backoff_factor=self.backoff_factor,
                max_cooldown_s=self.max_cooldown_s,
                jitter=self.jitter,
                probe_batches=self.probe_batches,
                seed=self.seed + 1,
            )
        sentinel = DriftSentinel(
            self.reference,
            alpha=self.drift_alpha,
            warn_z=self.warn_z,
            trip_z=self.trip_z,
            window=self.drift_window,
            check_every=self.drift_check_every,
        )
        return RecoverySupervisor(
            breaker=breaker,
            fallback_breaker=fallback_breaker,
            sentinel=sentinel,
            drift_action=self.drift_action,
            registry=registry,
        )

    def build(self, registry=None) -> tuple[FrameValidator, GapRepairer, RecoverySupervisor]:
        """Fresh validator/repairer/supervisor instances for one stream.

        Always build per scenario/replay: the components carry per-link
        state (timestamps, cadences, breaker clocks) that must not leak
        between runs.
        """
        return (
            self.build_validator(),
            self.build_repairer(),
            self.build_supervisor(registry),
        )
