"""Recovery supervision: one policy for "which tier serves this batch?".

Before this module the engine's degraded-mode logic was scattered: the
try/except in ``_predict`` chose the tier, and an inline health flip in
``_run_batch`` decided when DEGRADED ended.  :class:`RecoverySupervisor`
centralises those decisions behind three calls the engine makes per batch:

* :meth:`decide` — PRIMARY / FALLBACK / REJECT for this batch, from the
  primary's circuit breaker, the drift sentinel, and (when the fallback
  itself is failing) the fallback's breaker;
* :meth:`record_primary_success` (etc.) — outcome feedback that drives
  the breakers and the recovery counters;
* :meth:`resolve_health` — the link-health transition rule that used to
  live inline in the engine, including the ``link_recovered_total``
  bookkeeping contract (only a *primary* batch ends DEGRADED).

The default ``RecoverySupervisor()`` (no breakers, no sentinel) is a
strict passthrough: ``decide`` always answers PRIMARY and the engine
behaves exactly as it did before this subsystem existed.

This module must not import :mod:`repro.serve` at module level — the
engine imports the guard package, and an eager import back the other way
would be a cycle.  The one place the supervisor needs ``LinkHealth`` it
imports lazily inside the method.
"""

from __future__ import annotations

import enum

import numpy as np

from .breaker import BreakerState, CircuitBreaker
from .drift import DriftSentinel, DriftState


class ServingMode(enum.Enum):
    """Which tier the supervisor assigns to a batch."""

    PRIMARY = "primary"
    FALLBACK = "fallback"
    REJECT = "reject"


class RecoverySupervisor:
    """Compose breaker + drift + link health into one serving policy.

    Parameters
    ----------
    breaker:
        Circuit breaker guarding the primary estimator.  ``None`` means
        the primary is always eligible (legacy behaviour).
    fallback_breaker:
        Breaker guarding the fallback tier; when both breakers are open
        the supervisor answers REJECT rather than letting the engine
        hammer two dead models.
    sentinel:
        Optional :class:`~repro.guard.drift.DriftSentinel` fed every
        served batch via :meth:`observe`.
    drift_action:
        ``"warn"`` (default) only emits metrics on drift; ``"fallback"``
        additionally routes batches to the fallback tier while the
        sentinel is TRIPped — the conservative prior beats confident
        extrapolation on a shifted distribution.
    registry:
        Metrics sink (a :class:`~repro.serve.metrics.MetricsRegistry`,
        duck-typed).  May also be attached later via
        :meth:`bind_registry` — the engine does this so a supervisor
        built before the engine shares the engine's registry.
    observer:
        Optional event sink (an :class:`~repro.obs.observer.Observer`,
        duck-typed).  When live, breaker transitions and drift state
        changes land in the structured event log with stream-time
        stamps; attached by the engine via :meth:`bind_observer`.
    """

    def __init__(
        self,
        *,
        breaker: CircuitBreaker | None = None,
        fallback_breaker: CircuitBreaker | None = None,
        sentinel: DriftSentinel | None = None,
        drift_action: str = "warn",
        registry=None,
        observer=None,
    ) -> None:
        if drift_action not in ("warn", "fallback"):
            raise ValueError(f"drift_action must be 'warn' or 'fallback', got {drift_action!r}")
        self.breaker = breaker
        self.fallback_breaker = fallback_breaker
        self.sentinel = sentinel
        self.drift_action = drift_action
        self.registry = registry
        self.observer = observer

    def bind_registry(self, registry) -> None:
        """Adopt the engine's metrics registry unless one was given."""
        if self.registry is None:
            self.registry = registry

    def bind_observer(self, observer) -> None:
        """Adopt the engine's observer unless one was given."""
        if self.observer is None:
            self.observer = observer

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc(amount)

    def _set(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name).set(value)

    def _event(self, kind: str, t_s: float, **data) -> None:
        observer = self.observer
        if observer is not None and observer.enabled:
            observer.emit(kind, t_s=t_s, **data)

    # --------------------------------------------------------------- routing

    def decide(self, now_s: float) -> ServingMode:
        """Pick the tier for a batch flushing at stream time ``now_s``."""
        primary_ok = self.breaker is None or self.breaker.allow(now_s)
        drifted = (
            self.drift_action == "fallback"
            and self.sentinel is not None
            and self.sentinel.state is DriftState.TRIP
        )
        if primary_ok and not drifted:
            return ServingMode.PRIMARY
        if self.fallback_breaker is not None and not self.fallback_breaker.allow(now_s):
            self._inc("guard_rejected_batches")
            return ServingMode.REJECT
        self._inc("guard_short_circuits")
        return ServingMode.FALLBACK

    # ------------------------------------------------------------- outcomes

    def _feed(self, breaker: CircuitBreaker | None, now_s: float, ok: bool, label: str) -> None:
        if breaker is None:
            return
        before = breaker.state
        if ok:
            breaker.record_success(now_s)
        else:
            breaker.record_failure(now_s)
        after = breaker.state
        if before is not after:
            if after is BreakerState.OPEN:
                self._inc(f"{label}_breaker_opened_total")
                self._event(
                    "breaker.opened", now_s, breaker=label,
                    trip_count=breaker.trip_count,
                )
            elif after is BreakerState.CLOSED:
                self._inc(f"{label}_breaker_closed_total")
                self._event(
                    "breaker.closed", now_s, breaker=label,
                    recovery_count=breaker.recovery_count,
                )
        if before is BreakerState.HALF_OPEN and ok:
            self._inc(f"{label}_breaker_probes_total")
            self._event("breaker.probe", now_s, breaker=label, ok=True)

    def record_primary_success(self, now_s: float) -> None:
        self._feed(self.breaker, now_s, True, "primary")

    def record_primary_failure(self, now_s: float) -> None:
        self._feed(self.breaker, now_s, False, "primary")

    def record_fallback_success(self, now_s: float) -> None:
        self._feed(self.fallback_breaker, now_s, True, "fallback")

    def record_fallback_failure(self, now_s: float) -> None:
        self._feed(self.fallback_breaker, now_s, False, "fallback")

    # ---------------------------------------------------------------- drift

    def observe(self, batch: np.ndarray, now_s: float) -> None:
        """Feed a served batch to the drift sentinel; publish its scores."""
        if self.sentinel is None:
            return
        events = self.sentinel.observe(batch, now_s)
        for event in events:
            if event.state is DriftState.TRIP:
                self._inc("drift_trip_total")
                self._event(
                    "drift.trip", event.t_s,
                    z=event.z_score, psi=event.psi_score,
                    previous=event.previous.value,
                )
            elif event.state is DriftState.WARN:
                self._inc("drift_warn_total")
                self._event(
                    "drift.warn", event.t_s,
                    z=event.z_score, psi=event.psi_score,
                    previous=event.previous.value,
                )
        self._set("drift_z_score", self.sentinel.z_score)
        self._set("drift_psi_score", self.sentinel.psi_score)
        order = {DriftState.OK: 0, DriftState.WARN: 1, DriftState.TRIP: 2}
        self._set("drift_state", order[self.sentinel.state])

    # --------------------------------------------------------------- health

    def resolve_health(self, health, source: str):
        """Next link health after a batch from ``source``.

        Returns ``(new_health, recovered)`` where ``recovered`` is True
        exactly when a DEGRADED link just completed a *primary* batch —
        the engine increments ``link_recovered_total`` on that edge.
        Fallback answers keep (or make) the link DEGRADED: the output is
        flowing but at reduced fidelity, and claiming recovery on a prior
        would defeat the metric's meaning.
        """
        from ..serve.robustness import LinkHealth  # lazy: avoid guard<->serve cycle

        if source != "primary":
            return LinkHealth.DEGRADED, False
        recovered = health is LinkHealth.DEGRADED
        return LinkHealth.HEALTHY, recovered

    def snapshot(self) -> dict:
        """JSON-friendly diagnostic state for reports and tests."""
        return {
            "primary_breaker": None if self.breaker is None else self.breaker.snapshot(),
            "fallback_breaker": (
                None if self.fallback_breaker is None else self.fallback_breaker.snapshot()
            ),
            "drift_state": None if self.sentinel is None else self.sentinel.state.value,
            "drift_action": self.drift_action,
        }
