"""Self-healing serving guard: detect → contain → recover.

The serving stack (:mod:`repro.serve`) answers "how do frames become
predictions"; this package answers "what happens when the frames, the
sensors, or the model go wrong":

* **detect** — :mod:`repro.guard.validation` gates admission with a
  typed check chain; :mod:`repro.guard.drift` watches the serving
  distribution against persisted training-fold reference statistics;
* **contain** — refused frames land in a bounded
  :class:`~repro.guard.validation.QuarantineBuffer` with the verdict
  attached; short per-link dropouts are filled by the
  :class:`~repro.guard.repair.GapRepairer` (every fill flagged);
* **recover** — :class:`~repro.guard.breaker.CircuitBreaker` plus
  :class:`~repro.guard.supervisor.RecoverySupervisor` run the
  primary → fallback → reject degradation ladder with backed-off,
  probed re-entry instead of hammer-and-hope.

:class:`~repro.guard.policy.GuardPolicy` bundles the whole stack into
one declarative recipe; :func:`~repro.guard.bench.run_guard_bench`
(lazily exported — it pulls in :mod:`repro.faults`) replays the chaos
suite with the guard off and on and reports the recovery margin.
"""

from __future__ import annotations

from .breaker import BreakerState, CircuitBreaker
from .drift import DriftEvent, DriftSentinel, DriftState, ReferenceStats, psi
from .policy import GuardPolicy
from .repair import REPAIR_MODES, FillFrame, GapRepairer
from .supervisor import RecoverySupervisor, ServingMode
from .validation import (
    AmplitudeRangeCheck,
    EnvPlausibilityCheck,
    FiniteCheck,
    FrameCheck,
    FrameValidator,
    QuarantineBuffer,
    QuarantinedFrame,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
    ValidationFailure,
)

#: Names served lazily from :mod:`repro.guard.bench` (imports repro.faults,
#: which imports repro.serve — eager import here would complete a cycle).
_LAZY_BENCH = ("GuardBenchReport", "run_guard_bench")

__all__ = [
    "AmplitudeRangeCheck",
    "BreakerState",
    "CircuitBreaker",
    "DriftEvent",
    "DriftSentinel",
    "DriftState",
    "EnvPlausibilityCheck",
    "FillFrame",
    "FiniteCheck",
    "FrameCheck",
    "FrameValidator",
    "GapRepairer",
    "GuardBenchReport",
    "GuardPolicy",
    "QuarantineBuffer",
    "QuarantinedFrame",
    "REPAIR_MODES",
    "RecoverySupervisor",
    "ReferenceStats",
    "ServingMode",
    "SubcarrierCountCheck",
    "TimestampMonotonicityCheck",
    "ValidationFailure",
    "psi",
    "run_guard_bench",
]


def __getattr__(name: str):
    if name in _LAZY_BENCH:
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
