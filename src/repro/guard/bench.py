"""guard-bench: does the self-healing stack actually help under chaos?

The honest way to evaluate a recovery subsystem is an ablation: replay
the identical chaos campaign twice — once through a bare engine, once
with the full :class:`~repro.guard.policy.GuardPolicy` stack (validation,
quarantine, gap repair, breakers, drift sentinel) — and compare per
scenario.  The metric that matters is **coverage** (correct answers over
*all* campaign frames, measured + repaired), because plain accuracy can
be gamed by shedding load.

The report also reconciles the frame ledger of every replay: any
unaccounted frame (``n_unanswered != 0``) is a bug in the pipeline, and
:attr:`GuardBenchReport.unaccounted_total` exists so CI can assert it is
exactly zero.

This module imports :mod:`repro.faults` (which imports the serving
stack), so the :mod:`repro.guard` package exposes it lazily.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..faults.bench import ChaosBenchReport, ChaosScenario, run_chaos_bench
from .policy import GuardPolicy


@dataclass(frozen=True)
class GuardScenarioComparison:
    """One scenario's outcome with the guard off vs on."""

    name: str
    accuracy_off: float
    accuracy_on: float
    coverage_off: float
    coverage_on: float
    n_quarantined: int
    n_repaired: int
    n_recovered: int
    n_breaker_trips: int
    n_drift_warn: int
    n_drift_trip: int
    n_unanswered_off: int
    n_unanswered_on: int

    @property
    def coverage_gain(self) -> float:
        return self.coverage_on - self.coverage_off

    def row(self) -> dict[str, object]:
        return {
            "scenario": self.name,
            "acc off": f"{self.accuracy_off:.3f}",
            "acc on": f"{self.accuracy_on:.3f}",
            "cov off": f"{self.coverage_off:.3f}",
            "cov on": f"{self.coverage_on:.3f}",
            "gain": f"{self.coverage_gain:+.3f}",
            "quarantined": self.n_quarantined,
            "repaired": self.n_repaired,
            "recovered": self.n_recovered,
            "trips": self.n_breaker_trips,
            "drift": f"{self.n_drift_warn}w/{self.n_drift_trip}t",
        }


@dataclass
class GuardBenchReport:
    """Paired off/on chaos replays plus the per-scenario comparison."""

    baseline: ChaosBenchReport
    guarded: ChaosBenchReport
    comparisons: list[GuardScenarioComparison]

    def comparison(self, name: str) -> GuardScenarioComparison:
        for c in self.comparisons:
            if c.name == name:
                return c
        raise ConfigurationError(f"no scenario named {name!r} in this report")

    @property
    def unaccounted_total(self) -> int:
        """Frames unaccounted for across *both* replays; must be zero."""
        return sum(
            abs(c.n_unanswered_off) + abs(c.n_unanswered_on)
            for c in self.comparisons
        )

    def describe(self) -> str:
        rows = [c.row() for c in self.comparisons]
        columns = list(rows[0]) if rows else []
        widths = {
            c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns
        }
        lines = ["self-healing ablation (guard-bench), coverage = correct/frames:"]
        lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
        for row in rows:
            lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
        lines.append("")
        if self.unaccounted_total:
            lines.append(
                f"WARNING: {self.unaccounted_total} unaccounted frames — "
                "the ledger does not reconcile"
            )
        else:
            lines.append("frame ledger reconciles: zero unaccounted frames")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload for the common bench envelope (see repro.benchkit)."""
        return {
            "bench": "guard-bench",
            "unaccounted_total": self.unaccounted_total,
            "comparisons": [
                {**dataclasses.asdict(c), "coverage_gain": c.coverage_gain}
                for c in self.comparisons
            ],
        }


def run_guard_bench(
    estimator,
    dataset,
    policy: GuardPolicy,
    scenarios: list[ChaosScenario] | None = None,
    *,
    n_links: int = 2,
    max_batch: int = 32,
    max_latency_ms: float | None = None,
    stale_after_s: float | None = None,
    window: int = 5,
    hold_frames: int = 3,
    seed: int = 0,
    fallback=None,
    include_env: bool = True,
    observer_factory=None,
) -> GuardBenchReport:
    """Replay the chaos suite with the guard off, then on; compare.

    Parameters mirror :func:`~repro.faults.bench.run_chaos_bench`;
    ``include_env`` defaults to True here because the sensor-fault
    scenarios are exactly where quarantine and repair earn their keep.
    Both replays share one ``seed`` so they see byte-identical fault
    streams, and the policy builds fresh components per scenario, so the
    whole ablation is deterministic.

    ``observer_factory`` (``name -> Observer``) traces the *guarded*
    replay only — that is the leg whose quarantine/repair/breaker events
    the observability layer exists to explain; the bare baseline stays
    untraced so the ablation's off-leg remains the zero-overhead
    reference.  The observers land on ``report.guarded.observers``.
    """
    common = dict(
        scenarios=scenarios,
        n_links=n_links,
        max_batch=max_batch,
        max_latency_ms=max_latency_ms,
        stale_after_s=stale_after_s,
        window=window,
        hold_frames=hold_frames,
        seed=seed,
        fallback=fallback,
        include_env=include_env,
    )
    baseline = run_chaos_bench(estimator, dataset, guard=None, **common)
    guarded = run_chaos_bench(
        estimator, dataset, guard=policy, observer_factory=observer_factory, **common
    )

    comparisons = []
    for off in baseline.results:
        on = guarded.result(off.name)
        comparisons.append(
            GuardScenarioComparison(
                name=off.name,
                accuracy_off=off.accuracy,
                accuracy_on=on.accuracy,
                coverage_off=off.coverage,
                coverage_on=on.coverage,
                n_quarantined=on.n_quarantined,
                n_repaired=on.n_repaired,
                n_recovered=on.n_recovered,
                n_breaker_trips=on.n_breaker_trips,
                n_drift_warn=on.n_drift_warn,
                n_drift_trip=on.n_drift_trip,
                n_unanswered_off=off.n_unanswered,
                n_unanswered_on=on.n_unanswered,
            )
        )
    return GuardBenchReport(baseline, guarded, comparisons)
