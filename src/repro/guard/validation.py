"""Validated ingestion: a frame-check chain plus a quarantine buffer.

The serving engine's original admission test (:func:`~repro.data.streaming.check_csi_row`)
answers one question — is this row 1-D and finite?  A deployment needs a
richer gate: does the row have the width the model was trained on, do the
amplitudes sit inside the training envelope, is the timestamp moving
forward, are the environment columns physically plausible?  Each of those
is one :class:`FrameCheck`; a :class:`FrameValidator` runs them in order
and reports the *first* failure, so the quarantine ledger names the check
that fired rather than a generic "bad frame".

Rejected frames are not discarded silently: the engine parks them in a
bounded :class:`QuarantineBuffer` with the failing check and message, so
an operator (or a test) can audit exactly what was refused and why — the
"contain" step of the detect→contain→recover loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ValidationError


@dataclass(frozen=True)
class ValidationFailure:
    """Why a frame was refused: the check that fired and its message."""

    check: str
    message: str
    #: First offending feature column, when the check can name one.
    column: int | None = None


class FrameCheck:
    """One admission predicate over ``(link_id, t_s, row)``.

    Subclasses set :attr:`name` and implement :meth:`check`, returning
    ``None`` to pass or a :class:`ValidationFailure` to reject.  Checks
    may keep per-link state (see :class:`TimestampMonotonicityCheck`);
    :meth:`reset` must clear it.
    """

    name = "check"

    def check(
        self, link_id: str, t_s: float, row: np.ndarray
    ) -> ValidationFailure | None:  # pragma: no cover - interface
        raise NotImplementedError

    def check_batch(
        self,
        link_id: str,
        t_s: np.ndarray,
        rows: np.ndarray,
        active: np.ndarray,
    ) -> list[ValidationFailure | None]:
        """Vectorizable form: one verdict per row of a (n, d) block.

        ``active[i]`` marks rows still in play (no earlier check failed
        them); results at inactive positions are ignored by the caller
        and must not advance per-link state.  The base implementation
        replays :meth:`check` row by row — exactly the scalar semantics —
        so custom checks stay correct without writing a batch kernel;
        the built-in checks override it with vectorized mask computation
        and build the (byte-identical) failure messages only for the
        rows that actually fail.
        """
        out: list[ValidationFailure | None] = [None] * len(t_s)
        for i in np.flatnonzero(active):
            out[i] = self.check(link_id, float(t_s[i]), rows[i])
        return out

    def reset(self) -> None:
        """Forget any per-stream state (new replay, new campaign)."""

    def _fail(self, message: str, column: int | None = None) -> ValidationFailure:
        return ValidationFailure(self.name, message, column)

    def _mask_to_failures(
        self,
        link_id: str,
        t_s: np.ndarray,
        rows: np.ndarray,
        fail_mask: np.ndarray,
    ) -> list[ValidationFailure | None]:
        """Build scalar-path failures for the rows a batch mask rejected."""
        out: list[ValidationFailure | None] = [None] * len(t_s)
        for i in np.flatnonzero(fail_mask):
            out[i] = self.check(link_id, float(t_s[i]), rows[i])
        return out


class FiniteCheck(FrameCheck):
    """Reject rows carrying NaN/inf anywhere."""

    name = "finite"

    def check(self, link_id: str, t_s: float, row: np.ndarray) -> ValidationFailure | None:
        finite = np.isfinite(row)
        if finite.all():
            return None
        column = int(np.flatnonzero(~finite)[0])
        return self._fail(f"non-finite value at column {column}", column)

    def check_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray, active: np.ndarray
    ) -> list[ValidationFailure | None]:
        fail = active & ~np.isfinite(rows).all(axis=1)
        return self._mask_to_failures(link_id, t_s, rows, fail)


class SubcarrierCountCheck(FrameCheck):
    """Reject rows whose width does not match the model's feature layout."""

    name = "width"

    def __init__(self, expected: int) -> None:
        if expected < 1:
            raise ConfigurationError("expected width must be >= 1")
        self.expected = expected

    def check(self, link_id: str, t_s: float, row: np.ndarray) -> ValidationFailure | None:
        if row.ndim != 1:
            return self._fail(f"expected a 1-D row, got shape {row.shape}")
        if row.shape[0] != self.expected:
            return self._fail(
                f"row has {row.shape[0]} features, model expects {self.expected}"
            )
        return None

    def check_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray, active: np.ndarray
    ) -> list[ValidationFailure | None]:
        # A 2-D block has one uniform width: every active row passes or
        # every active row fails (message built by the scalar path).
        if rows.ndim == 2 and rows.shape[1] == self.expected:
            return [None] * len(t_s)
        return self._mask_to_failures(link_id, t_s, rows, np.asarray(active, bool))


class AmplitudeRangeCheck(FrameCheck):
    """Reject rows with features outside a per-column [low, high] envelope.

    The envelope normally comes from training-fold
    :class:`~repro.guard.drift.ReferenceStats` plus a margin — a frame
    far outside everything the model ever saw is more likely a sniffer
    glitch than a new physical regime, and either way the prediction
    would be extrapolation.
    """

    name = "amplitude"

    def __init__(self, low, high) -> None:
        self.low = np.asarray(low, dtype=float)
        self.high = np.asarray(high, dtype=float)
        if np.any(self.low > self.high):
            raise ConfigurationError("amplitude envelope must have low <= high")

    def check(self, link_id: str, t_s: float, row: np.ndarray) -> ValidationFailure | None:
        if self.low.ndim == 1 and row.shape[0] != self.low.shape[0]:
            return self._fail(
                f"row has {row.shape[0]} features, envelope covers {self.low.shape[0]}"
            )
        out = (row < self.low) | (row > self.high)
        if not out.any():
            return None
        column = int(np.flatnonzero(out)[0])
        return self._fail(
            f"column {column} value {row[column]:.4g} outside "
            f"[{np.min(self.low):.4g}, {np.max(self.high):.4g}] envelope",
            column,
        )

    def check_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray, active: np.ndarray
    ) -> list[ValidationFailure | None]:
        if self.low.ndim == 1 and rows.shape[1] != self.low.shape[0]:
            fail = np.asarray(active, bool)
        else:
            # NaNs compare False on both sides, exactly like the scalar
            # check — the finite check is the one that names them.
            fail = active & ((rows < self.low) | (rows > self.high)).any(axis=1)
        return self._mask_to_failures(link_id, t_s, rows, fail)


class TimestampMonotonicityCheck(FrameCheck):
    """Reject frames whose timestamp jumps backwards beyond a tolerance.

    Per link: mild reordering (NTP jitter, bursty transports) is normal
    and the micro-batch queue absorbs it, so the check only fires when a
    frame arrives more than ``tolerance_s`` *behind* the newest accepted
    frame of its link — the signature of a wedged sniffer clock.
    """

    name = "monotonic"

    def __init__(self, tolerance_s: float = 0.0) -> None:
        if tolerance_s < 0:
            raise ConfigurationError("tolerance_s must be >= 0")
        self.tolerance_s = tolerance_s
        self._latest: dict[str, float] = {}

    def reset(self) -> None:
        self._latest.clear()

    def check(self, link_id: str, t_s: float, row: np.ndarray) -> ValidationFailure | None:
        latest = self._latest.get(link_id)
        if latest is not None and t_s < latest - self.tolerance_s:
            return self._fail(
                f"timestamp {t_s:.3f} is {latest - t_s:.3f}s behind link "
                f"{link_id!r}'s newest frame ({latest:.3f}), beyond the "
                f"{self.tolerance_s:.3f}s tolerance"
            )
        self._latest[link_id] = max(latest, t_s) if latest is not None else t_s
        return None

    def check_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray, active: np.ndarray
    ) -> list[ValidationFailure | None]:
        # Sequential semantics, vectorized: the "newest accepted frame" a
        # row is measured against is the running max of the active
        # timestamps before it (failing rows never update the scalar
        # state, but a failing timestamp sits below the running max by
        # construction, so including it in the prefix changes nothing).
        out: list[ValidationFailure | None] = [None] * len(t_s)
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return out
        t = np.asarray(t_s, dtype=float)[idx]
        if np.isnan(t).any():
            # NaN timestamps make Python's max() asymmetric (max(x, nan)
            # keeps x, max(nan, x) keeps nan), so the scalar state
            # evolution cannot be mirrored with accumulate — run the
            # scalar check per row to stay byte-identical.
            for k, i in enumerate(idx):
                out[i] = self.check(link_id, float(t[k]), rows[i])
            return out
        latest = self._latest.get(link_id)
        init = -np.inf if latest is None else latest
        prev = np.empty(idx.size)
        prev[0] = init
        if idx.size > 1:
            np.maximum(np.maximum.accumulate(t[:-1]), init, out=prev[1:])
        fail = np.isfinite(prev) & (t < prev - self.tolerance_s)
        for k in np.flatnonzero(fail):
            newest, when = float(prev[k]), float(t[k])
            out[idx[k]] = self._fail(
                f"timestamp {when:.3f} is {newest - when:.3f}s behind link "
                f"{link_id!r}'s newest frame ({newest:.3f}), beyond the "
                f"{self.tolerance_s:.3f}s tolerance"
            )
        # Python max semantics, like the scalar path (t has no NaN here).
        newest_seen = float(t.max()) if latest is None else max(latest, float(t.max()))
        self._latest[link_id] = newest_seen
        return out


class EnvPlausibilityCheck(FrameCheck):
    """Reject rows whose environment columns are physically implausible.

    Applies only to feature layouts that carry the T/H columns
    (``env_slice``); an indoor office is never at -40 degC or 180 %RH, so
    such readings mean the Thingy (or its parser) is broken.
    """

    name = "env"

    def __init__(
        self,
        env_slice: slice = slice(64, 66),
        temperature_c: tuple[float, float] = (-10.0, 50.0),
        humidity_rh: tuple[float, float] = (0.0, 100.0),
    ) -> None:
        self.env_slice = env_slice
        self.temperature_c = temperature_c
        self.humidity_rh = humidity_rh

    def check(self, link_id: str, t_s: float, row: np.ndarray) -> ValidationFailure | None:
        start, stop, step = self.env_slice.indices(row.shape[0])
        wanted_stop = self.env_slice.stop
        if (wanted_stop is not None and wanted_stop > row.shape[0]) or len(
            range(start, stop, step)
        ) < 2:
            return self._fail(
                f"row width {row.shape[0]} does not carry T/H columns at "
                f"{self.env_slice.start}:{self.env_slice.stop}"
            )
        temperature, humidity = row[start], row[start + 1]
        lo_t, hi_t = self.temperature_c
        if not lo_t <= temperature <= hi_t:
            return self._fail(
                f"temperature {temperature:.2f} degC outside [{lo_t}, {hi_t}]", start
            )
        lo_h, hi_h = self.humidity_rh
        if not lo_h <= humidity <= hi_h:
            return self._fail(
                f"humidity {humidity:.2f} %RH outside [{lo_h}, {hi_h}]", start + 1
            )
        return None

    def check_batch(
        self, link_id: str, t_s: np.ndarray, rows: np.ndarray, active: np.ndarray
    ) -> list[ValidationFailure | None]:
        start, stop, step = self.env_slice.indices(rows.shape[1])
        wanted_stop = self.env_slice.stop
        if (wanted_stop is not None and wanted_stop > rows.shape[1]) or len(
            range(start, stop, step)
        ) < 2:
            fail = np.asarray(active, bool)
        else:
            temperature, humidity = rows[:, start], rows[:, start + 1]
            lo_t, hi_t = self.temperature_c
            lo_h, hi_h = self.humidity_rh
            # Chained comparisons with NaN are False, so ~(ok) fails NaN
            # env columns exactly as the scalar path does.
            ok = ((lo_t <= temperature) & (temperature <= hi_t)) & (
                (lo_h <= humidity) & (humidity <= hi_h)
            )
            fail = active & ~ok
        return self._mask_to_failures(link_id, t_s, rows, fail)


class FrameValidator:
    """Run a chain of :class:`FrameCheck` objects; first failure wins.

    ``validate`` is the non-raising hot-path form the engine uses;
    ``check`` raises the failure as a typed
    :class:`~repro.exceptions.ValidationError` for callers that prefer
    exceptions.
    """

    def __init__(self, checks: list[FrameCheck]) -> None:
        if not checks:
            raise ConfigurationError("FrameValidator needs at least one check")
        names = [c.name for c in checks]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate check names in chain: {names}")
        self.checks = list(checks)

    def validate(self, link_id: str, t_s: float, row) -> ValidationFailure | None:
        """``None`` when every check passes, else the first failure."""
        try:
            row = np.asarray(row, dtype=float)
        except (TypeError, ValueError):
            return ValidationFailure("coerce", "row is not coercible to a float array")
        for chk in self.checks:
            failure = chk.check(link_id, float(t_s), row)
            if failure is not None:
                return failure
        return None

    def validate_batch(
        self, link_id: str, t_s, rows
    ) -> list[ValidationFailure | None]:
        """Batch form of :meth:`validate`: one verdict per row.

        Semantically identical to calling :meth:`validate` on each
        ``(t_s[i], rows[i])`` in order — same verdicts, same messages,
        same per-link state evolution (tests assert byte-identity) — but
        each check computes its pass/fail mask over the whole block in
        one vectorized pass, so validation cost stops being
        O(frames × Python-level checks).  Rows that cannot form a clean
        2-D float block (ragged widths, non-numeric entries) fall back to
        the scalar path row by row, which preserves the per-row
        ``"coerce"`` verdicts.
        """
        t = np.asarray(t_s, dtype=float)
        try:
            block = np.asarray(rows, dtype=float)
        except (TypeError, ValueError):
            block = None
        if block is None or block.ndim != 2:
            return [
                self.validate(link_id, float(when), row)
                for when, row in zip(t, rows)
            ]
        n = block.shape[0]
        failures: list[ValidationFailure | None] = [None] * n
        active = np.ones(n, dtype=bool)
        for chk in self.checks:
            if not active.any():
                break
            verdicts = chk.check_batch(link_id, t, block, active)
            for i in np.flatnonzero(active):
                if verdicts[i] is not None:
                    failures[i] = verdicts[i]
                    active[i] = False
        return failures

    def check(self, link_id: str, t_s: float, row) -> np.ndarray:
        """Raising form: returns the coerced row or raises ValidationError."""
        failure = self.validate(link_id, t_s, row)
        if failure is not None:
            raise ValidationError(
                f"frame from link {link_id!r} at t={t_s} failed the "
                f"{failure.check!r} check: {failure.message}",
                column=failure.column,
            )
        return np.asarray(row, dtype=float)

    def reset(self) -> None:
        for chk in self.checks:
            chk.reset()


@dataclass(frozen=True)
class QuarantinedFrame:
    """One refused frame plus the verdict that refused it."""

    link_id: str
    t_s: float
    row: object
    failure: ValidationFailure


class QuarantineBuffer:
    """Bounded holding pen for refused frames (drop-oldest on overflow).

    Lifetime totals (:attr:`total`, :meth:`counts_by_check`) survive
    eviction, so the ledger stays exact even when the buffer wraps.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._frames: deque[QuarantinedFrame] = deque(maxlen=capacity)
        self.total = 0
        self._by_check: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._frames)

    def add(self, frame: QuarantinedFrame) -> None:
        self.total += 1
        check = frame.failure.check
        self._by_check[check] = self._by_check.get(check, 0) + 1
        self._frames.append(frame)

    def counts_by_check(self) -> dict[str, int]:
        """Lifetime quarantine counts keyed by the check that fired."""
        return dict(self._by_check)

    def drain(self) -> list[QuarantinedFrame]:
        """Pop every retained frame (oldest first) for offline audit."""
        out = list(self._frames)
        self._frames.clear()
        return out
