"""Circuit breaker: stop hammering a failing model, probe before trusting it.

The serving engine's original recovery story was a single health flip —
primary raises, link goes DEGRADED, next clean batch flips it back.  That
retries the primary on *every* batch even when it is hard-down, and
re-trusts it after one lucky success.  The classic fix is the circuit
breaker (Nygard's *Release It!* pattern, standard in service meshes):

* **CLOSED** — traffic flows; consecutive failures are counted.
* **OPEN** — after ``failure_threshold`` consecutive failures the breaker
  trips; all calls are short-circuited for a cooldown period.  Repeated
  trips back off exponentially (with jitter, so replicas don't retry in
  lockstep) up to ``max_cooldown_s``.
* **HALF_OPEN** — when the cooldown expires the next call is let through
  as a probe; ``probe_batches`` consecutive successes close the breaker
  and reset the backoff, a single failure re-opens it at the next longer
  cooldown.

All timing is **stream time** (frame timestamps), never wall clock, so a
6-hour replay exercises realistic cooldowns in milliseconds and results
are bit-identical run to run.  Jitter comes from a seeded generator for
the same reason.
"""

from __future__ import annotations

import enum

import numpy as np

from ..exceptions import ConfigurationError


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with exponential backoff.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while CLOSED) that trip the breaker.
    cooldown_s:
        Base OPEN duration in stream seconds.
    backoff_factor:
        Each re-trip without an intervening recovery multiplies the
        cooldown by this factor.
    max_cooldown_s:
        Ceiling on the backed-off cooldown.
    jitter:
        Fractional cooldown randomisation (0.1 → ±10 %), drawn from a
        seeded generator for reproducibility.
    probe_batches:
        Consecutive HALF_OPEN successes required to close the breaker.
    seed:
        Seed for the jitter generator.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 60.0,
        backoff_factor: float = 2.0,
        max_cooldown_s: float = 900.0,
        jitter: float = 0.1,
        probe_batches: int = 2,
        seed: int = 0,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_s <= 0 or max_cooldown_s < cooldown_s:
            raise ConfigurationError("need 0 < cooldown_s <= max_cooldown_s")
        if backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if probe_batches < 1:
            raise ConfigurationError("probe_batches must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.backoff_factor = backoff_factor
        self.max_cooldown_s = max_cooldown_s
        self.jitter = jitter
        self.probe_batches = probe_batches
        self._rng = np.random.default_rng(seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._trip_streak = 0  # re-trips without a full recovery
        self._open_until_s = -np.inf
        #: Lifetime number of CLOSED/HALF_OPEN → OPEN transitions.
        self.trip_count = 0
        #: Lifetime number of HALF_OPEN → CLOSED recoveries.
        self.recovery_count = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    def allow(self, now_s: float) -> bool:
        """May the protected call be attempted at stream time ``now_s``?

        While OPEN this also performs the OPEN → HALF_OPEN transition
        once the cooldown has elapsed, admitting the probe call.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if now_s < self._open_until_s:
                return False
            self._state = BreakerState.HALF_OPEN
            self._probe_successes = 0
        return True  # HALF_OPEN: admit the probe

    def record_success(self, now_s: float) -> None:
        """The protected call succeeded."""
        if self._state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probe_batches:
                self._state = BreakerState.CLOSED
                self._trip_streak = 0
                self._probe_successes = 0
                self.recovery_count += 1
        self._consecutive_failures = 0

    def record_failure(self, now_s: float) -> None:
        """The protected call failed."""
        if self._state is BreakerState.HALF_OPEN:
            self._trip(now_s)  # the probe failed — straight back to OPEN
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip(now_s)

    def _trip(self, now_s: float) -> None:
        cooldown = min(
            self.max_cooldown_s,
            self.cooldown_s * self.backoff_factor**self._trip_streak,
        )
        if self.jitter:
            cooldown *= 1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0))
        self._state = BreakerState.OPEN
        self._open_until_s = now_s + cooldown
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._trip_streak += 1
        self.trip_count += 1

    def snapshot(self) -> dict:
        """Current state for metrics/diagnostics (JSON-friendly)."""
        return {
            "state": self._state.value,
            "consecutive_failures": self._consecutive_failures,
            "trip_count": self.trip_count,
            "recovery_count": self.recovery_count,
            "trip_streak": self._trip_streak,
            "open_until_s": float(self._open_until_s),
        }

    def reset(self) -> None:
        """Return to pristine CLOSED (new stream / post-incident)."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._trip_streak = 0
        self._open_until_s = -np.inf
