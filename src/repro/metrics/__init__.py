"""Evaluation metrics.

:mod:`repro.metrics.classification` covers the occupancy task (Table IV)
and :mod:`repro.metrics.regression` the environment-prediction task
(Table V, Eqs. 2-3).
"""

from .classification import (
    accuracy,
    confusion_matrix,
    precision_recall_f1,
    balanced_accuracy,
)
from .regression import mae, mape, rmse, r2_score
from .calibration import (
    reliability_curve,
    expected_calibration_error,
    brier_score,
)
from .bootstrap import bootstrap_ci

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "balanced_accuracy",
    "mae",
    "mape",
    "rmse",
    "r2_score",
    "reliability_curve",
    "expected_calibration_error",
    "brier_score",
    "bootstrap_ci",
]
