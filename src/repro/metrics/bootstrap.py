"""Bootstrap confidence intervals for evaluation metrics.

Table IV/V report single numbers per fold; a reproduction should also
say how stable they are.  :func:`bootstrap_ci` resamples rows with
replacement and returns the percentile interval of any metric
``f(y_true, y_pred) -> float``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ShapeError


def bootstrap_ci(
    metric: Callable[[np.ndarray, np.ndarray], float],
    y_true: np.ndarray,
    y_pred: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """Point estimate plus percentile CI of a paired metric.

    Returns ``(estimate, low, high)``.
    """
    if n_resamples < 10:
        raise ShapeError("n_resamples must be >= 10")
    if not 0.0 < confidence < 1.0:
        raise ShapeError("confidence must be within (0, 1)")
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ShapeError("paired arrays must have equal first dimension")
    n = y_true.shape[0]
    if n == 0:
        raise ShapeError("empty arrays")
    rng = rng or np.random.default_rng()

    estimate = float(metric(y_true, y_pred))
    samples = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        samples[i] = metric(y_true[idx], y_pred[idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return estimate, float(low), float(high)
