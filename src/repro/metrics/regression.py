"""Regression metrics: the paper's Eq. 2 (MAE) and Eq. 3 (MAPE).

MAPE follows the paper exactly: per-sample relative error uses
``max(eps, |y_i|)`` in the denominator, so zero targets do not blow up.
Values are returned as fractions; Table V prints them x100.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"shapes differ: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ShapeError("empty arrays")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error (paper Eq. 2)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error as a fraction (paper Eq. 3).

    ``mean(|y - yhat| / max(eps, |y|))`` — multiply by 100 for percent.
    """
    if eps <= 0:
        raise ShapeError("eps must be strictly positive")
    y_true, y_pred = _check_pair(y_true, y_pred)
    denom = np.maximum(eps, np.abs(y_true))
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is mean-predictor.

    A constant target series yields 0.0 for a perfect prediction and
    ``-inf``-free negative values otherwise (we return 0.0 / -1.0 style
    conventions by flooring the denominator).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    if np.all(y_true == y_true[0]):
        # Constant target: variance explained is undefined; report the
        # 0.0 / -1.0 convention (exact match / any error).
        return 0.0 if ss_res == 0.0 else -1.0
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        # Numerically constant (variation below float resolution).
        return 0.0 if ss_res == 0.0 else -1.0
    return 1.0 - ss_res / ss_tot
