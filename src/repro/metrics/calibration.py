"""Probability-calibration metrics.

A deployed occupancy controller acts on thresholds of ``P(occupied)``
(switch the lights off only when the detector is *sure* the room is
empty), so probability quality matters beyond accuracy.  This module
provides the standard diagnostics:

* :func:`reliability_curve` — predicted-vs-empirical frequency per
  probability bin;
* :func:`expected_calibration_error` — the bin-weighted |gap| summary;
* :func:`brier_score` — the proper scoring rule.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError


def _check_inputs(y_true: np.ndarray, proba: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel().astype(int)
    proba = np.asarray(proba, dtype=float).ravel()
    if y_true.shape != proba.shape:
        raise ShapeError(f"shapes differ: {y_true.shape} vs {proba.shape}")
    if y_true.size == 0:
        raise ShapeError("empty arrays")
    if not np.all(np.isin(y_true, (0, 1))):
        raise ShapeError("labels must be binary 0/1")
    if np.any((proba < 0) | (proba > 1)):
        raise ShapeError("probabilities must lie in [0, 1]")
    return y_true, proba


def reliability_curve(
    y_true: np.ndarray, proba: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (mean predicted, empirical frequency, count).

    Bins are uniform over [0, 1]; empty bins are dropped.
    """
    if n_bins < 1:
        raise ShapeError("n_bins must be >= 1")
    y_true, proba = _check_inputs(y_true, proba)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_idx = np.clip(np.digitize(proba, edges[1:-1]), 0, n_bins - 1)
    predicted, empirical, counts = [], [], []
    for b in range(n_bins):
        mask = bin_idx == b
        if not np.any(mask):
            continue
        predicted.append(float(proba[mask].mean()))
        empirical.append(float(y_true[mask].mean()))
        counts.append(int(mask.sum()))
    return np.array(predicted), np.array(empirical), np.array(counts)


def expected_calibration_error(
    y_true: np.ndarray, proba: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted mean |predicted - empirical| over the bins (ECE)."""
    predicted, empirical, counts = reliability_curve(y_true, proba, n_bins)
    total = counts.sum()
    return float(np.sum(counts * np.abs(predicted - empirical)) / total)


def brier_score(y_true: np.ndarray, proba: np.ndarray) -> float:
    """Mean squared probability error — proper, decomposable, in [0, 1]."""
    y_true, proba = _check_inputs(y_true, proba)
    return float(np.mean((proba - y_true) ** 2))
