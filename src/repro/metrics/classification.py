"""Binary classification metrics (Table IV reports accuracy in %)."""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError


def _check_binary_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel().astype(int)
    y_pred = np.asarray(y_pred).ravel().astype(int)
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"label shapes differ: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ShapeError("empty label arrays")
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        if not np.all(np.isin(arr, (0, 1))):
            raise ShapeError(f"{name} must be binary 0/1")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions, in [0, 1]."""
    y_true, y_pred = _check_binary_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 matrix ``[[TN, FP], [FN, TP]]``."""
    y_true, y_pred = _check_binary_pair(y_true, y_pred)
    tn = int(np.count_nonzero((y_true == 0) & (y_pred == 0)))
    fp = int(np.count_nonzero((y_true == 0) & (y_pred == 1)))
    fn = int(np.count_nonzero((y_true == 1) & (y_pred == 0)))
    tp = int(np.count_nonzero((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]])


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[float, float, float]:
    """(precision, recall, F1) for the positive (occupied) class.

    Degenerate denominators return 0.0, the usual convention.
    """
    matrix = confusion_matrix(y_true, y_pred)
    tp = matrix[1, 1]
    fp = matrix[0, 1]
    fn = matrix[1, 0]
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    if precision + recall > 0:
        f1 = 2.0 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return float(precision), float(recall), float(f1)


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of per-class recalls; robust to the 63/37 class imbalance.

    For single-class folds (e.g. Table III folds 2-3 are all-empty) the
    metric reduces to the recall of the class that is present.
    """
    y_true, y_pred = _check_binary_pair(y_true, y_pred)
    recalls = []
    for cls in (0, 1):
        mask = y_true == cls
        if np.any(mask):
            recalls.append(float(np.mean(y_pred[mask] == cls)))
    return float(np.mean(recalls))
