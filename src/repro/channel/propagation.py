"""Multipath indoor channel model (image method + body scattering).

The simulated channel response at subcarrier frequency ``f`` is the coherent
sum over propagation paths::

    H(f) = sum_p  a_p * G_env(f) * exp(-j 2 pi f d_p / c)

with, per path ``p``:

* free-space spreading ``1/d_p`` (amplitude),
* one reflection-coefficient factor per wall bounce (humidity dependent,
  see :mod:`repro.channel.materials`),
* a shadowing factor if any occupant's body obstructs the path's first
  Fresnel zone (knife-edge-style attenuation), and
* additional *scattered* paths TX -> body -> RX for each occupant, whose
  lengths change as people move — this is the time-varying component that
  makes occupied-room CSI "alive" and empty-room CSI quasi-static, the
  signal the paper's classifiers exploit.

Everything is vectorised over subcarriers; a single evaluation costs a few
microseconds per path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SPEED_OF_LIGHT
from ..exceptions import ChannelError, GeometryError
from .atmosphere import AtmosphereState, EnvironmentalGainModel
from .geometry import (
    Room,
    Vec3,
    fresnel_radius_m,
    segment_vertical_cylinder_distance,
)
from .materials import get_material
from .subcarriers import SubcarrierGrid


@dataclass(frozen=True)
class Scatterer:
    """A body (occupant) or furniture item interacting with the channel.

    Occupants are vertical dielectric cylinders: ``position`` is the
    ground-plane centre, ``radius_m`` the body radius, ``height_m`` the
    height.  ``reflectivity`` is the linear amplitude scattering gain of the
    TX->body->RX path; ``blocking_db`` the extra loss applied to a path whose
    Fresnel zone the body intersects.
    """

    position: Vec3
    radius_m: float = 0.22
    height_m: float = 1.75
    reflectivity: float = 0.35
    blocking_db: float = 9.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0 or self.height_m <= 0:
            raise GeometryError("scatterer radius and height must be positive")
        if not 0.0 <= self.reflectivity <= 1.0:
            raise GeometryError("reflectivity must be within [0, 1]")

    @property
    def center(self) -> Vec3:
        """Mid-height centre of the body cylinder."""
        return Vec3(self.position.x, self.position.y, self.position.z + self.height_m / 2.0)


@dataclass(frozen=True)
class PathComponent:
    """One resolved propagation path: geometric length plus amplitude factor.

    ``base_amplitude`` collects spreading loss and reflection coefficients
    evaluated at the reference humidity; humidity re-scaling happens at
    response time so a single geometry solve serves many environment states.

    ``segments`` holds the physical polyline of the path (one segment for
    the LoS, two — TX->bounce and bounce->RX — for a wall reflection) so
    occupant shadowing can be evaluated against the *actual* geometry: a
    body anywhere in the room obstructs whichever bounce segments pass
    near it, which is the physical mechanism that makes WiFi sensing see
    people far from the direct link.
    """

    length_m: float
    base_amplitude: float
    kind: str
    #: Wall material keys encountered, for humidity-dependent re-weighting.
    materials: tuple[str, ...] = field(default=())
    #: Physical segments of the path, ((a, b), ...); empty for scatter paths.
    segments: tuple[tuple[Vec3, Vec3], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ChannelError(f"path length must be positive, got {self.length_m}")
        if self.base_amplitude < 0:
            raise ChannelError("path amplitude must be >= 0")


class MultipathChannel:
    """Frequency-selective indoor channel between a fixed TX and RX.

    Parameters
    ----------
    room:
        The office geometry.
    grid:
        Subcarrier grid at which responses are evaluated.
    tx, rx:
        Antenna positions (must lie inside the room).
    max_reflection_order:
        0 keeps only the line of sight; 1 adds the six single-bounce wall
        images (the level at which indoor 2.4 GHz channels are already
        strongly frequency selective).
    reference_distance_m:
        Distance at which the LoS amplitude is defined as 1.0; all path
        amplitudes scale as ``reference/d``.
    """

    def __init__(
        self,
        room: Room,
        grid: SubcarrierGrid,
        tx: Vec3,
        rx: Vec3,
        max_reflection_order: int = 1,
        reference_distance_m: float = 1.0,
        environmental_model: EnvironmentalGainModel | None = None,
    ) -> None:
        if not room.contains(tx):
            raise GeometryError(f"TX {tx} outside the room")
        if not room.contains(rx):
            raise GeometryError(f"RX {rx} outside the room")
        if max_reflection_order not in (0, 1, 2):
            raise ChannelError("only reflection orders 0, 1 and 2 are implemented")
        if reference_distance_m <= 0:
            raise ChannelError("reference_distance_m must be positive")
        self.room = room
        self.grid = grid
        self.tx = tx
        self.rx = rx
        self.max_reflection_order = max_reflection_order
        self.reference_distance_m = reference_distance_m
        self.env_model = environmental_model or EnvironmentalGainModel(grid.n_subcarriers)
        self._static_paths = self._trace_static_paths()

    # ------------------------------------------------------------------ paths

    def _trace_static_paths(self) -> list[PathComponent]:
        """LoS plus first-order wall reflections (image method)."""
        paths: list[PathComponent] = []
        d_los = self.tx.distance_to(self.rx)
        if d_los <= 0:
            raise GeometryError("TX and RX must not coincide")
        paths.append(
            PathComponent(
                length_m=d_los,
                base_amplitude=self.reference_distance_m / d_los,
                kind="los",
                segments=((self.tx, self.rx),),
            )
        )
        if self.max_reflection_order >= 1:
            for wall in self.room.walls():
                image = wall.mirror(self.tx)
                d = image.distance_to(self.rx)
                material = get_material(wall.material_key)
                gamma = material.reflection_coefficient()
                bounce = self._bounce_point(image, wall)
                paths.append(
                    PathComponent(
                        length_m=d,
                        base_amplitude=gamma * self.reference_distance_m / d,
                        kind=f"reflection:{wall.name}",
                        materials=(wall.material_key,),
                        segments=((self.tx, bounce), (bounce, self.rx)),
                    )
                )
        if self.max_reflection_order >= 2:
            paths.extend(self._trace_second_order())
        return paths

    def _trace_second_order(self) -> list[PathComponent]:
        """Double-bounce wall paths via nested images.

        For walls i != j: mirror TX across wall i, mirror that image
        across wall j; the straight ray from the double image to RX
        unfolds into TX -> bounce_i -> bounce_j -> RX.  Amplitude picks up
        both reflection coefficients.  Same-wall pairs are skipped (a ray
        cannot bounce off the same plane twice in a convex room).
        """
        paths: list[PathComponent] = []
        walls = list(self.room.walls())
        for i, wall_i in enumerate(walls):
            image1 = wall_i.mirror(self.tx)
            gamma_i = get_material(wall_i.material_key).reflection_coefficient()
            for j, wall_j in enumerate(walls):
                if i == j:
                    continue
                image2 = wall_j.mirror(image1)
                d = image2.distance_to(self.rx)
                if d <= 0:
                    continue
                gamma_j = get_material(wall_j.material_key).reflection_coefficient()
                # Unfold: the RX->image2 ray crosses wall j at b2; the
                # b2->image1 ray crosses wall i at b1.
                b2 = self._plane_crossing(image2, self.rx, wall_j)
                b1 = self._plane_crossing(image1, b2, wall_i)
                paths.append(
                    PathComponent(
                        length_m=d,
                        base_amplitude=gamma_i * gamma_j * self.reference_distance_m / d,
                        kind=f"reflection2:{wall_i.name}+{wall_j.name}",
                        materials=(wall_i.material_key, wall_j.material_key),
                        segments=((self.tx, b1), (b1, b2), (b2, self.rx)),
                    )
                )
        return paths

    @staticmethod
    def _plane_crossing(a: Vec3, b: Vec3, wall) -> Vec3:
        """Intersection of segment ``a-b`` with a wall plane (clamped)."""
        av = a.as_array()
        bv = b.as_array()
        axis, offset = wall.axis, wall.offset
        denom = bv[axis] - av[axis]
        if denom == 0.0:
            t = 0.5
        else:
            t = (offset - av[axis]) / denom
        t = float(np.clip(t, 0.0, 1.0))
        return Vec3.from_array(av + t * (bv - av))

    def _bounce_point(self, image: Vec3, wall) -> Vec3:
        """Where the image-method ray crosses the reflecting wall plane."""
        return self._plane_crossing(image, self.rx, wall)

    @property
    def static_paths(self) -> tuple[PathComponent, ...]:
        """The resolved static (geometry-only) paths."""
        return tuple(self._static_paths)

    # -------------------------------------------------------------- occupants

    def _path_obstruction_db(self, scatterers: list[Scatterer]) -> np.ndarray:
        """Extra loss [dB] applied to each static path by body blocking.

        For every path the *actual* propagation segments (TX->bounce,
        bounce->RX) are tested against each body cylinder; a body within
        one Fresnel radius of any segment attenuates that path with a
        smooth knife-edge-like profile.  This is the core WiFi-sensing
        mechanism: a person far from the direct link still shadows the
        wall/ceiling reflections that pass overhead or alongside them, so
        the received spectral shape depends on where people are.
        """
        losses = np.zeros(len(self._static_paths))
        if not scatterers:
            return losses
        wavelength = float(np.mean(self.grid.wavelengths_m()))
        for s in scatterers:
            if s.blocking_db <= 0.0:
                continue
            xy = (s.position.x, s.position.y)
            z_range = (s.position.z, s.position.z + s.height_m)
            for p_idx, path in enumerate(self._static_paths):
                for a, b in path.segments:
                    seg_len = a.distance_to(b)
                    if seg_len <= 0:
                        continue
                    r_fresnel = fresnel_radius_m(wavelength, seg_len / 2.0, seg_len / 2.0)
                    dist = segment_vertical_cylinder_distance(a, b, xy, z_range)
                    clearance = dist - s.radius_m
                    if clearance < r_fresnel:
                        frac = 1.0 - max(clearance, 0.0) / r_fresnel
                        losses[p_idx] += s.blocking_db * frac
        return losses

    def _scattered_paths(self, scatterers: list[Scatterer]) -> list[PathComponent]:
        """TX -> body -> RX single-scatter paths for each occupant."""
        paths: list[PathComponent] = []
        for s in scatterers:
            c = s.center
            d = self.tx.distance_to(c) + c.distance_to(self.rx)
            amp = s.reflectivity * self.reference_distance_m / d
            paths.append(PathComponent(length_m=d, base_amplitude=amp, kind="scatter"))
        return paths

    # --------------------------------------------------------------- response

    def static_field(
        self,
        obstructing: list[Scatterer] | None = None,
        atmosphere: AtmosphereState | None = None,
    ) -> np.ndarray:
        """Coherent sum of the traced wall/LoS paths.

        Applies occupant shadowing (``obstructing``) and humidity-rescaled
        reflection coefficients, but *not* the environmental hardware gain —
        callers compose that last so field components can be cached.
        """
        obstructing = list(obstructing or [])
        freqs = self.grid.frequencies_hz
        obstruction_db = self._path_obstruction_db(obstructing)

        h = np.zeros(len(freqs), dtype=complex)
        for path, extra_db in zip(self._static_paths, obstruction_db):
            amp = path.base_amplitude * 10.0 ** (-extra_db / 20.0)
            if atmosphere is not None and path.materials:
                # Re-scale reflection coefficients for the current humidity.
                for key in path.materials:
                    mat = get_material(key)
                    ref = mat.reflection_coefficient()
                    now = mat.reflection_coefficient(atmosphere.humidity_rh)
                    if ref > 0:
                        amp *= now / ref
            phase = -2.0 * np.pi * freqs * path.length_m / SPEED_OF_LIGHT
            h += amp * np.exp(1j * phase)
        return h

    def scattered_field(self, scatterers: list[Scatterer]) -> np.ndarray:
        """Coherent sum of single-scatter TX->body->RX paths.

        Pure function of the scatterer set, so a recorder can cache the
        furniture contribution between layout changes.
        """
        freqs = self.grid.frequencies_hz
        h = np.zeros(len(freqs), dtype=complex)
        for path in self._scattered_paths(scatterers):
            phase = -2.0 * np.pi * freqs * path.length_m / SPEED_OF_LIGHT
            h += path.base_amplitude * np.exp(1j * phase)
        return h

    def environmental_gain(self, atmosphere: AtmosphereState) -> np.ndarray:
        """Per-subcarrier hardware/environment gain for the given state."""
        return self.env_model.gain(atmosphere)

    def response(
        self,
        scatterers: list[Scatterer] | None = None,
        atmosphere: AtmosphereState | None = None,
    ) -> np.ndarray:
        """Complex CSI vector ``H`` of shape ``(n_subcarriers,)``.

        Coherently sums static paths (with occupant shadowing and
        humidity-rescaled reflection coefficients), occupant scattered paths
        and the environmental (hardware drift) gain profile.
        """
        scatterers = list(scatterers or [])
        h = self.static_field(scatterers, atmosphere) + self.scattered_field(scatterers)
        if atmosphere is not None:
            h *= self.environmental_gain(atmosphere)
        return h

    def amplitude(
        self,
        scatterers: list[Scatterer] | None = None,
        atmosphere: AtmosphereState | None = None,
    ) -> np.ndarray:
        """CSI amplitude ``|H|`` — the quantity the paper's models consume."""
        return np.abs(self.response(scatterers=scatterers, atmosphere=atmosphere))
