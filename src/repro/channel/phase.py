"""CSI phase sanitization.

The paper uses only CSI amplitude (Section II-A), because raw Nexmon
phase is dominated by two receiver artefacts that change packet to
packet:

* **STO** (symbol timing offset) — a time shift that appears as a phase
  ramp linear in the subcarrier index;
* **CFO/CPO** (carrier frequency / common phase offset) — a constant
  phase rotation across all subcarriers.

A credible CSI toolkit still ships phase tools, because sanitised phase
carries genuine geometry information (path-length changes at sub-
wavelength resolution).  :func:`sanitize_phase` implements the standard
linear-detrending sanitizer (Sen et al.'s PhaseFix / the SpotFi
pre-step): unwrap, fit a line over the subcarrier index, subtract ramp
and offset.  :func:`phase_difference` gives the frame-to-frame sanitized
phase delta that motion detectors threshold.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError


def unwrap_phase(phase: np.ndarray) -> np.ndarray:
    """Unwrap phases along the subcarrier axis (last axis)."""
    phase = np.asarray(phase, dtype=float)
    if phase.ndim not in (1, 2):
        raise ShapeError(f"expected 1-D or 2-D phase, got shape {phase.shape}")
    return np.unwrap(phase, axis=-1)


def sanitize_phase(h: np.ndarray, guard_mask: np.ndarray | None = None) -> np.ndarray:
    """Remove the linear (STO) and constant (CPO) phase artefacts.

    Parameters
    ----------
    h:
        Complex CSI, shape ``(d,)`` or ``(n, d)``.
    guard_mask:
        Optional boolean mask of guard bins to exclude from the linear
        fit (their phase is leakage noise); sanitized values are still
        returned for every bin.

    Returns
    -------
    Sanitized phase in radians, same shape as the input's subcarrier
    layout, with zero mean and zero mean slope across the fitted bins.
    """
    h = np.asarray(h, dtype=complex)
    squeeze = h.ndim == 1
    if squeeze:
        h = h[None, :]
    if h.ndim != 2:
        raise ShapeError(f"expected 1-D or 2-D CSI, got shape {h.shape}")
    n, d = h.shape
    if guard_mask is not None:
        guard_mask = np.asarray(guard_mask, dtype=bool)
        if guard_mask.shape != (d,):
            raise ShapeError(f"guard mask must have shape ({d},)")
        fit_idx = np.flatnonzero(~guard_mask)
        if fit_idx.size < 2:
            raise ShapeError("need at least two non-guard bins for the fit")
    else:
        fit_idx = np.arange(d)

    phase = unwrap_phase(np.angle(h))
    k = np.arange(d, dtype=float)
    k_fit = k[fit_idx]
    # Per-frame least-squares line through the fitted bins.
    k_mean = k_fit.mean()
    k_var = float(np.mean((k_fit - k_mean) ** 2))
    p_fit = phase[:, fit_idx]
    p_mean = p_fit.mean(axis=1, keepdims=True)
    slope = ((p_fit - p_mean) * (k_fit - k_mean)).mean(axis=1, keepdims=True) / max(
        k_var, 1e-12
    )
    sanitized = phase - slope * k[None, :] - (p_mean - slope * k_mean)
    return sanitized[0] if squeeze else sanitized


def phase_difference(
    h_now: np.ndarray, h_prev: np.ndarray, guard_mask: np.ndarray | None = None
) -> np.ndarray:
    """Sanitized phase change between consecutive frames.

    Motion between frames shifts path lengths and therefore sanitized
    phase; an empty, static room shows near-zero difference.  Shape
    follows the inputs (``(d,)`` -> ``(d,)``).
    """
    a = sanitize_phase(h_now, guard_mask)
    b = sanitize_phase(h_prev, guard_mask)
    if a.shape != b.shape:
        raise ShapeError(f"frame shapes differ: {a.shape} vs {b.shape}")
    delta = a - b
    # Re-wrap the difference into (-pi, pi].
    return np.angle(np.exp(1j * delta))
