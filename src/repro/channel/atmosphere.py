"""Temperature/humidity coupling into the radio chain.

Two physical effects make CSI amplitude carry environmental information —
which is exactly what the paper demonstrates in Section V-D by regressing
temperature and humidity from CSI:

1. **Propagation**: water-vapour absorption at 2.4 GHz is tiny over ~10 m
   (micro-dB), but humidity changes the reflectivity of hygroscopic
   surfaces (handled in :mod:`repro.channel.materials`) and the effective
   refractive index, producing small per-subcarrier gain/phase shifts.

2. **Hardware**: the dominant real-world coupling.  Crystal-oscillator
   frequency and PA/LNA gain drift with temperature; receiver sensitivity
   shifts with humidity via board parasitics.  Nexmon CSI magnitudes are
   not calibrated, so these drifts appear directly in the data.

We combine both into a smooth, *non-linear* (saturating) per-subcarrier
gain profile.  Non-linearity is deliberate and load-bearing for the
reproduction: Table V shows a linear regressor recovers T/H from CSI far
worse than the neural network, so the simulated coupling must not be
linear in (T, H).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

#: Reference environment at which the environmental gain is exactly unity.
REFERENCE_TEMPERATURE_C = 21.0
REFERENCE_HUMIDITY_RH = 40.0


@dataclass(frozen=True)
class AtmosphereState:
    """Instantaneous environment as seen by the radio chain."""

    temperature_c: float
    humidity_rh: float

    def __post_init__(self) -> None:
        if not -40.0 <= self.temperature_c <= 85.0:
            raise ConfigurationError(
                f"temperature {self.temperature_c} degC outside plausible indoor range"
            )
        if not 0.0 <= self.humidity_rh <= 100.0:
            raise ConfigurationError(f"humidity {self.humidity_rh} %RH outside [0, 100]")


def _subcarrier_signature(n_subcarriers: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic per-subcarrier sensitivity patterns for T and H.

    Real front ends have smooth, ripple-like frequency responses whose drift
    is not flat across the band; we synthesise one fixed smooth signature per
    quantity from a seeded RNG so every campaign (and test) sees the same
    hardware.
    """
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 1.0, n_subcarriers)
    sig_t = np.zeros(n_subcarriers)
    sig_h = np.zeros(n_subcarriers)
    for harmonic in range(1, 5):
        sig_t += rng.normal(0, 1.0 / harmonic) * np.sin(
            2 * np.pi * harmonic * x + rng.uniform(0, 2 * np.pi)
        )
        sig_h += rng.normal(0, 1.0 / harmonic) * np.sin(
            2 * np.pi * harmonic * x + rng.uniform(0, 2 * np.pi)
        )
    # Normalise to unit RMS so the magnitude knobs below are meaningful.
    sig_t /= max(float(np.sqrt(np.mean(sig_t**2))), 1e-12)
    sig_h /= max(float(np.sqrt(np.mean(sig_h**2))), 1e-12)
    return sig_t, sig_h


class EnvironmentalGainModel:
    """Per-subcarrier multiplicative gain as a function of (T, H).

    With ``u_T = tanh((T - T0)/sT)`` and ``u_H = tanh((H - H0)/sH)``, the
    gain for subcarrier ``k`` is::

        g_k(T, H) = 1 + a_k u_T + b_k u_H + c_k u_T u_H
                      + d_k (u_T^2 - 1/2) + e_k (u_H^2 - 1/2)

    The ``tanh`` saturation, the interaction term, and especially the
    *even* quadratic terms make the map non-linear: a linear regressor on
    CSI amplitudes can only recover the odd part of the T/H dependence,
    while an MLP recovers both — which is precisely the Table V result
    the paper uses to argue that "the variation of temperature and
    humidity inside the room is mostly reflected by CSI data in a
    non-linear fashion".  Coefficients are smooth frequency signatures
    fixed by ``seed``.
    """

    def __init__(
        self,
        n_subcarriers: int,
        temperature_scale_c: float = 3.0,
        humidity_scale_rh: float = 8.0,
        temperature_magnitude: float = 0.008,
        humidity_magnitude: float = 0.007,
        interaction_magnitude: float = 0.012,
        temperature_quadratic: float = 0.09,
        humidity_quadratic: float = 0.06,
        seed: int = 7,
    ) -> None:
        if n_subcarriers < 1:
            raise ConfigurationError("n_subcarriers must be >= 1")
        if temperature_scale_c <= 0 or humidity_scale_rh <= 0:
            raise ConfigurationError("saturation scales must be positive")
        self.n_subcarriers = n_subcarriers
        self.temperature_scale_c = temperature_scale_c
        self.humidity_scale_rh = humidity_scale_rh
        sig_t, sig_h = _subcarrier_signature(n_subcarriers, seed)
        sig_t2, sig_h2 = _subcarrier_signature(n_subcarriers, seed + 1)
        self._a = temperature_magnitude * sig_t
        self._b = humidity_magnitude * sig_h
        self._c = interaction_magnitude * sig_t * sig_h[::-1]
        self._d = temperature_quadratic * sig_t2
        self._e = humidity_quadratic * sig_h2

    def gain(self, state: AtmosphereState) -> np.ndarray:
        """Multiplicative amplitude gain per subcarrier (shape ``(d_H,)``)."""
        ut = np.tanh((state.temperature_c - REFERENCE_TEMPERATURE_C) / self.temperature_scale_c)
        uh = np.tanh((state.humidity_rh - REFERENCE_HUMIDITY_RH) / self.humidity_scale_rh)
        g = (
            1.0
            + self._a * ut
            + self._b * uh
            + self._c * ut * uh
            + self._d * (ut * ut - 0.5)
            + self._e * (uh * uh - 0.5)
        )
        return np.clip(g, 0.5, 1.5)


def environmental_gain(
    state: AtmosphereState, n_subcarriers: int, seed: int = 7
) -> np.ndarray:
    """Convenience wrapper constructing a default model and evaluating it."""
    return EnvironmentalGainModel(n_subcarriers, seed=seed).gain(state)
