"""OFDM subcarrier grid for IEEE 802.11 channels.

Section II-A of the paper defines the CSI dimensionality as
``d_H = 3.2 * bandwidth`` (bandwidth in MHz): 64 entries for a 20 MHz
channel, 128 for 40 MHz, up to 512 for 160 MHz.  This module materialises
that grid as actual baseband frequency offsets so the multipath channel can
evaluate a frequency-selective response at each subcarrier.

The Nexmon CSI extractor reports all FFT bins, including guard and DC bins,
which is why the paper works with the full 64-wide vector (a0..a63) rather
than the 52 data subcarriers of 802.11g.  We reproduce that convention:
``SubcarrierGrid.frequencies_hz`` covers the full FFT width, and the
``is_guard`` mask identifies bins that carry no modulated energy (their
amplitudes in real captures are dominated by leakage, which the sniffer
model reproduces with a low deterministic floor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

#: Supported IEEE 802.11ac channel bandwidths in MHz (Section II-A).
SUPPORTED_BANDWIDTHS_MHZ = (20, 40, 80, 160)

#: FFT size per bandwidth; equals ``3.2 * bandwidth_MHz``.
_FFT_SIZE = {20: 64, 40: 128, 80: 256, 160: 512}

#: Number of guard bins on each spectrum edge for a 64-point 802.11 OFDM
#: symbol (legacy 20 MHz: 6 low guards, 5 high guards, 1 DC).
_GUARDS_64 = (6, 5)


def csi_dimension(bandwidth_hz: float) -> int:
    """Return ``d_H`` for a channel bandwidth, per the paper's formula.

    >>> csi_dimension(20e6)
    64
    >>> csi_dimension(160e6)
    512
    """
    return int(round(3.2 * bandwidth_hz / 1e6))


@dataclass(frozen=True)
class SubcarrierGrid:
    """The set of FFT bins whose channel response forms the CSI vector.

    Parameters
    ----------
    bandwidth_hz:
        Channel bandwidth in Hz.  Must be one of the 802.11ac widths.
    carrier_hz:
        Centre (RF carrier) frequency in Hz.
    """

    bandwidth_hz: float
    carrier_hz: float

    def __post_init__(self) -> None:
        mhz = self.bandwidth_hz / 1e6
        if int(round(mhz)) not in SUPPORTED_BANDWIDTHS_MHZ:
            raise ConfigurationError(
                f"bandwidth {mhz:g} MHz not an 802.11ac width {SUPPORTED_BANDWIDTHS_MHZ}"
            )
        if self.carrier_hz <= self.bandwidth_hz:
            raise ConfigurationError("carrier frequency must exceed the bandwidth")

    @property
    def n_subcarriers(self) -> int:
        """``d_H`` — the CSI vector length (64 for 20 MHz)."""
        return csi_dimension(self.bandwidth_hz)

    @property
    def spacing_hz(self) -> float:
        """Subcarrier spacing (312.5 kHz for every 802.11 OFDM width)."""
        return self.bandwidth_hz / self.n_subcarriers

    @property
    def indices(self) -> np.ndarray:
        """Subcarrier indices 0..d_H-1 in Nexmon (a0..a63) order.

        Nexmon reports bins in natural FFT order: index 0 is the DC-adjacent
        low edge after fftshift, i.e. baseband offsets run monotonically
        from -BW/2 to +BW/2.
        """
        return np.arange(self.n_subcarriers)

    @property
    def baseband_offsets_hz(self) -> np.ndarray:
        """Baseband frequency offset of each bin, -BW/2 .. +BW/2."""
        n = self.n_subcarriers
        return (np.arange(n) - n // 2) * self.spacing_hz

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Absolute RF frequency of each subcarrier."""
        return self.carrier_hz + self.baseband_offsets_hz

    @property
    def is_guard(self) -> np.ndarray:
        """Boolean mask of guard/DC bins (no modulated energy).

        Scaled from the 64-point legacy layout (6 low guards, 5 high guards,
        DC null) proportionally for wider FFTs.
        """
        n = self.n_subcarriers
        low = int(round(_GUARDS_64[0] * n / 64))
        high = int(round(_GUARDS_64[1] * n / 64))
        mask = np.zeros(n, dtype=bool)
        mask[:low] = True
        if high > 0:
            mask[-high:] = True
        mask[n // 2] = True  # DC bin
        return mask

    @property
    def n_data_subcarriers(self) -> int:
        """Number of bins that carry modulated energy."""
        return int(np.count_nonzero(~self.is_guard))

    def wavelengths_m(self) -> np.ndarray:
        """Per-subcarrier wavelength in metres."""
        from ..config import SPEED_OF_LIGHT

        return SPEED_OF_LIGHT / self.frequencies_hz
