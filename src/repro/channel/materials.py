"""Electromagnetic material properties at 2.4 GHz.

Reflection loss values are representative of published indoor-propagation
measurements (ITU-R P.2040 / P.1238 class numbers) for the materials the
paper's office is built from: 12 cm plasterboard internal walls, 55 cm
reinforced-concrete external walls, glass windows, wood/fabric furniture
and the human body (mostly water at 2.4 GHz).

Humidity sensitivity captures the small increase of reflection loss of
hygroscopic materials (plasterboard, wood) as they absorb moisture — one of
the physical couplings that lets CSI encode humidity (Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Reflection behaviour of a building material at 2.4 GHz.

    Parameters
    ----------
    name:
        Human-readable identifier.
    reflection_loss_db:
        Magnitude loss of a specular reflection at mid incidence angles, in
        dB (positive number; larger = weaker reflection).
    humidity_sensitivity_db_per_rh:
        Additional reflection loss per %RH above a 40 %RH reference.
        Hygroscopic materials have positive values.
    penetration_loss_db:
        Loss of a ray transmitted through the material (used for blocking).
    """

    name: str
    reflection_loss_db: float
    humidity_sensitivity_db_per_rh: float = 0.0
    penetration_loss_db: float = 10.0

    def __post_init__(self) -> None:
        if self.reflection_loss_db < 0:
            raise ConfigurationError("reflection_loss_db must be >= 0")

    def reflection_coefficient(self, humidity_rh: float = 40.0) -> float:
        """Linear amplitude reflection coefficient at the given humidity.

        Clipped to [0, 1]; at 40 %RH it equals ``10^(-loss/20)``.
        """
        loss_db = self.reflection_loss_db + self.humidity_sensitivity_db_per_rh * (
            humidity_rh - 40.0
        )
        loss_db = max(loss_db, 0.0)
        return float(np.clip(10.0 ** (-loss_db / 20.0), 0.0, 1.0))


#: Catalogue of materials appearing in the simulated office.
MATERIALS: dict[str, Material] = {
    "plasterboard": Material(
        "plasterboard",
        reflection_loss_db=7.0,
        humidity_sensitivity_db_per_rh=0.04,
        penetration_loss_db=4.0,
    ),
    "concrete": Material(
        "concrete",
        reflection_loss_db=4.0,
        humidity_sensitivity_db_per_rh=0.01,
        penetration_loss_db=30.0,
    ),
    "glass": Material(
        "glass",
        reflection_loss_db=6.0,
        humidity_sensitivity_db_per_rh=0.0,
        penetration_loss_db=3.0,
    ),
    "wood": Material(
        "wood",
        reflection_loss_db=9.0,
        humidity_sensitivity_db_per_rh=0.05,
        penetration_loss_db=6.0,
    ),
    "human": Material(
        "human",
        reflection_loss_db=8.0,
        humidity_sensitivity_db_per_rh=0.0,
        penetration_loss_db=18.0,
    ),
}


def get_material(key: str) -> Material:
    """Look up a material by key, with a helpful error on typos."""
    try:
        return MATERIALS[key]
    except KeyError as exc:
        known = ", ".join(sorted(MATERIALS))
        raise ConfigurationError(f"unknown material {key!r}; known: {known}") from exc
