"""Nexmon-like CSI receiver front end.

The paper extracts CSI with the Nexmon firmware patch on Raspberry Pis
(Section IV-A, [22]).  Nexmon CSI has well-known artefacts that any
realistic reproduction of the *data* must include, because the paper's
models learn on the artefact-bearing amplitudes:

* **Thermal noise** at the receiver adds a complex Gaussian floor.
* **AGC (automatic gain control)** rescales every frame so its total power
  sits near a target — absolute amplitude is therefore only meaningful up
  to a slowly-varying gain, and frame-to-frame gain steps quantize.
* **Quantization**: the Broadcom chip reports CSI as small integers;
  amplitudes are effectively quantized to a fixed grid.
* **Guard bins** carry only leakage: a small deterministic floor rather
  than true channel gain.
* **Frame loss**: a lossy link drops a percentage of frames.

The sniffer turns ideal complex channel vectors from
:class:`~repro.channel.propagation.MultipathChannel` into the amplitude rows
a Nexmon capture would log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ChannelError, ShapeError
from .subcarriers import SubcarrierGrid


@dataclass(frozen=True)
class SnifferConfig:
    """Tunables of the receiver front end."""

    #: Std of the complex-noise quadratures relative to unit specular power.
    noise_sigma: float = 0.01
    #: AGC target RMS amplitude across data subcarriers.
    agc_target: float = 1.0
    #: AGC gain quantization step in dB (Broadcom gain tables are coarse).
    agc_step_db: float = 0.25
    #: Amplitude quantization step (integer CSI scaled to ~0.001 resolution).
    amplitude_lsb: float = 0.001
    #: Deterministic leakage amplitude reported on guard bins.
    guard_floor: float = 0.027
    #: Probability that a frame is lost and not logged.
    frame_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ChannelError("noise_sigma must be >= 0")
        if self.agc_target <= 0:
            raise ChannelError("agc_target must be positive")
        if self.agc_step_db <= 0:
            raise ChannelError("agc_step_db must be positive")
        if self.amplitude_lsb <= 0:
            raise ChannelError("amplitude_lsb must be positive")
        if not 0.0 <= self.frame_loss_rate < 1.0:
            raise ChannelError("frame_loss_rate must be within [0, 1)")


class NexmonSniffer:
    """Converts ideal channel vectors into Nexmon-style CSI amplitude rows."""

    def __init__(
        self,
        grid: SubcarrierGrid,
        config: SnifferConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or SnifferConfig()
        self._rng = rng or np.random.default_rng()
        self._guard_mask = grid.is_guard

    def _agc_gain(self, h: np.ndarray) -> float:
        """Quantized gain driving the frame to the AGC target RMS."""
        data = h[~self._guard_mask]
        rms = float(np.sqrt(np.mean(np.abs(data) ** 2)))
        if rms <= 0:
            return 1.0
        gain_db = 20.0 * np.log10(self.config.agc_target / rms)
        step = self.config.agc_step_db
        gain_db = round(gain_db / step) * step
        return float(10.0 ** (gain_db / 20.0))

    def capture(self, h_ideal: np.ndarray) -> np.ndarray | None:
        """One received frame's CSI amplitude vector, or ``None`` if lost.

        Applies, in order: thermal noise, AGC with quantized gain, guard-bin
        leakage floor, and amplitude quantization.
        """
        h_ideal = np.asarray(h_ideal, dtype=complex)
        if h_ideal.shape != (self.grid.n_subcarriers,):
            raise ShapeError(
                f"expected shape ({self.grid.n_subcarriers},), got {h_ideal.shape}"
            )
        if self.config.frame_loss_rate > 0.0:
            if self._rng.random() < self.config.frame_loss_rate:
                return None

        sigma = self.config.noise_sigma
        noise = self._rng.normal(0, sigma, h_ideal.shape) + 1j * self._rng.normal(
            0, sigma, h_ideal.shape
        )
        h = h_ideal + noise
        h = h * self._agc_gain(h)

        amplitude = np.abs(h)
        amplitude[self._guard_mask] = self.config.guard_floor

        lsb = self.config.amplitude_lsb
        return np.round(amplitude / lsb) * lsb

    def capture_many(self, h_stack: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised capture of many frames.

        Parameters
        ----------
        h_stack:
            Ideal complex channels, shape ``(n_frames, n_subcarriers)``.

        Returns
        -------
        amplitudes, kept:
            ``amplitudes`` has shape ``(n_kept, n_subcarriers)``; ``kept`` is
            the boolean mask of frames that survived frame loss.
        """
        h_stack = np.asarray(h_stack, dtype=complex)
        if h_stack.ndim != 2 or h_stack.shape[1] != self.grid.n_subcarriers:
            raise ShapeError(
                f"expected (n, {self.grid.n_subcarriers}) stack, got {h_stack.shape}"
            )
        n = h_stack.shape[0]
        kept = self._rng.random(n) >= self.config.frame_loss_rate

        sigma = self.config.noise_sigma
        noise = self._rng.normal(0, sigma, h_stack.shape) + 1j * self._rng.normal(
            0, sigma, h_stack.shape
        )
        h = h_stack + noise

        data = h[:, ~self._guard_mask]
        rms = np.sqrt(np.mean(np.abs(data) ** 2, axis=1))
        rms = np.maximum(rms, 1e-30)
        gain_db = 20.0 * np.log10(self.config.agc_target / rms)
        step = self.config.agc_step_db
        gain_db = np.round(gain_db / step) * step
        gains = 10.0 ** (gain_db / 20.0)
        amplitude = np.abs(h) * gains[:, None]
        amplitude[:, self._guard_mask] = self.config.guard_floor

        lsb = self.config.amplitude_lsb
        amplitude = np.round(amplitude / lsb) * lsb
        return amplitude[kept], kept
