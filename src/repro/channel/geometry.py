"""3D geometric primitives for the indoor ray tracer.

The propagation model uses the *image method*: a first-order wall
reflection from transmitter T to receiver R via wall W is equivalent to a
straight ray from the mirror image of T across W's plane to R.  This module
provides the vector algebra, the axis-aligned room model with its six
bounding surfaces, and ray/cylinder intersection used for occupant
shadowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import GeometryError


@dataclass(frozen=True)
class Vec3:
    """An immutable 3D point/vector with the handful of ops the tracer needs."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, k: float) -> "Vec3":
        return Vec3(self.x * k, self.y * k, self.z * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def norm(self) -> float:
        return float(np.sqrt(self.dot(self)))

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    def normalized(self) -> "Vec3":
        n = self.norm()
        if n == 0.0:
            raise GeometryError("cannot normalize the zero vector")
        return Vec3(self.x / n, self.y / n, self.z / n)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=float)

    @classmethod
    def from_array(cls, a: np.ndarray | tuple[float, float, float]) -> "Vec3":
        x, y, z = (float(v) for v in a)
        return cls(x, y, z)


@dataclass(frozen=True)
class WallPlane:
    """An axis-aligned plane ``axis = offset`` bounding the room.

    ``axis`` is 0 for x, 1 for y, 2 for z.  ``material_key`` selects the
    reflection coefficient from :mod:`repro.channel.materials`.
    """

    axis: int
    offset: float
    material_key: str
    name: str

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise GeometryError(f"axis must be 0, 1 or 2, got {self.axis}")

    def mirror(self, p: Vec3) -> Vec3:
        """Mirror a point across this plane (image method)."""
        coords = [p.x, p.y, p.z]
        coords[self.axis] = 2.0 * self.offset - coords[self.axis]
        return Vec3(*coords)


def reflect_point(p: Vec3, plane: WallPlane) -> Vec3:
    """Module-level alias of :meth:`WallPlane.mirror` (public API)."""
    return plane.mirror(p)


@dataclass(frozen=True)
class Room:
    """Axis-aligned box room with material-tagged bounding walls.

    Matches the paper's office: internal plasterboard walls, external
    reinforced-concrete wall, glass windows on one long side (modelled as the
    y = width wall being glass-dominated), concrete floor and plasterboard
    ceiling.
    """

    length_m: float
    width_m: float
    height_m: float

    def __post_init__(self) -> None:
        if min(self.length_m, self.width_m, self.height_m) <= 0:
            raise GeometryError("room dimensions must be positive")

    def contains(self, p: Vec3, tolerance: float = 1e-9) -> bool:
        """True if ``p`` lies inside (or on the boundary of) the room."""
        return (
            -tolerance <= p.x <= self.length_m + tolerance
            and -tolerance <= p.y <= self.width_m + tolerance
            and -tolerance <= p.z <= self.height_m + tolerance
        )

    def walls(self) -> Iterator[WallPlane]:
        """The six bounding surfaces with their materials."""
        yield WallPlane(0, 0.0, "plasterboard", "wall_x0")
        yield WallPlane(0, self.length_m, "plasterboard", "wall_x1")
        yield WallPlane(1, 0.0, "concrete", "wall_y0")
        yield WallPlane(1, self.width_m, "glass", "wall_y1")
        yield WallPlane(2, 0.0, "concrete", "floor")
        yield WallPlane(2, self.height_m, "plasterboard", "ceiling")

    def diagonal_m(self) -> float:
        """Longest straight path inside the room."""
        return float(np.sqrt(self.length_m**2 + self.width_m**2 + self.height_m**2))


def segment_point_distance(a: Vec3, b: Vec3, p: Vec3) -> float:
    """Minimum distance from point ``p`` to the segment ``a-b``.

    Used to decide whether an occupant's body intersects the Fresnel zone of
    a propagation path.
    """
    ab = b - a
    denom = ab.dot(ab)
    if denom == 0.0:
        return p.distance_to(a)
    t = (p - a).dot(ab) / denom
    t = min(1.0, max(0.0, t))
    closest = a + ab * t
    return p.distance_to(closest)


def segment_vertical_cylinder_distance(
    a: Vec3, b: Vec3, center_xy: tuple[float, float], z_range: tuple[float, float]
) -> float:
    """Distance from segment ``a-b`` to a vertical cylinder axis.

    The cylinder axis is the vertical line through ``center_xy`` spanning
    ``z_range``; occupants are modelled as such cylinders.  We approximate by
    sampling points along the axis and taking the min segment-to-point
    distance — adequate because body radii (~0.2 m) are much larger than the
    sampling error at 8 samples.
    """
    cx, cy = center_xy
    z0, z1 = z_range
    if z1 < z0:
        raise GeometryError(f"z_range must be increasing, got {z_range}")
    zs = np.linspace(z0, z1, 8)
    return min(segment_point_distance(a, b, Vec3(cx, cy, float(z))) for z in zs)


def fresnel_radius_m(wavelength_m: float, d1_m: float, d2_m: float) -> float:
    """First Fresnel-zone radius at a point splitting the path into d1, d2.

    ``r = sqrt(lambda * d1 * d2 / (d1 + d2))``.  An obstruction within this
    radius of the direct ray meaningfully attenuates the link — the physical
    basis of WiFi sensing.
    """
    total = d1_m + d2_m
    if total <= 0:
        raise GeometryError("path segments must have positive total length")
    if d1_m < 0 or d2_m < 0:
        raise GeometryError("path segments must be non-negative")
    return float(np.sqrt(wavelength_m * d1_m * d2_m / total))
