"""WiFi CSI physics substrate.

This subpackage replaces the paper's physical testbed (Nexmon-patched
Raspberry Pis observing a 2.4 GHz access point) with a physics-informed
simulator:

* :mod:`repro.channel.subcarriers` — the OFDM subcarrier grid implied by the
  paper's ``d_H = 3.2 * bandwidth`` rule (Section II-A).
* :mod:`repro.channel.geometry` — 3D primitives and image-method reflections.
* :mod:`repro.channel.materials` — reflection coefficients of plasterboard,
  concrete, glass and furniture.
* :mod:`repro.channel.atmosphere` — humidity/temperature-dependent gain.
* :mod:`repro.channel.propagation` — the multipath ray tracer.
* :mod:`repro.channel.fading` — Rician small-scale fading.
* :mod:`repro.channel.csi` — CSI frame/matrix containers.
* :mod:`repro.channel.sniffer` — Nexmon-like receiver front end (AGC,
  noise floor, quantization).
"""

from .subcarriers import SubcarrierGrid
from .geometry import Vec3, Room, reflect_point
from .materials import Material, MATERIALS
from .atmosphere import AtmosphereState, environmental_gain
from .propagation import MultipathChannel, PathComponent, Scatterer
from .fading import RicianFading
from .csi import CSIFrame, CSIMatrix
from .sniffer import NexmonSniffer
from .phase import sanitize_phase, phase_difference, unwrap_phase

__all__ = [
    "SubcarrierGrid",
    "Vec3",
    "Room",
    "reflect_point",
    "Material",
    "MATERIALS",
    "AtmosphereState",
    "environmental_gain",
    "MultipathChannel",
    "PathComponent",
    "Scatterer",
    "RicianFading",
    "CSIFrame",
    "CSIMatrix",
    "NexmonSniffer",
    "sanitize_phase",
    "phase_difference",
    "unwrap_phase",
]
