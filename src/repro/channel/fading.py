"""Small-scale fading: frozen clutter, slow drift, and motion jitter.

The image-method tracer resolves only the strongest specular paths; the
residual diffuse multipath is modelled statistically.  Real indoor links
show three distinct diffuse regimes, and reproducing them separately is
what gives the dataset the temporal structure the paper's evaluation
protocol probes (train on days 1-3, test on day 4 *without retraining*):

1. **Frozen clutter** — the room's higher-order reflections off static
   furniture and walls.  A fixed complex vector per campaign: an empty
   room measured tonight looks like the empty room measured tomorrow.
2. **Slow drift** — a small mean-reverting AR(1) component (cables warm
   up, humidity swells wood, doors settle).  A few percent of the clutter
   power with an hours-scale time constant.
3. **Motion jitter** — scattering off moving bodies.  Fast (tens of
   milliseconds) and only present when occupants move; this is why
   occupied-room CSI is "alive" frame to frame while empty-room CSI is
   quasi-static, which non-linear classifiers exploit (Table IV).

The total diffuse power in the static case is set by the Rician K-factor;
``drift_fraction`` splits it between (1) and (2).  Mobility adds component
(3) with power ``mobility * mobility_power_boost`` times the static
diffuse power.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ChannelError


class RicianFading:
    """Stateful three-component diffuse fading generator.

    Parameters
    ----------
    n_subcarriers:
        Length of the CSI vector.
    k_factor_db:
        Rician K-factor: specular-to-diffuse power ratio of the *static*
        room.  12 dB is typical of a strong indoor LoS link.
    drift_fraction:
        Share of the static diffuse power assigned to the slow AR(1) drift
        (the rest is frozen clutter).
    drift_tau_s:
        Mean-reversion time constant of the drift component.
    moving_coherence_time_s:
        Coherence time of the motion-jitter component.
    mobility_power_boost:
        Motion-jitter power at mobility 1.0, relative to the static
        diffuse power.
    rng:
        Source of randomness (inject for reproducibility).
    """

    def __init__(
        self,
        n_subcarriers: int,
        k_factor_db: float = 12.0,
        drift_fraction: float = 0.03,
        drift_tau_s: float = 1.0 * 3600.0,
        moving_coherence_time_s: float = 0.05,
        mobility_power_boost: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_subcarriers < 1:
            raise ChannelError("n_subcarriers must be >= 1")
        if not 0.0 <= drift_fraction <= 1.0:
            raise ChannelError("drift_fraction must be within [0, 1]")
        if drift_tau_s <= 0 or moving_coherence_time_s <= 0:
            raise ChannelError("time constants must be positive")
        if mobility_power_boost < 0:
            raise ChannelError("mobility_power_boost must be >= 0")
        self.n_subcarriers = n_subcarriers
        self.k_linear = 10.0 ** (k_factor_db / 10.0)
        self.drift_fraction = drift_fraction
        self.drift_tau_s = drift_tau_s
        self.moving_coherence_time_s = moving_coherence_time_s
        self.mobility_power_boost = mobility_power_boost
        self._rng = rng or np.random.default_rng()
        self._clutter = self._draw()  # frozen for the campaign
        self._drift = self._draw()
        self._motion = self._draw()

    def _draw(self) -> np.ndarray:
        re = self._rng.normal(0.0, np.sqrt(0.5), self.n_subcarriers)
        im = self._rng.normal(0.0, np.sqrt(0.5), self.n_subcarriers)
        return re + 1j * im

    def diffuse_sigma(self, specular_power: float) -> float:
        """RMS amplitude of the total static diffuse field."""
        if specular_power < 0:
            raise ChannelError("specular_power must be >= 0")
        return float(np.sqrt(specular_power / self.k_linear))

    @staticmethod
    def _ar1_step(state: np.ndarray, innovation: np.ndarray, dt_s: float, tau_s: float) -> np.ndarray:
        rho = float(np.exp(-dt_s / tau_s))
        return rho * state + np.sqrt(max(1.0 - rho * rho, 0.0)) * innovation

    def step(self, dt_s: float, mobility: float = 0.0) -> np.ndarray:
        """Advance drift and motion states; return the combined unit-power
        diffuse field for the current mobility level.

        The returned field has unit power at mobility 0 and
        ``1 + mobility * mobility_power_boost`` at higher mobility.
        """
        if dt_s < 0:
            raise ChannelError("dt_s must be >= 0")
        if not 0.0 <= mobility <= 1.0:
            raise ChannelError("mobility must be within [0, 1]")
        self._drift = self._ar1_step(self._drift, self._draw(), dt_s, self.drift_tau_s)
        self._motion = self._ar1_step(
            self._motion, self._draw(), dt_s, self.moving_coherence_time_s
        )
        static = (
            np.sqrt(1.0 - self.drift_fraction) * self._clutter
            + np.sqrt(self.drift_fraction) * self._drift
        )
        motion_amp = np.sqrt(mobility * self.mobility_power_boost)
        return static + motion_amp * self._motion

    def apply(self, specular: np.ndarray, dt_s: float, mobility: float = 0.0) -> np.ndarray:
        """Return the faded channel: specular field plus the diffuse field."""
        specular = np.asarray(specular, dtype=complex)
        if specular.shape != (self.n_subcarriers,):
            raise ChannelError(
                f"specular shape {specular.shape} != ({self.n_subcarriers},)"
            )
        power = float(np.mean(np.abs(specular) ** 2))
        sigma = self.diffuse_sigma(power)
        return specular + sigma * self.step(dt_s, mobility)
