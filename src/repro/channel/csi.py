"""CSI containers.

A :class:`CSIFrame` is one receive event: the complex channel estimate for
every subcarrier at one timestamp.  A :class:`CSIMatrix` is a time-ordered
stack of frames — the raw material of every experiment in the paper.

The paper uses only the amplitude ``|H|`` (Section II-A: "In this paper, we
use only the information contained in the CSI amplitude"), so both
containers expose cheap amplitude views while retaining the complex data
for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ShapeError


@dataclass(frozen=True)
class CSIFrame:
    """A single CSI estimate.

    Parameters
    ----------
    timestamp_s:
        Seconds since campaign start.
    h:
        Complex channel vector of shape ``(n_subcarriers,)``.
    """

    timestamp_s: float
    h: np.ndarray

    def __post_init__(self) -> None:
        h = np.asarray(self.h)
        if h.ndim != 1:
            raise ShapeError(f"CSI frame must be 1-D, got shape {h.shape}")
        if h.size == 0:
            raise ShapeError("CSI frame must contain at least one subcarrier")
        object.__setattr__(self, "h", np.ascontiguousarray(h, dtype=complex))

    @property
    def n_subcarriers(self) -> int:
        return int(self.h.size)

    @property
    def amplitude(self) -> np.ndarray:
        """``|H|`` per subcarrier — the feature the paper's models use."""
        return np.abs(self.h)

    @property
    def phase(self) -> np.ndarray:
        """Phase per subcarrier (kept for completeness; unused by the paper)."""
        return np.angle(self.h)

    def power_db(self) -> np.ndarray:
        """Per-subcarrier power in dB, floored to avoid log(0)."""
        p = np.abs(self.h) ** 2
        return 10.0 * np.log10(np.maximum(p, 1e-30))


class CSIMatrix:
    """Time-ordered stack of CSI frames with array-like access.

    Stored as a ``(n_frames, n_subcarriers)`` complex array plus a
    ``(n_frames,)`` float timestamp vector.  Construction validates
    monotonically non-decreasing timestamps — out-of-order CSI would break
    every temporal split downstream.
    """

    def __init__(self, timestamps_s: np.ndarray, h: np.ndarray) -> None:
        timestamps_s = np.ascontiguousarray(timestamps_s, dtype=float)
        h = np.ascontiguousarray(h, dtype=complex)
        if timestamps_s.ndim != 1:
            raise ShapeError("timestamps must be 1-D")
        if h.ndim != 2:
            raise ShapeError("h must be 2-D (frames x subcarriers)")
        if h.shape[0] != timestamps_s.shape[0]:
            raise ShapeError(
                f"{h.shape[0]} frames but {timestamps_s.shape[0]} timestamps"
            )
        if timestamps_s.size > 1 and np.any(np.diff(timestamps_s) < 0):
            raise ShapeError("timestamps must be monotonically non-decreasing")
        self._t = timestamps_s
        self._h = h

    @classmethod
    def from_frames(cls, frames: Sequence[CSIFrame]) -> "CSIMatrix":
        if not frames:
            raise ShapeError("cannot build a CSIMatrix from zero frames")
        widths = {f.n_subcarriers for f in frames}
        if len(widths) != 1:
            raise ShapeError(f"inconsistent subcarrier counts: {sorted(widths)}")
        t = np.array([f.timestamp_s for f in frames], dtype=float)
        h = np.stack([f.h for f in frames])
        return cls(t, h)

    def __len__(self) -> int:
        return int(self._t.size)

    def __iter__(self) -> Iterator[CSIFrame]:
        for i in range(len(self)):
            yield CSIFrame(float(self._t[i]), self._h[i])

    def __getitem__(self, index: int) -> CSIFrame:
        return CSIFrame(float(self._t[index]), self._h[index])

    @property
    def timestamps_s(self) -> np.ndarray:
        return self._t

    @property
    def h(self) -> np.ndarray:
        return self._h

    @property
    def n_subcarriers(self) -> int:
        return int(self._h.shape[1])

    @property
    def amplitude(self) -> np.ndarray:
        """Amplitude matrix, shape ``(n_frames, n_subcarriers)``."""
        return np.abs(self._h)

    def subcarrier_series(self, index: int) -> np.ndarray:
        """The amplitude time series S(x, t) of one subcarrier (Sec. IV-B)."""
        if not 0 <= index < self.n_subcarriers:
            raise ShapeError(
                f"subcarrier index {index} outside [0, {self.n_subcarriers})"
            )
        return np.abs(self._h[:, index])

    def window(self, t0_s: float, t1_s: float) -> "CSIMatrix":
        """Frames with ``t0 <= t < t1`` (temporal slicing for folds)."""
        if t1_s < t0_s:
            raise ShapeError(f"window bounds inverted: [{t0_s}, {t1_s})")
        mask = (self._t >= t0_s) & (self._t < t1_s)
        if not np.any(mask):
            raise ShapeError(f"window [{t0_s}, {t1_s}) contains no frames")
        return CSIMatrix(self._t[mask], self._h[mask])
