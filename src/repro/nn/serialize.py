"""Model persistence.

State dicts are saved as ``.npz`` archives with a tiny JSON sidecar of
metadata (parameter names and shapes), which is enough to rebuild any of
the library's MLPs deterministically and to verify integrity on load.

Writes are crash-safe: the archive is written to a temporary file in the
destination directory and atomically renamed over the final path, so a
crash mid-write can never leave a truncated archive under the real name.
The returned path is always the normalized ``*.npz`` path actually
written (``np.savez_compressed`` silently appends the suffix, which used
to make the returned path wrong for suffix-less arguments).
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from ..exceptions import SerializationError
from .modules import Module

#: Key under which the metadata JSON is stored inside the archive.
_META_KEY = "__meta__"


def normalize_npz_path(path: str | Path) -> Path:
    """The path numpy will actually write: ensure a ``.npz`` suffix."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def atomic_savez(path: str | Path, payload: dict[str, np.ndarray]) -> Path:
    """Write an ``.npz`` archive atomically; returns the normalized path.

    The payload lands in a temp file in the same directory (same
    filesystem, so the final ``os.replace`` is atomic); passing the open
    file object to numpy also stops it appending a second suffix.
    """
    path = normalize_npz_path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def encode_meta(meta: dict) -> np.ndarray:
    """Pack a JSON-serializable dict into an npz-storable byte array."""
    return np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)


def decode_meta(array: np.ndarray, path: Path) -> dict:
    """Unpack :func:`encode_meta`; corrupt JSON becomes SerializationError."""
    try:
        return json.loads(bytes(array).decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SerializationError(f"{path}: corrupt metadata ({error})") from error


def open_archive(path: str | Path):
    """``np.load`` with truncation/corruption mapped to SerializationError."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such model file: {path}")
    try:
        return np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise SerializationError(
            f"{path} is not a readable archive (truncated or corrupt?)"
        ) from error


def save_state_dict(model: Module, path: str | Path) -> Path:
    """Write a model's parameters (and shape manifest) to ``path``.

    Returns the normalized ``*.npz`` path actually written; the write is
    atomic (temp file + rename), so readers never observe a partial file.
    """
    state = model.state_dict()
    if not state:
        raise SerializationError("model has no parameters to save")
    meta = {name: list(array.shape) for name, array in state.items()}
    payload = {name: array for name, array in state.items()}
    payload[_META_KEY] = encode_meta(meta)
    return atomic_savez(path, payload)


def load_state_dict(model: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_state_dict` into ``model``."""
    path = Path(path)
    with open_archive(path) as archive:
        if _META_KEY not in archive:
            raise SerializationError(f"{path} is not a repro model archive")
        meta = decode_meta(archive[_META_KEY], path)
        state = {name: archive[name] for name in archive.files if name != _META_KEY}
    for name, shape in meta.items():
        if name not in state:
            raise SerializationError(f"{path} manifest lists {name!r} but array missing")
        if list(state[name].shape) != shape:
            raise SerializationError(
                f"{path}: array {name!r} shape {state[name].shape} != manifest {shape}"
            )
    model.load_state_dict(state)
    return model
