"""Model persistence.

State dicts are saved as ``.npz`` archives with a tiny JSON sidecar of
metadata (parameter names and shapes), which is enough to rebuild any of
the library's MLPs deterministically and to verify integrity on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import SerializationError
from .modules import Module

#: Key under which the metadata JSON is stored inside the archive.
_META_KEY = "__meta__"


def save_state_dict(model: Module, path: str | Path) -> Path:
    """Write a model's parameters (and shape manifest) to ``path``."""
    path = Path(path)
    state = model.state_dict()
    if not state:
        raise SerializationError("model has no parameters to save")
    meta = {name: list(array.shape) for name, array in state.items()}
    payload = {name: array for name, array in state.items()}
    payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def load_state_dict(model: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_state_dict` into ``model``."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such model file: {path}")
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise SerializationError(f"{path} is not a repro model archive")
        meta = json.loads(bytes(archive[_META_KEY]).decode())
        state = {name: archive[name] for name in archive.files if name != _META_KEY}
    for name, shape in meta.items():
        if name not in state:
            raise SerializationError(f"{path} manifest lists {name!r} but array missing")
        if list(state[name].shape) != shape:
            raise SerializationError(
                f"{path}: array {name!r} shape {state[name].shape} != manifest {shape}"
            )
    model.load_state_dict(state)
    return model
