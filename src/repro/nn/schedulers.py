"""Learning-rate schedulers.

The paper trains at a fixed 5e-3 for 10 epochs; these schedulers support
the ablations that vary that recipe (and longer extension-task runs,
where a decaying rate measurably stabilises the final epochs).  Each
scheduler wraps an :class:`~repro.nn.optim.Optimizer` and mutates its
``lr`` on :meth:`step` (call once per epoch).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .optim import Optimizer


class Scheduler:
    """Base: stores the optimizer and its initial rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        if lr <= 0:
            raise ConfigurationError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr


class StepLR(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 5, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ConfigurationError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 1e-5) -> None:
        if t_max < 1:
            raise ConfigurationError("t_max must be >= 1")
        if min_lr <= 0:
            raise ConfigurationError("min_lr must be positive")
        super().__init__(optimizer)
        self.t_max = t_max
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )


class ExponentialLR(Scheduler):
    """Multiply the rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.9) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.epoch
