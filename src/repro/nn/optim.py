"""Optimisers: SGD (with momentum), Adam, and AdamW.

The paper trains "via adaptive mini-batch gradient descent, with a weight
decay strategy [23]" — reference [23] is Loshchilov & Hutter's *Decoupled
Weight Decay Regularization*, i.e. AdamW.  :class:`AdamW` therefore applies
decay directly to the weights (not through the gradient), while
:class:`Adam` implements the classic coupled L2 variant for ablations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import ConfigurationError
from .tensor import Tensor


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  The paper cites exploding gradients as
    one motivation for its weight-decay strategy; clipping is the other
    standard guard, used by the longer extension-task runs.
    """
    if max_norm <= 0:
        raise ConfigurationError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base: parameter bookkeeping, ``zero_grad`` and the step contract."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------ state dict

    def state_dict(self) -> dict[str, object]:
        """Snapshot of the optimizer's mutable state (for checkpointing).

        Array-valued entries (momentum buffers, Adam moments) are lists of
        arrays aligned with :attr:`parameters`; everything else is a plain
        scalar.  Subclasses extend the dict rather than replacing it.
        """
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])  # type: ignore[arg-type]

    def _check_aligned(self, name: str, arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Validate per-parameter buffers against the current parameters."""
        if len(arrays) != len(self.parameters):
            raise ConfigurationError(
                f"optimizer state {name!r} has {len(arrays)} buffers for "
                f"{len(self.parameters)} parameters"
            )
        out: list[np.ndarray] = []
        for i, (array, p) in enumerate(zip(arrays, self.parameters)):
            array = np.asarray(array, dtype=float)
            if array.shape != p.data.shape:
                raise ConfigurationError(
                    f"optimizer state {name!r}[{i}] has shape {array.shape}, "
                    f"parameter has {p.data.shape}"
                )
            out.append(array.copy())
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with optional Nesterov-free momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        self._velocity = self._check_aligned("velocity", list(state["velocity"]))  # type: ignore[arg-type]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with *coupled* L2 regularisation (decay added to the gradient)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def state_dict(self) -> dict[str, object]:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = int(self._t)
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        self._m = self._check_aligned("m", list(state["m"]))  # type: ignore[arg-type]
        self._v = self._check_aligned("v", list(state["v"]))  # type: ignore[arg-type]
        self._t = int(state["t"])  # type: ignore[arg-type]

    def _decayed_gradient(self, p: Tensor) -> np.ndarray:
        assert p.grad is not None
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            g = self._decayed_gradient(p)
            self._m[i] = b1 * self._m[i] + (1.0 - b1) * g
            self._v[i] = b2 * self._v[i] + (1.0 - b2) * g * g
            m_hat = self._m[i] / (1.0 - b1**self._t)
            v_hat = self._v[i] / (1.0 - b2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with *decoupled* weight decay (Loshchilov & Hutter, paper [23]).

    The decay is applied multiplicatively to the weights themselves, so it
    does not interact with the adaptive second-moment scaling — the property
    the reference paper shows matters for generalisation.
    """

    def _decayed_gradient(self, p: Tensor) -> np.ndarray:
        assert p.grad is not None
        return p.grad  # decay handled in step(), not through the gradient

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data = p.data * (1.0 - self.lr * self.weight_decay)
        super().step()
