"""Loss functions.

``bce_loss`` is the paper's Eq. 4 (mean binary cross-entropy over the
batch); ``bce_with_logits_loss`` is the numerically stable fusion used in
training (identical value, no log-of-sigmoid underflow).  ``mse_loss``
drives the humidity/temperature regression of Section V-D and ``l1_loss``
matches the MAE metric (Eq. 2) when an L1 training objective is wanted.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .tensor import Tensor


def _check_pair(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )


def bce_loss(probabilities: Tensor, targets: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on probabilities (paper Eq. 4).

    ``BCE(y, p) = -mean(y log p + (1-y) log(1-p))`` with the inputs clipped
    to ``[eps, 1-eps]`` for stability.
    """
    _check_pair(probabilities, targets)
    p = probabilities.clip(eps, 1.0 - eps)
    term = targets * p.log() + (1.0 - targets) * (1.0 - p).log()
    return -term.mean()


def bce_with_logits_loss(logits: Tensor, targets: Tensor) -> Tensor:
    """Numerically stable BCE on raw logits.

    Uses the identity ``BCE(sigmoid(z), y) = max(z,0) - z*y + log(1+e^{-|z|})``.
    """
    _check_pair(logits, targets)
    relu_z = logits.relu()
    abs_z = logits.abs()
    softplus = (1.0 + (-abs_z).exp()).log()
    return (relu_z - logits * targets + softplus).mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (the Section V-D regression objective)."""
    _check_pair(prediction, target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error as a differentiable training loss."""
    _check_pair(prediction, target)
    return (prediction - target).abs().mean()


def cross_entropy_loss(logits: Tensor, onehot_targets: Tensor) -> Tensor:
    """Softmax cross-entropy on raw logits with one-hot targets.

    ``CE = -mean_n sum_c y_nc log softmax(z)_nc`` computed through a
    numerically stable log-softmax (max-shifted).  Used by the
    multi-class heads (occupant counting, activity recognition) that
    extend the paper's binary task.
    """
    _check_pair(logits, onehot_targets)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (n, classes), got {logits.shape}")
    shifted = logits - Tensor(logits.data.max(axis=1, keepdims=True))
    log_norm = shifted.exp().sum(axis=1, keepdims=True).log()
    log_softmax = shifted - log_norm
    return -(onehot_targets * log_softmax).sum(axis=1).mean()


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels to a one-hot float matrix, shape ``(n, n_classes)``."""
    labels = np.asarray(labels, dtype=int).ravel()
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ShapeError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.size, n_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out


def bce_value(probabilities: np.ndarray, targets: np.ndarray, eps: float = 1e-7) -> float:
    """Plain-numpy BCE for logging paths that never need gradients."""
    p = np.clip(np.asarray(probabilities, dtype=float), eps, 1.0 - eps)
    y = np.asarray(targets, dtype=float)
    if p.shape != y.shape:
        raise ShapeError(f"shapes differ: {p.shape} vs {y.shape}")
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))
