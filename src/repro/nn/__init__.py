"""From-scratch deep learning framework (numpy backend).

The paper trains its MLP with PyTorch Lightning; this environment has no
deep-learning stack, so :mod:`repro.nn` implements the required subset from
first principles:

* :mod:`repro.nn.tensor` — reverse-mode autograd on numpy arrays;
* :mod:`repro.nn.functional` — differentiable primitives;
* :mod:`repro.nn.init` — Kaiming / Xavier initialisation;
* :mod:`repro.nn.modules` — ``Module``, ``Linear``, activations,
  ``Sequential`` and the paper's MLP building blocks;
* :mod:`repro.nn.losses` — BCE (paper Eq. 4), BCE-with-logits, MSE, L1;
* :mod:`repro.nn.optim` — SGD, Adam and AdamW (decoupled weight decay,
  the paper's reference [23]);
* :mod:`repro.nn.train` — mini-batch trainer with loss/metric histories;
* :mod:`repro.nn.serialize` — crash-safe (atomic) state-dict save/load;
* :mod:`repro.nn.checkpoint` — last-k/best training checkpoints,
  ``Trainer.fit(resume_from=...)`` support and the divergence guard.

Gradients are validated against finite differences in the test suite.
"""

from .tensor import Tensor, no_grad
from .modules import (
    Module,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    Dropout,
    BatchNorm1d,
    Sequential,
)
from .losses import bce_loss, bce_with_logits_loss, mse_loss, l1_loss
from .optim import SGD, Adam, AdamW, clip_grad_norm
from .schedulers import StepLR, CosineAnnealingLR, ExponentialLR
from .train import Trainer, TrainerCallback, TrainingHistory
from .serialize import save_state_dict, load_state_dict
from .checkpoint import (
    Checkpoint,
    CheckpointCallback,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "bce_loss",
    "bce_with_logits_loss",
    "mse_loss",
    "l1_loss",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "StepLR",
    "CosineAnnealingLR",
    "ExponentialLR",
    "Trainer",
    "TrainerCallback",
    "TrainingHistory",
    "save_state_dict",
    "load_state_dict",
    "Checkpoint",
    "CheckpointCallback",
    "save_checkpoint",
    "load_checkpoint",
]
