"""Crash-safe training checkpoints.

A checkpoint is one atomic ``.npz`` archive holding everything needed to
continue a :class:`~repro.nn.train.Trainer` run bit-for-bit: model
parameters, optimizer state (Adam moments, momentum buffers, step count,
learning rate), the shuffle RNG's bit-generator state, the 0-based epoch
index it was taken after, and the full
:class:`~repro.nn.train.TrainingHistory` so far.  Because the shuffle
RNG resumes from its saved state, a run killed after epoch ``k`` and
resumed via ``Trainer.fit(resume_from=...)`` replays exactly the batch
order the uninterrupted run would have used — final parameters match to
floating-point identity, not just "roughly converged".

:class:`CheckpointCallback` plugs this into the training loop: atomic
last-``k`` checkpoints every epoch, a separate best-validation
checkpoint, and a divergence guard that rolls the model back to the last
good checkpoint (instead of leaving NaN-poisoned weights) and stops the
run when a loss goes non-finite or explodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ConfigurationError, SerializationError
from .modules import Module
from .optim import Optimizer
from .serialize import atomic_savez, decode_meta, encode_meta, open_archive
from .train import TrainerCallback, TrainingHistory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .train import Trainer

#: Format tag stored in every checkpoint's metadata.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

_META_KEY = "__meta__"


@dataclass
class Checkpoint:
    """A loaded checkpoint, ready to restore into a model/optimizer/RNG."""

    path: Path
    #: 0-based index of the last completed epoch.
    epoch: int
    history: TrainingHistory
    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, object]
    #: ``Generator.bit_generator.state`` of the trainer's shuffle RNG.
    rng_state: dict | None

    def restore(
        self,
        model: Module | None = None,
        optimizer: Optimizer | None = None,
        rng: np.random.Generator | None = None,
    ) -> "Checkpoint":
        """Load the saved state into any subset of (model, optimizer, rng).

        The RNG must use the same bit generator the checkpoint was taken
        from (the library default is PCG64); a mismatch raises
        :class:`~repro.exceptions.SerializationError`.
        """
        if model is not None:
            model.load_state_dict(self.model_state)
        if optimizer is not None:
            optimizer.load_state_dict(self.optimizer_state)
        if rng is not None:
            if self.rng_state is None:
                raise SerializationError(
                    f"{self.path} carries no RNG state to restore"
                )
            if rng.bit_generator.state["bit_generator"] != self.rng_state["bit_generator"]:
                raise SerializationError(
                    f"{self.path} was taken from a "
                    f"{self.rng_state['bit_generator']} generator, cannot restore "
                    f"into {rng.bit_generator.state['bit_generator']}"
                )
            rng.bit_generator.state = self.rng_state
        return self


def save_checkpoint(
    path: str | Path,
    *,
    model: Module,
    optimizer: Optimizer,
    epoch: int,
    history: TrainingHistory,
    rng: np.random.Generator | None = None,
) -> Path:
    """Atomically write one checkpoint; returns the normalized path."""
    model_state = model.state_dict()
    if not model_state:
        raise SerializationError("model has no parameters to checkpoint")
    payload: dict[str, np.ndarray] = {
        f"model/{name}": array for name, array in model_state.items()
    }
    optim_meta: dict[str, object] = {}
    for key, value in optimizer.state_dict().items():
        if isinstance(value, list) and all(isinstance(v, np.ndarray) for v in value):
            for i, array in enumerate(value):
                payload[f"optim/{key}/{i}"] = array
            optim_meta[key] = {"__arrays__": len(value)}
        else:
            optim_meta[key] = value
    meta = {
        "format": CHECKPOINT_FORMAT,
        "epoch": int(epoch),
        "history": {
            "train_loss": list(map(float, history.train_loss)),
            "val_loss": list(map(float, history.val_loss)),
            "val_metric": list(map(float, history.val_metric)),
        },
        "optim": optim_meta,
        "rng_state": None if rng is None else rng.bit_generator.state,
        "model": {name: list(array.shape) for name, array in model_state.items()},
    }
    payload[_META_KEY] = encode_meta(meta)
    return atomic_savez(path, payload)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    with open_archive(path) as archive:
        if _META_KEY not in archive:
            raise SerializationError(f"{path} is not a repro checkpoint archive")
        meta = decode_meta(archive[_META_KEY], path)
        arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise SerializationError(
            f"{path}: unknown checkpoint format {meta.get('format')!r}"
        )
    model_state: dict[str, np.ndarray] = {}
    for name, shape in meta["model"].items():
        key = f"model/{name}"
        if key not in arrays:
            raise SerializationError(f"{path} manifest lists {name!r} but array missing")
        if list(arrays[key].shape) != shape:
            raise SerializationError(
                f"{path}: array {name!r} shape {arrays[key].shape} != manifest {shape}"
            )
        model_state[name] = arrays[key]
    optimizer_state: dict[str, object] = {}
    for key, value in meta["optim"].items():
        if isinstance(value, dict) and "__arrays__" in value:
            optimizer_state[key] = [
                arrays[f"optim/{key}/{i}"] for i in range(int(value["__arrays__"]))
            ]
        else:
            optimizer_state[key] = value
    history = TrainingHistory(
        train_loss=list(meta["history"]["train_loss"]),
        val_loss=list(meta["history"]["val_loss"]),
        val_metric=list(meta["history"]["val_metric"]),
    )
    return Checkpoint(
        path=path,
        epoch=int(meta["epoch"]),
        history=history,
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=meta["rng_state"],
    )


class CheckpointCallback(TrainerCallback):
    """Last-``k`` + best-validation checkpoints with a divergence guard.

    Attach to :meth:`Trainer.fit` via ``callbacks=[...]``.  After every
    epoch it atomically writes ``epoch-NNNN.npz`` into ``directory`` and
    prunes to the newest ``keep_last``; when the monitored log value
    (``val_loss`` when present, else ``train_loss``) improves it also
    rewrites ``best.npz``.

    The guard watches every reported loss: if one goes non-finite — or
    exceeds ``divergence_factor`` times the best monitored value seen,
    when a factor is set — the callback restores the newest checkpoint
    into the trainer's model, optimizer and RNG (so the weights are the
    last *good* ones, not the poisoned ones) and stops the run.  The
    returned history still shows the diverged epoch; the model does not.

    Parameters
    ----------
    trainer:
        The trainer being observed; the callback reads its model,
        optimizer, shuffle RNG and in-progress history.
    directory:
        Where checkpoints land (created if missing).
    keep_last:
        How many epoch checkpoints to retain.
    monitor:
        Log key watched for ``best.npz`` (falls back to ``train_loss``
        when the key is absent, e.g. no validation data).
    guard:
        Enable the non-finite/divergence rollback.
    divergence_factor:
        Optional explosion threshold relative to the best monitored
        value (e.g. ``1e3``); ``None`` guards against non-finite losses
        only.
    observer:
        Optional event sink (duck-typed
        :class:`~repro.obs.observer.Observer`; this module never imports
        :mod:`repro.obs`).  When live, every save lands in the structured
        event log as ``checkpoint.saved`` / ``checkpoint.best`` and a
        divergence rollback as ``checkpoint.rollback``, each stamped with
        the epoch index as its stream time and carrying *filenames* only
        — never absolute paths, which would differ across machines and
        break byte-identical dump comparison.
    """

    #: Filename of the best-validation checkpoint inside ``directory``.
    BEST_NAME = "best.npz"

    def __init__(
        self,
        trainer: "Trainer",
        directory: str | Path,
        *,
        keep_last: int = 3,
        monitor: str = "val_loss",
        guard: bool = True,
        divergence_factor: float | None = None,
        observer=None,
    ) -> None:
        if keep_last < 1:
            raise ConfigurationError("keep_last must be >= 1")
        if divergence_factor is not None and divergence_factor <= 1:
            raise ConfigurationError("divergence_factor must be > 1 (or None)")
        self.trainer = trainer
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.monitor = monitor
        self.guard = guard
        self.divergence_factor = divergence_factor
        self.observer = observer
        self.saved: list[Path] = []
        self.best_path: Path | None = None
        self.rollbacks = 0
        self.restored_from: Path | None = None
        self._best = np.inf

    def _event(self, kind: str, epoch: int, **data) -> None:
        observer = self.observer
        if observer is not None and observer.enabled:
            observer.emit(kind, t_s=float(epoch), **data)

    # ----------------------------------------------------------------- guard

    def _diverged(self, logs: dict[str, float]) -> bool:
        losses = [logs["train_loss"]] + (
            [logs["val_loss"]] if "val_loss" in logs else []
        )
        if any(not np.isfinite(loss) for loss in losses):
            return True
        if self.divergence_factor is not None and np.isfinite(self._best):
            monitored = logs.get(self.monitor, logs["train_loss"])
            return monitored > self.divergence_factor * self._best
        return False

    def _rollback(self, epoch: int) -> bool:
        self.rollbacks += 1
        if self.saved:
            self.restored_from = self.saved[-1]
            load_checkpoint(self.restored_from).restore(
                model=self.trainer.model,
                optimizer=self.trainer.optimizer,
                rng=self.trainer._rng,
            )
        self._event(
            "checkpoint.rollback", epoch,
            restored_from=None if self.restored_from is None else self.restored_from.name,
            rollbacks=self.rollbacks,
        )
        return True  # stop the run

    # -------------------------------------------------------------- callback

    def on_epoch_end(self, epoch: int, logs: dict[str, float]) -> bool | None:
        if self.guard and self._diverged(logs):
            return self._rollback(epoch)
        history = self.trainer.history
        if history is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                "CheckpointCallback must be attached to Trainer.fit(callbacks=...)"
            )
        path = save_checkpoint(
            self.directory / f"epoch-{epoch:04d}.npz",
            model=self.trainer.model,
            optimizer=self.trainer.optimizer,
            epoch=epoch,
            history=history,
            rng=self.trainer._rng,
        )
        self.saved.append(path)
        self._event("checkpoint.saved", epoch, file=path.name)
        while len(self.saved) > self.keep_last:
            stale = self.saved.pop(0)
            stale.unlink(missing_ok=True)
        monitored = logs.get(self.monitor, logs["train_loss"])
        if monitored < self._best:
            self._best = float(monitored)
            self.best_path = save_checkpoint(
                self.directory / self.BEST_NAME,
                model=self.trainer.model,
                optimizer=self.trainer.optimizer,
                epoch=epoch,
                history=history,
                rng=self.trainer._rng,
            )
            self._event(
                "checkpoint.best", epoch,
                file=self.BEST_NAME, monitored=float(monitored),
            )
        return None

    @property
    def latest(self) -> Path | None:
        """The newest epoch checkpoint on disk (resume target)."""
        return self.saved[-1] if self.saved else None
