"""Functional (stateless) views of the differentiable primitives.

Thin wrappers over :class:`~repro.nn.tensor.Tensor` methods so code can be
written in the familiar ``F.relu(x)`` style and so the autograd tests can
enumerate every op through one namespace.
"""

from __future__ import annotations

from .tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, elementwise ``max(x, 0)``."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic function ``1 / (1 + e^-x)``."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    return x.exp()


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm (raises on non-positive input)."""
    return x.log()


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight (+ bias)``."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis if axis >= 0 else x.ndim + axis, keepdims=True)


def mean(x: Tensor) -> Tensor:
    """Scalar mean of all elements."""
    return x.mean()
