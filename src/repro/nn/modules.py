"""Neural network modules.

A minimal-but-complete module system: :class:`Module` provides parameter
discovery, train/eval mode and state dicts; :class:`Linear`,
activation wrappers, :class:`Dropout` and :class:`Sequential` compose into
arbitrary MLPs.  The paper's network (Section IV-B) is a
``Sequential`` of four ``Linear`` layers with ReLU between them — built by
:func:`repro.core.model_zoo.build_paper_mlp`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .init import get_initializer
from .tensor import Tensor, grad_enabled


class Module:
    """Base class: parameter registry, modes, and state-dict plumbing."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # ------------------------------------------------------------ parameters

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors, depth-first through child modules."""
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """(name, tensor) pairs with dotted paths, stable across calls."""
        for name, value in self.__dict__.items():
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{i}.")

    def n_parameters(self) -> int:
        """Total trainable scalar count (the paper reports 77,881)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ----------------------------------------------------------------- modes

    def train(self) -> "Module":
        """Switch to training mode (enables dropout etc.)."""
        self.training = True
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.train()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train()
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        self.training = False
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.eval()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.eval()
        return self

    # ------------------------------------------------------------- state dict

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every named parameter's data."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """In-place load; raises on missing/mismatched entries."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ConfigurationError(
                f"state dict mismatch; missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name], dtype=float)
            if value.shape != p.data.shape:
                raise ShapeError(
                    f"parameter {name!r} has shape {p.data.shape}, "
                    f"state provides {value.shape}"
                )
            p.data = value.copy()


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    Weight shape is ``(in_features, out_features)`` so forward is a plain
    row-major matmul; parameter count is ``in*out + out``, matching the
    per-layer numbers the paper reports (e.g. 64*128+128 = 8,320).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "kaiming_uniform",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("features must be >= 1")
        rng = rng or np.random.default_rng()
        initializer = get_initializer(init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(initializer(in_features, out_features, rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}->{self.out_features}) got input {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Logistic activation (the paper's output squashing)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0 or not grad_enabled():
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(float) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class BatchNorm1d(Module):
    """Batch normalisation over feature columns.

    Training mode normalises each feature by the batch statistics and
    updates exponential running estimates; eval mode uses the running
    estimates, so single-sample inference is deterministic.  The affine
    ``gamma``/``beta`` parameters are trainable.
    """

    def __init__(self, n_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if n_features < 1:
            raise ConfigurationError("n_features must be >= 1")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError("momentum must be in (0, 1]")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.n_features = n_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(n_features), requires_grad=True)
        self.beta = Tensor(np.zeros(n_features), requires_grad=True)
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ShapeError(f"BatchNorm1d({self.n_features}) got input {x.shape}")
        if self.training and grad_enabled():
            mean = x.data.mean(axis=0)
            var = x.data.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        scale = 1.0 / np.sqrt(var + self.eps)
        # Normalisation constants are treated as data (no gradient through
        # the batch statistics — the "frozen statistics" simplification,
        # adequate for the shallow nets here and exact in eval mode).
        normalized = (x - Tensor(mean)) * Tensor(scale)
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.n_features})"


class _LayerList(list):
    """Layer container that invalidates the owner's parameter cache.

    ``Sequential.parameters()`` memoizes its parameter walk; any direct
    mutation of the layer stack (``model.layers.append(...)``, item
    replacement, ``del``) must drop that cache or the optimizer keeps
    training a stale tensor set.  Every mutating ``list`` method is
    overridden to notify the owning module.
    """

    __slots__ = ("_owner",)

    def __init__(self, layers, owner) -> None:
        super().__init__(layers)
        self._owner = owner

    def _invalidate(self) -> None:
        # getattr: unpickling/deepcopy may append items before _owner is
        # restored; a not-yet-owned list has no cache to drop.
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner._param_cache = None

    def append(self, item) -> None:
        super().append(item)
        self._invalidate()

    def extend(self, items) -> None:
        super().extend(items)
        self._invalidate()

    def insert(self, index, item) -> None:
        super().insert(index, item)
        self._invalidate()

    def remove(self, item) -> None:
        super().remove(item)
        self._invalidate()

    def pop(self, index=-1):
        item = super().pop(index)
        self._invalidate()
        return item

    def clear(self) -> None:
        super().clear()
        self._invalidate()

    def __setitem__(self, index, item) -> None:
        super().__setitem__(index, item)
        self._invalidate()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._invalidate()

    def __iadd__(self, items):
        result = super().__iadd__(items)
        self._invalidate()
        return result


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self._param_cache: list[Tensor] | None = None
        self.layers = _LayerList(layers, self)

    def __setattr__(self, name, value) -> None:
        # Reassigning the whole stack (model.layers = [...]) must behave
        # like any other layer mutation: adopt the list and drop the cache.
        if name == "layers" and not isinstance(value, _LayerList):
            value = _LayerList(value, self)
        super().__setattr__(name, value)
        if name == "layers":
            self._param_cache = None

    def parameters(self) -> Iterator[Tensor]:
        """Cached parameter list — hot on the training path.

        ``zero_grad`` and optimizer construction walk the parameters on
        every step; for a fixed layer stack the walk always yields the
        same Tensor objects, so it is done once and memoized.  The cache
        holds the Tensors themselves (whose ``.data`` training and
        ``load_state_dict`` update in place), and is invalidated by
        :meth:`load_state_dict` defensively and by any direct mutation of
        :attr:`layers` (append/replace/delete — see :class:`_LayerList`).
        """
        if self._param_cache is None:
            self._param_cache = list(super().parameters())
        yield from self._param_cache

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._param_cache = None

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"

    def forward_with_activations(self, x: Tensor) -> tuple[Tensor, list[Tensor]]:
        """Forward pass that also returns every intermediate activation.

        Grad-CAM (Section IV-B of the paper) needs the hidden feature maps
        ``A^(k)`` — this is the hook-free way to collect them.
        """
        activations: list[Tensor] = []
        for layer in self.layers:
            x = layer(x)
            activations.append(x)
        return x, activations
