"""Weight initialisation schemes.

Kaiming (He) initialisation is the right default for ReLU networks like
the paper's MLP; Xavier (Glorot) is provided for sigmoid/tanh layers.
Both come in uniform and normal flavours and operate on plain numpy
arrays so they can seed :class:`~repro.nn.modules.Linear` weights.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError


def _check_fans(fan_in: int, fan_out: int) -> None:
    if fan_in < 1 or fan_out < 1:
        raise ConfigurationError(f"fans must be >= 1, got ({fan_in}, {fan_out})")


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He-uniform weights for a ReLU layer, shape ``(fan_in, fan_out)``."""
    _check_fans(fan_in, fan_out)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal weights for a ReLU layer, shape ``(fan_in, fan_out)``."""
    _check_fans(fan_in, fan_out)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform weights, shape ``(fan_in, fan_out)``."""
    _check_fans(fan_in, fan_out)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal weights, shape ``(fan_in, fan_out)``."""
    _check_fans(fan_in, fan_out)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


INITIALIZERS = {
    "kaiming_uniform": kaiming_uniform,
    "kaiming_normal": kaiming_normal,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name with a helpful error."""
    try:
        return INITIALIZERS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown initializer {name!r}; known: {sorted(INITIALIZERS)}"
        ) from exc
