"""Reverse-mode automatic differentiation on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it in a DAG; calling :meth:`Tensor.backward` on a scalar result walks
the graph in reverse topological order accumulating gradients.  The design
follows the classic define-by-run tape:

* every op returns a new Tensor whose ``_backward`` closure knows how to
  push its output gradient to its parents;
* broadcasting is handled by summing gradients over broadcast axes
  (:func:`_unbroadcast`);
* a global :func:`no_grad` context disables taping for inference.

Only the ops the paper's models need are implemented, but each is general
(arbitrary shapes, full broadcasting) and finite-difference-checked in
``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np

from ..exceptions import AutogradError, ShapeError

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    """Whether operations are currently being taped."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array (or scalar / nested list) holding the value.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data: np.ndarray | float | int | list,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents = _parents if grad_enabled() else ()
        self._op = _op

    # ------------------------------------------------------------- plumbing

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ShapeError(f"item() needs a 1-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _coerce(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_child(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=requires, _parents=parents, _op=op)
        if child.requires_grad:
            child._backward = backward
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=float), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return self._make_child(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._make_child(-self.data, (self,), backward, "neg")

    def __sub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return self._make_child(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        return self._make_child(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise AutogradError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward, "pow")

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ShapeError(
                f"matmul supports 2-D operands, got {self.data.shape} @ {other.data.shape}"
            )
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        return self._make_child(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------ reductions

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g, dtype=float)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make_child(np.asarray(out_data), (self,), backward, "sum")

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # ----------------------------------------------------------- elementwise

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make_child(self.data * mask, (self,), backward, "relu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return self._make_child(out_data, (self,), backward, "tanh")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make_child(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        if np.any(self.data <= 0):
            raise AutogradError("log of non-positive value")
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make_child(out_data, (self,), backward, "log")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return self._make_child(np.abs(self.data), (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient flows only through unclipped entries."""
        if low >= high:
            raise AutogradError(f"clip bounds inverted: [{low}, {high}]")
        mask = (self.data > low) & (self.data < high)
        out_data = np.clip(self.data, low, high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make_child(out_data, (self,), backward, "clip")

    # -------------------------------------------------------------- shaping

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).reshape(original))

        return self._make_child(out_data, (self,), backward, "reshape")

    def transpose(self) -> "Tensor":
        if self.data.ndim != 2:
            raise ShapeError("transpose() supports 2-D tensors")
        out_data = self.data.T

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).T)

        return self._make_child(out_data, (self,), backward, "transpose")

    def __getitem__(self, key: object) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, g)  # type: ignore[arg-type]
                self._accumulate(full)

        return self._make_child(np.asarray(out_data), (self,), backward, "getitem")

    # ------------------------------------------------------------- backward

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``gradient`` defaults to 1.0 and is only optional for scalar
        outputs, mirroring the PyTorch contract.
        """
        if not self.requires_grad:
            raise AutogradError("backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise AutogradError("backward() without gradient needs a scalar output")
            gradient = np.ones_like(self.data)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(gradient, dtype=float))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
