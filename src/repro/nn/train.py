"""Mini-batch training loop.

:class:`Trainer` reproduces the paper's training protocol (Section V-B):
adaptive mini-batch gradient descent (AdamW) for a fixed number of epochs,
shuffled batches, optional validation metrics per epoch and early stopping.
The loop is model-agnostic: any callable ``loss_fn(model_output, targets)``
returning a scalar Tensor works, so the same trainer drives the binary
occupancy classifier and the T/H regressor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from .schedulers import Scheduler

from ..exceptions import ConfigurationError, ShapeError
from .modules import Module
from .optim import Optimizer
from .tensor import Tensor, no_grad


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    def best_epoch(self) -> int:
        """Epoch index with the lowest validation loss (or training loss)."""
        series = self.val_loss if self.val_loss else self.train_loss
        if not series:
            raise ConfigurationError("history is empty")
        return int(np.argmin(series))


class TrainerCallback:
    """Observer hook invoked by :meth:`Trainer.fit` after every epoch.

    ``logs`` always carries ``train_loss`` and ``duration_s`` (epoch wall
    time); ``val_loss`` and ``val_metric`` appear when validation data /
    a metric function were supplied.  Subclass and override; the base
    implementation is a no-op so callbacks only implement what they need.
    The serving layer's ``TrainingMetricsCallback`` routes these logs into
    the same metrics registry the inference engine reports through, and
    :class:`~repro.nn.checkpoint.CheckpointCallback` writes crash-safe
    checkpoints from the same hook.

    A callback may return a truthy value to request that training stop
    after the current epoch (e.g. the checkpoint divergence guard rolling
    back a NaN run); returning ``None``/``False`` continues as before.
    """

    def on_epoch_end(self, epoch: int, logs: dict[str, float]) -> bool | None:
        """Called with the 0-based epoch index and that epoch's logs."""


class Trainer:
    """Runs epochs of shuffled mini-batches through a model.

    Parameters
    ----------
    model:
        The module to optimise.
    optimizer:
        Any :class:`~repro.nn.optim.Optimizer` over the model parameters.
    loss_fn:
        Callable ``(output, target) -> scalar Tensor``.
    batch_size:
        Mini-batch size (the final batch may be smaller).
    rng:
        Shuffle source; inject for reproducibility.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Tensor, Tensor], Tensor],
        batch_size: int = 256,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.batch_size = batch_size
        self._rng = rng or np.random.default_rng()
        #: The in-progress (or most recent) :meth:`fit` history — the live
        #: object the loop appends to, so checkpoint callbacks can persist
        #: it mid-run.
        self.history: TrainingHistory | None = None

    def _check_xy(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        if y.ndim == 1:
            y = y[:, None]
        if y.shape[0] != x.shape[0]:
            raise ShapeError(f"{x.shape[0]} inputs but {y.shape[0]} targets")
        return x, y

    def train_epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One pass over the data; returns the mean batch loss."""
        x, y = self._check_xy(x, y)
        self.model.train()
        order = self._rng.permutation(x.shape[0])
        losses: list[float] = []
        for start in range(0, x.shape[0], self.batch_size):
            idx = order[start : start + self.batch_size]
            xb = Tensor(x[idx])
            yb = Tensor(y[idx])
            output = self.model(xb)
            loss = self.loss_fn(output, yb)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses))

    def evaluate_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over the data without touching gradients."""
        x, y = self._check_xy(x, y)
        self.model.eval()
        losses: list[float] = []
        weights: list[int] = []
        with no_grad():
            for start in range(0, x.shape[0], self.batch_size):
                xb = Tensor(x[start : start + self.batch_size])
                yb = Tensor(y[start : start + self.batch_size])
                loss = self.loss_fn(self.model(xb), yb)
                losses.append(loss.item())
                weights.append(xb.shape[0])
        return float(np.average(losses, weights=weights))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Model outputs as a plain array, batched to bound memory."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"x must be 2-D, got {x.shape}")
        self.model.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, x.shape[0], max(self.batch_size, 1024)):
                xb = Tensor(x[start : start + max(self.batch_size, 1024)])
                outputs.append(self.model(xb).data)
        return np.vstack(outputs)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        metric_fn: Callable[[np.ndarray, np.ndarray], float] | None = None,
        early_stopping_patience: int | None = None,
        scheduler: "Scheduler | None" = None,
        callbacks: Sequence[TrainerCallback] | None = None,
        resume_from: "str | Path | None" = None,
        observer=None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Full training run; returns the per-epoch history.

        Early stopping (optional) watches the validation loss and restores
        nothing — the paper trains a fixed 10 epochs, so restoration is the
        caller's business via ``model.state_dict()``.  A scheduler, if
        given, steps once after every epoch.  Callbacks receive the epoch
        index and a logs dict (loss, wall time) after every epoch, before
        an early stop is taken; any callback returning a truthy value
        stops the run after that epoch.

        ``resume_from`` restarts a killed run from a checkpoint written
        by :class:`~repro.nn.checkpoint.CheckpointCallback` (or
        :func:`~repro.nn.checkpoint.save_checkpoint`): model parameters,
        optimizer state and the shuffle RNG are restored, the saved
        history is extended in place, and training continues at the epoch
        after the checkpoint — with the same data and ``epochs`` the
        resumed run reproduces the uninterrupted run exactly.  Scheduler
        state is *not* checkpointed (the restored optimizer carries the
        checkpoint-time learning rate); re-create and fast-forward the
        scheduler when resuming a scheduled run.

        ``observer`` is an optional event sink (duck-typed
        :class:`~repro.obs.observer.Observer` — this module never imports
        :mod:`repro.obs`).  When live, every epoch lands in the structured
        event log as a ``train.epoch`` event stamped with the epoch index
        as its stream time and carrying the losses — but *not* the wall
        durations, which would break byte-identical replay.
        """
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if early_stopping_patience is not None and early_stopping_patience < 1:
            raise ConfigurationError("early_stopping_patience must be >= 1")
        has_val = x_val is not None and y_val is not None

        history = TrainingHistory()
        best_val = np.inf
        stale = 0
        start_epoch = 0
        if resume_from is not None:
            from .checkpoint import load_checkpoint  # deferred: avoids cycle

            checkpoint = load_checkpoint(resume_from)
            checkpoint.restore(
                model=self.model, optimizer=self.optimizer, rng=self._rng
            )
            history = checkpoint.history
            start_epoch = checkpoint.epoch + 1
            if history.val_loss:
                best_val = float(np.min(history.val_loss))
                stale = len(history.val_loss) - 1 - int(np.argmin(history.val_loss))
        self.history = history
        for epoch in range(start_epoch, epochs):
            epoch_start = time.perf_counter()
            train_loss = self.train_epoch(x, y)
            history.train_loss.append(train_loss)
            logs: dict[str, float] = {"train_loss": train_loss}
            stop = False
            line = f"epoch {epoch + 1}/{epochs}  train_loss={train_loss:.4f}"
            if has_val:
                assert x_val is not None and y_val is not None
                val_loss = self.evaluate_loss(x_val, y_val)
                history.val_loss.append(val_loss)
                logs["val_loss"] = val_loss
                line += f"  val_loss={val_loss:.4f}"
                if metric_fn is not None:
                    pred = self.predict(x_val)
                    metric = float(metric_fn(np.asarray(y_val), pred))
                    history.val_metric.append(metric)
                    logs["val_metric"] = metric
                    line += f"  val_metric={metric:.4f}"
                if early_stopping_patience is not None:
                    if val_loss < best_val - 1e-12:
                        best_val = val_loss
                        stale = 0
                    else:
                        stale += 1
                        if stale >= early_stopping_patience:
                            stop = True
                            line += "  (early stop)"
            logs["duration_s"] = time.perf_counter() - epoch_start
            if observer is not None and observer.enabled:
                observer.emit(
                    "train.epoch",
                    t_s=float(epoch),
                    **{k: v for k, v in logs.items() if k != "duration_s"},
                )
            for callback in callbacks or ():
                if callback.on_epoch_end(epoch, logs):
                    stop = True
                    line += f"  (stopped by {type(callback).__name__})"
            if verbose:
                print(line)
            if stop:
                break
            if scheduler is not None:
                scheduler.step()
        return history
