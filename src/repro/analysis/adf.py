"""Augmented Dickey-Fuller unit-root test.

The paper (Section V-A) tests every series for stationarity with the ADF
test before computing raw-data correlations.  This implementation follows
the standard construction (as in statsmodels, which is unavailable here):

1. Regress ``dy_t`` on ``y_{t-1}``, a constant, and ``k`` lagged
   differences ``dy_{t-1} .. dy_{t-k}``.
2. The test statistic is the t-ratio of the ``y_{t-1}`` coefficient.
3. The lag order ``k`` is chosen by minimising AIC over ``0..maxlag``
   (Schwert's rule for the default ``maxlag``).
4. Critical values come from MacKinnon's (2010) response-surface
   regressions for the constant-only case; the p-value is interpolated
   from tabulated tau quantiles (documented approximation, good to ~0.01
   in the decision region).

Under H0 the series has a unit root (non-stationary); a test statistic
below the critical value rejects H0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError

#: MacKinnon (2010) response-surface coefficients, constant-only case
#: (one variable).  tau_crit(T) = b0 + b1/T + b2/T^2 + b3/T^3.
_MACKINNON_CONSTANT = {
    0.01: (-3.43035, -6.5393, -16.786, -79.433),
    0.05: (-2.86154, -2.8903, -4.234, -40.040),
    0.10: (-2.56677, -1.5384, -2.809, 0.0),
}

#: Anchor quantiles of the asymptotic DF tau distribution (constant case)
#: used for p-value interpolation.  (tau, p) pairs, tau increasing.
_TAU_QUANTILES = np.array(
    [
        (-4.38, 0.001),
        (-3.95, 0.005),
        (-3.43, 0.010),
        (-3.12, 0.025),
        (-2.86, 0.050),
        (-2.57, 0.100),
        (-2.27, 0.200),
        (-1.94, 0.350),
        (-1.62, 0.500),
        (-1.28, 0.650),
        (-0.90, 0.800),
        (-0.44, 0.900),
        (0.08, 0.960),
        (0.66, 0.990),
        (1.50, 0.999),
    ]
)


@dataclass(frozen=True)
class ADFResult:
    """Outcome of an ADF test."""

    statistic: float
    p_value: float
    used_lags: int
    n_observations: int
    critical_values: dict[float, float]

    @property
    def is_stationary(self) -> bool:
        """Reject the unit root at the 5 % level."""
        return self.statistic < self.critical_values[0.05]


def _critical_values(n_obs: int) -> dict[float, float]:
    out: dict[float, float] = {}
    for level, (b0, b1, b2, b3) in _MACKINNON_CONSTANT.items():
        out[level] = b0 + b1 / n_obs + b2 / n_obs**2 + b3 / n_obs**3
    return out


def _interp_p_value(tau: float) -> float:
    taus = _TAU_QUANTILES[:, 0]
    ps = _TAU_QUANTILES[:, 1]
    if tau <= taus[0]:
        return float(ps[0])
    if tau >= taus[-1]:
        return float(ps[-1])
    # Interpolate in logit space so tails behave monotonically.
    logits = np.log(ps / (1.0 - ps))
    value = np.interp(tau, taus, logits)
    return float(1.0 / (1.0 + np.exp(-value)))


def _ols_tstat(design: np.ndarray, response: np.ndarray, column: int) -> float:
    """t-statistic of one coefficient in an OLS fit."""
    coef, _, rank, _ = np.linalg.lstsq(design, response, rcond=None)
    residuals = response - design @ coef
    dof = design.shape[0] - rank
    if dof <= 0:
        raise ShapeError("not enough observations for the ADF regression")
    sigma2 = float(residuals @ residuals) / dof
    xtx_inv = np.linalg.pinv(design.T @ design)
    se = np.sqrt(sigma2 * xtx_inv[column, column])
    if se == 0.0:
        raise ShapeError("degenerate ADF regression (zero standard error)")
    return float(coef[column] / se)


def _aic(design: np.ndarray, response: np.ndarray) -> float:
    coef, *_ = np.linalg.lstsq(design, response, rcond=None)
    residuals = response - design @ coef
    n = design.shape[0]
    ssr = float(residuals @ residuals)
    if ssr <= 0:
        return -np.inf
    return n * np.log(ssr / n) + 2.0 * design.shape[1]


def _build_design(y: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Design matrix [y_{t-1}, const, dy_{t-1}..dy_{t-k}] and response dy_t."""
    dy = np.diff(y)
    t0 = k  # first usable index into dy
    response = dy[t0:]
    n = response.size
    cols = [y[k:-1], np.ones(n)]
    for lag in range(1, k + 1):
        cols.append(dy[t0 - lag : t0 - lag + n])
    return np.column_stack(cols), response


def adf_test(series: np.ndarray, maxlag: int | None = None) -> ADFResult:
    """Run the ADF test with AIC lag selection.

    Parameters
    ----------
    series:
        The time series (1-D, at least ~15 points).
    maxlag:
        Largest lag order tried; defaults to Schwert's
        ``12 * (n/100)^(1/4)`` capped so the regression keeps
        degrees of freedom.
    """
    y = np.asarray(series, dtype=float).ravel()
    if y.size < 15:
        raise ShapeError(f"series too short for ADF ({y.size} < 15 points)")
    if np.any(~np.isfinite(y)):
        raise ShapeError("series contains non-finite values")
    if np.all(y == y[0]):
        # A constant series is trivially stationary; report a large
        # negative statistic rather than a degenerate regression.
        crit = _critical_values(y.size)
        return ADFResult(-np.inf, 0.0, 0, int(y.size), crit)

    n = y.size
    if maxlag is None:
        maxlag = int(np.ceil(12.0 * (n / 100.0) ** 0.25))
    maxlag = int(np.clip(maxlag, 0, max(0, (n - 10) // 2)))

    best_k = 0
    best_aic = np.inf
    for k in range(maxlag + 1):
        design, response = _build_design(y, k)
        score = _aic(design, response)
        if score < best_aic:
            best_aic = score
            best_k = k

    design, response = _build_design(y, best_k)
    stat = _ols_tstat(design, response, column=0)
    n_obs = response.size
    return ADFResult(
        statistic=stat,
        p_value=_interp_p_value(stat),
        used_lags=best_k,
        n_observations=n_obs,
        critical_values=_critical_values(n_obs),
    )
