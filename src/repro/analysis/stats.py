"""Descriptive statistics and Pearson correlation (paper Eq. 7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's rho: ``cov(X, Y) / (sigma_x * sigma_y)`` (paper Eq. 7).

    Returns 0.0 when either series is constant (zero variance) — the
    correlation is undefined there and 0 is the neutral report.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ShapeError(f"series lengths differ: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ShapeError("need at least 2 points for a correlation")
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def correlation_matrix(columns: np.ndarray) -> np.ndarray:
    """Pairwise Pearson matrix over the columns of a 2-D array.

    Constant columns produce zero rows/cols (same convention as
    :func:`pearson`) with unit diagonal.
    """
    columns = np.asarray(columns, dtype=float)
    if columns.ndim != 2:
        raise ShapeError(f"expected (n, k) array, got {columns.shape}")
    n, k = columns.shape
    if n < 2:
        raise ShapeError("need at least 2 rows")
    centered = columns - columns.mean(axis=0)
    stds = columns.std(axis=0)
    safe = np.where(stds > 0, stds, 1.0)
    normalized = centered / safe
    corr = normalized.T @ normalized / n
    constant = stds == 0
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-style summary of one series."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float


def describe(x: np.ndarray) -> SeriesSummary:
    """Descriptive statistics of a series (the V-A visual/numerical step)."""
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        raise ShapeError("cannot describe an empty series")
    return SeriesSummary(
        n=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        minimum=float(x.min()),
        q25=float(np.quantile(x, 0.25)),
        median=float(np.median(x)),
        q75=float(np.quantile(x, 0.75)),
        maximum=float(x.max()),
    )
