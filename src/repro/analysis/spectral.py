"""Spectral analysis of CSI time series.

Body motion modulates each subcarrier's amplitude at Doppler-scale rates
(walking at ~1 m/s shifts 2.4 GHz paths by up to ~16 Hz), while an empty
room's spectrum collapses to DC plus receiver noise.  These tools expose
that view of the data:

* :func:`welch_psd` — Welch-averaged power spectral density of one
  subcarrier series;
* :func:`doppler_spread` — RMS spectral width around DC, the standard
  single-number motion indicator;
* :func:`motion_energy` — band-limited AC power, a threshold detector's
  feature;
* :class:`SpectrogramBuilder` — STFT magnitude over time, the input
  representation of most activity-recognition papers ([16]'s BLSTM and
  friends).

Everything runs on the amplitude series the paper records, so these are
drop-in analyses for any :class:`~repro.data.dataset.OccupancyDataset`.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..exceptions import ShapeError


def welch_psd(
    series: np.ndarray, sample_rate_hz: float, nperseg: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Welch PSD of a 1-D series; returns ``(frequencies, psd)``."""
    series = np.asarray(series, dtype=float).ravel()
    if series.size < 8:
        raise ShapeError(f"series too short for a PSD ({series.size} < 8)")
    if sample_rate_hz <= 0:
        raise ShapeError("sample_rate_hz must be positive")
    if nperseg is None:
        nperseg = min(256, series.size)
    freqs, psd = signal.welch(series, fs=sample_rate_hz, nperseg=min(nperseg, series.size))
    return freqs, psd


def doppler_spread(
    series: np.ndarray, sample_rate_hz: float, dc_cutoff_hz: float | None = None
) -> float:
    """RMS spectral width of the (detrended) series in Hz.

    ``sqrt(sum f^2 P(f) / sum P(f))`` over the above-DC band — near zero
    for a static room, rising with motion speed.
    """
    freqs, psd = welch_psd(series - np.mean(series), sample_rate_hz)
    if dc_cutoff_hz is None:
        dc_cutoff_hz = freqs[1] / 2 if len(freqs) > 1 else 0.0
    band = freqs > dc_cutoff_hz
    power = float(np.sum(psd[band]))
    if power <= 0:
        return 0.0
    return float(np.sqrt(np.sum(freqs[band] ** 2 * psd[band]) / power))


def motion_energy(
    series: np.ndarray,
    sample_rate_hz: float,
    band_hz: tuple[float, float] = (0.1, 5.0),
) -> float:
    """AC power inside the human-motion band (integral of the PSD)."""
    lo, hi = band_hz
    if not 0 <= lo < hi:
        raise ShapeError(f"invalid band {band_hz}")
    freqs, psd = welch_psd(series - np.mean(series), sample_rate_hz)
    mask = (freqs >= lo) & (freqs <= hi)
    if not np.any(mask):
        return 0.0
    return float(np.trapezoid(psd[mask], freqs[mask]))


class SpectrogramBuilder:
    """STFT magnitude of a subcarrier series.

    Parameters
    ----------
    window_s:
        STFT window length in seconds.
    overlap:
        Fractional window overlap in [0, 1).
    """

    def __init__(self, window_s: float = 8.0, overlap: float = 0.5) -> None:
        if window_s <= 0:
            raise ShapeError("window_s must be positive")
        if not 0.0 <= overlap < 1.0:
            raise ShapeError("overlap must lie in [0, 1)")
        self.window_s = window_s
        self.overlap = overlap

    def build(
        self, series: np.ndarray, sample_rate_hz: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(frequencies, times, magnitude)`` of the STFT.

        ``magnitude`` has shape ``(n_freqs, n_times)``.
        """
        series = np.asarray(series, dtype=float).ravel()
        if sample_rate_hz <= 0:
            raise ShapeError("sample_rate_hz must be positive")
        nperseg = max(8, int(round(self.window_s * sample_rate_hz)))
        if series.size < nperseg:
            raise ShapeError(
                f"series of {series.size} samples shorter than one window ({nperseg})"
            )
        noverlap = int(nperseg * self.overlap)
        freqs, times, stft = signal.stft(
            series - np.mean(series),
            fs=sample_rate_hz,
            nperseg=nperseg,
            noverlap=noverlap,
        )
        return freqs, times, np.abs(stft)
