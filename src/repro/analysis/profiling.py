"""Dataset profiling: the Section V-A analysis pipeline.

Reproduces, on any :class:`~repro.data.dataset.OccupancyDataset`:

* the null/duplicate control step,
* the Table II occupant-count distribution,
* ADF stationarity of CSI, temperature, humidity and occupancy series,
* the Pearson correlations the paper quotes: T-H (0.45), T-occupancy
  (0.44), H-occupancy (0.35), time-of-day vs. environment (0.77) and the
  subcarrier-vs-environment profile.

Series are optionally decimated before ADF (the test is O(n * maxlag^2)
and statistically indistinguishable at 0.5 Hz vs. 20 Hz for these slow
processes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import OccupancyDataset
from ..exceptions import DatasetError
from .adf import ADFResult, adf_test
from .stats import pearson


@dataclass(frozen=True)
class DatasetProfile:
    """Everything Section V-A reports about the collected data."""

    n_rows: int
    n_duplicate_timestamps: int
    n_non_finite: int
    occupant_distribution: dict[int, int]
    empty_fraction: float
    occupied_fraction: float
    adf: dict[str, ADFResult]
    corr_temperature_humidity: float
    corr_temperature_occupancy: float
    corr_humidity_occupancy: float
    corr_time_temperature: float
    corr_time_humidity: float
    #: Pearson rho of each subcarrier amplitude vs. temperature.
    subcarrier_temperature_corr: np.ndarray = field(repr=False)
    #: Pearson rho of each subcarrier amplitude vs. humidity.
    subcarrier_humidity_corr: np.ndarray = field(repr=False)

    @property
    def all_series_stationary(self) -> bool:
        """The paper's headline profiling result."""
        return all(result.is_stationary for result in self.adf.values())

    def corr_time_environment(self) -> float:
        """Max |rho| of time-of-day vs. T/H (the paper quotes 0.77)."""
        return max(abs(self.corr_time_temperature), abs(self.corr_time_humidity))


def _hour_of_day(timestamps_s: np.ndarray, start_hour_of_day: float) -> np.ndarray:
    return (start_hour_of_day + timestamps_s / 3600.0) % 24.0


def profile_dataset(
    dataset: OccupancyDataset,
    start_hour_of_day: float = 15.13,
    adf_max_points: int = 50_000,
    adf_maxlag: int = 1,
    adf_subcarriers: tuple[int, ...] = (0, 16, 32, 48, 63),
) -> DatasetProfile:
    """Run the full Section V-A profiling pipeline.

    Parameters
    ----------
    dataset:
        The campaign data.
    start_hour_of_day:
        Wall-clock hour at the first row (for the time-of-day feature).
    adf_max_points:
        Series longer than this are uniformly decimated before the ADF
        test to bound its cost.
    adf_maxlag:
        Lag bound of the ADF regressions.  Deliberately low: densely
        sampled climate series are slow signals plus i.i.d. sensor noise,
        and high AR lag orders absorb that (MA-like) noise and destroy
        the test's power — the low-order test is the one whose verdict
        ("all series stationary", Section V-A) the paper reports.
    adf_subcarriers:
        Which subcarrier series get individual ADF tests.
    """
    if len(dataset) < 30:
        raise DatasetError("dataset too small to profile")

    t = dataset.timestamps_s
    n = len(dataset)
    n_duplicates = int(np.count_nonzero(np.diff(t) == 0))
    matrix = dataset.to_matrix()
    n_non_finite = int(np.count_nonzero(~np.isfinite(matrix)))

    if dataset.occupant_count is not None:
        values, counts = np.unique(dataset.occupant_count, return_counts=True)
        distribution = {int(v): int(c) for v, c in zip(values, counts)}
    else:
        occupied = int(np.count_nonzero(dataset.occupancy))
        distribution = {0: n - occupied, 1: occupied}
    balance = dataset.class_balance()

    def decimate(series: np.ndarray) -> np.ndarray:
        if series.size <= adf_max_points:
            return series
        step = int(np.ceil(series.size / adf_max_points))
        return series[::step]

    adf_results: dict[str, ADFResult] = {
        "temperature": adf_test(decimate(dataset.temperature_c), maxlag=adf_maxlag),
        "humidity": adf_test(decimate(dataset.humidity_rh), maxlag=adf_maxlag),
        "occupancy": adf_test(decimate(dataset.occupancy.astype(float)), maxlag=adf_maxlag),
    }
    valid_idx = [i for i in adf_subcarriers if i < dataset.n_subcarriers]
    for i in valid_idx:
        adf_results[f"a{i}"] = adf_test(decimate(dataset.csi[:, i]), maxlag=adf_maxlag)

    temp = dataset.temperature_c
    hum = dataset.humidity_rh
    occ = dataset.occupancy.astype(float)
    hours = _hour_of_day(t, start_hour_of_day)

    sub_t = np.array([pearson(dataset.csi[:, j], temp) for j in range(dataset.n_subcarriers)])
    sub_h = np.array([pearson(dataset.csi[:, j], hum) for j in range(dataset.n_subcarriers)])

    return DatasetProfile(
        n_rows=n,
        n_duplicate_timestamps=n_duplicates,
        n_non_finite=n_non_finite,
        occupant_distribution=distribution,
        empty_fraction=balance["empty"],
        occupied_fraction=balance["occupied"],
        adf=adf_results,
        corr_temperature_humidity=pearson(temp, hum),
        corr_temperature_occupancy=pearson(temp, occ),
        corr_humidity_occupancy=pearson(hum, occ),
        corr_time_temperature=pearson(hours, temp),
        corr_time_humidity=pearson(hours, hum),
        subcarrier_temperature_corr=sub_t,
        subcarrier_humidity_corr=sub_h,
    )
