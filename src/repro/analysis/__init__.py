"""Time-series statistics used in the paper's Section V-A data profiling.

* :mod:`repro.analysis.stats` — Pearson correlation and descriptive stats;
* :mod:`repro.analysis.adf` — the Augmented Dickey-Fuller stationarity
  test the paper applies before its correlation analysis;
* :mod:`repro.analysis.profiling` — the full profiling report: Table II
  occupant distribution and the Section V-A correlation numbers.
"""

from .stats import pearson, correlation_matrix, describe
from .adf import adf_test, ADFResult
from .profiling import DatasetProfile, profile_dataset
from .spectral import (
    welch_psd,
    doppler_spread,
    motion_energy,
    SpectrogramBuilder,
)

__all__ = [
    "pearson",
    "correlation_matrix",
    "describe",
    "adf_test",
    "ADFResult",
    "DatasetProfile",
    "profile_dataset",
    "welch_psd",
    "doppler_spread",
    "motion_energy",
    "SpectrogramBuilder",
]
