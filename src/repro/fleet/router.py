"""Per-tenant ring buffers between admission and the fusion scheduler.

The single-engine path couples admission to batching in one
:class:`~repro.serve.queue.MicroBatchQueue`; a fleet cannot, because the
scheduler needs frames *grouped by tenant* to decide what fuses.  The
:class:`FleetRouter` is that regrouping stage: ``route`` appends an
admitted frame to its tenant's bounded ring, and the scheduler drains
whole rings per tick.  Overflow policy matches the engine's queue —
evict the oldest frame of that tenant (returned to the caller for
counting/observing, never an exception), so one noisy room degrades only
itself.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TenantFrame:
    """One admitted frame waiting in a tenant's ring."""

    tenant_id: str
    frame_id: int
    t_s: float
    row: np.ndarray
    #: True when the frame was synthesised by the gap repairer.
    repaired: bool = False
    #: Absolute stream-time deadline (``inf`` when no budget configured);
    #: expired frames are shed at drain time, never served stale.
    deadline_s: float = math.inf


class FleetRouter:
    """Maps ``(tenant_id, frame)`` onto bounded per-tenant rings."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._rings: dict[str, deque[TenantFrame]] = {}

    def route(self, frame: TenantFrame) -> TenantFrame | None:
        """Append a frame to its tenant's ring; returns any evicted frame."""
        ring = self._rings.get(frame.tenant_id)
        if ring is None:
            ring = deque()
            self._rings[frame.tenant_id] = ring
        evicted = None
        if len(ring) >= self.capacity:
            evicted = ring.popleft()
        ring.append(frame)
        return evicted

    def depth(self, tenant_id: str) -> int:
        """Frames currently pending for one tenant."""
        ring = self._rings.get(tenant_id)
        return 0 if ring is None else len(ring)

    def forget(self, tenant_id: str) -> None:
        """Drop a tenant's ring entirely (post-detach cleanup).

        The ring must be empty — forgetting pending frames would be a
        silent drop, which the detach drain contract forbids.
        """
        ring = self._rings.get(tenant_id)
        if ring:
            raise ConfigurationError(
                f"cannot forget tenant {tenant_id!r}: {len(ring)} frame(s) "
                f"still pending (drain first)"
            )
        self._rings.pop(tenant_id, None)

    @property
    def total_depth(self) -> int:
        """Frames pending across every tenant."""
        return sum(len(ring) for ring in self._rings.values())

    @property
    def pending_tenants(self) -> tuple[str, ...]:
        """Tenants with at least one pending frame, first-seen order."""
        return tuple(t for t, ring in self._rings.items() if ring)

    def oldest_t_s(self) -> float | None:
        """Timestamp of the oldest pending frame fleet-wide (None if idle).

        Rings are FIFO, so each ring's head is its oldest — the saturation
        governor reads this to turn backlog into a queue-wait signal.
        """
        heads = [ring[0].t_s for ring in self._rings.values() if ring]
        return min(heads) if heads else None

    def drain(self, tenant_id: str, limit: int | None = None) -> list[TenantFrame]:
        """Remove and return one tenant's pending frames, oldest first.

        ``limit`` caps how many leave the ring (the governor's
        FALLBACK_ONLY rung serves a small per-tenant quota per tick and
        leaves the rest queued); ``None`` drains everything.
        """
        ring = self._rings.get(tenant_id)
        if not ring:
            return []
        if limit is None or limit >= len(ring):
            frames = list(ring)
            ring.clear()
            return frames
        if limit < 0:
            raise ConfigurationError("limit must be >= 0 (or None)")
        return [ring.popleft() for _ in range(limit)]
