"""Fleet-scale multi-tenant serving with cross-tenant batch fusion.

The paper detects occupancy in one room; the north-star deployment is a
process serving *thousands* of rooms.  This package is that layer:

* :mod:`repro.fleet.registry` — :class:`PlanRegistry`, the room-sharded
  tenant → frozen-plan mapping, and :class:`PlanSignature`, the fusion
  eligibility key (geometry + activations + weight bytes);
* :mod:`repro.fleet.router` — :class:`FleetRouter`, per-tenant bounded
  ring buffers between admission and scheduling;
* :mod:`repro.fleet.fusion` — :class:`TiledPlanRunner` (shape-stable
  fixed-tile GEMM execution, the trick that makes fused and per-tenant
  results byte-identical) and :class:`FusionScheduler` (per-tick
  signature cohorts → one batched GEMM each, singleton fallback);
* :mod:`repro.fleet.service` — :class:`Fleet`, the tenant-scoped facade
  with per-tenant guard/observer isolation and labeled metric rollups;
* :mod:`repro.fleet.bench` — the ``fleet-bench`` harness behind the CLI.

See DESIGN.md §13 for the contracts and the measured BLAS behaviour the
fusion rules rest on.
"""

from .bench import ChurnStats, FleetBenchReport, run_churn_scenario, run_fleet_bench
from .fusion import FusionScheduler, TenantBatch, TickOutcome, TiledPlanRunner
from .registry import PlanRegistry, PlanSignature
from .router import FleetRouter, TenantFrame
from .service import Fleet, TenantLifecycle

__all__ = [
    "ChurnStats",
    "Fleet",
    "FleetBenchReport",
    "FleetRouter",
    "FusionScheduler",
    "PlanRegistry",
    "PlanSignature",
    "TenantBatch",
    "TenantFrame",
    "TenantLifecycle",
    "TickOutcome",
    "TiledPlanRunner",
    "run_churn_scenario",
    "run_fleet_bench",
]
