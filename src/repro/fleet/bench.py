"""The ``fleet-bench`` harness: fused vs per-tenant serving at fleet scale.

Drives N tenants × M-frames-per-second seeded synthetic traffic (rows
drawn from one simulated campaign) through two identically configured
:class:`~repro.fleet.service.Fleet` instances — fusion on and fusion
off — and reports:

* aggregate throughput of each arm and the fused-vs-unfused speedup;
* per-tenant p50/p99 tick latency (every tenant served in a tick is
  charged that tick's wall time — the latency a room actually sees);
* the **byte-identity gate**: every probability of the fused arm must
  equal the unfused arm's bit for bit.  This is the invariant CI gates
  on; throughput numbers are machine-dependent and informational;
* per-tenant ledger/counter reconciliation from a third, untimed
  replay with live observers (observers stay off the timed arms so the
  comparison measures serving, not event logging).

The tenant population mixes one shared-plan cohort (the common "one
model, many rooms" deployment, fusion-eligible) with every
``distinct_every``-th tenant running its own freshly initialised plan
(the odd-one-out architectures that must fall back to per-tenant
dispatch).

**The churn arm** exercises fleet *elasticity*: a seeded schedule of
attach / detach / replace_plan operations interleaved with live traffic
drives two fleets (fused and unfused) through identical tenant churn —
including drain-before-detach through real ticks and automatic
skew-triggered shard rebalancing — and gates on the same deterministic
invariants: fused-vs-unfused byte identity over every probability ever
served (drain-tick results included), exact per-tenant ledger
reconciliation for every tenant that *ever* existed, drain-exact detach
audits (``drained == drain_served + drain_shed``), and zero frames
served after their tenant detached.  Speed is never gated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..benchkit import DEFAULT_SEED
from ..config import CampaignConfig
from ..data.recording import CollectionCampaign
from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..nn.modules import Linear, ReLU, Sequential
from ..obs.observer import Observer
from ..serve.config import ServeConfig
from .registry import PlanRegistry
from .service import Fleet


@dataclass
class FleetArmStats:
    """Throughput of one timed arm (fused or unfused)."""

    wall_s: float
    frames: int
    fusion_ratio: float

    @property
    def fps(self) -> float:
        return self.frames / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass
class ChurnStats:
    """What the churn arm did and whether its invariants held."""

    ticks: int
    tenants_seen: int          #: tenants that ever attached (initial + churned in)
    attaches: int              #: mid-run attach operations
    detaches: int              #: detach operations (incl. the final drain-out)
    swaps: int                 #: replace_plan operations
    migrations: int            #: shard moves applied by rebalance passes
    frames_submitted: int
    frames_served: int
    drained_total: int         #: frames pending at some detach, drained through ticks
    byte_identical: bool
    n_compared: int
    max_abs_delta: float
    ledger_reconciled: bool
    drain_exact: bool          #: every detach: drained == drain_served + drain_shed
    post_detach_serves: int    #: results emitted for an already-detached tenant (must be 0)

    @property
    def gates_ok(self) -> bool:
        """All four CI-gated churn invariants at once."""
        return (
            self.byte_identical
            and self.ledger_reconciled
            and self.drain_exact
            and self.post_detach_serves == 0
        )

    def to_json(self) -> dict:
        return {
            "ticks": self.ticks,
            "tenants_seen": self.tenants_seen,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "swaps": self.swaps,
            "migrations": self.migrations,
            "frames_submitted": self.frames_submitted,
            "frames_served": self.frames_served,
            "drained_total": self.drained_total,
            "byte_identical": self.byte_identical,
            "n_compared": self.n_compared,
            "max_abs_delta": self.max_abs_delta,
            "ledger_reconciled": self.ledger_reconciled,
            "drain_exact": self.drain_exact,
            "post_detach_serves": self.post_detach_serves,
        }


@dataclass
class FleetBenchReport:
    """Everything one fleet-bench run measured."""

    n_tenants: int
    frames_per_tenant: int
    frames_per_tick: int
    tile: int
    distinct_every: int
    n_cohorts: int
    seed: int
    fused: FleetArmStats
    unfused: FleetArmStats
    byte_identical: bool
    n_compared: int
    max_abs_delta: float
    ledger_reconciled: bool
    counters_reconciled: bool
    #: tenant → {"p50_ms": …, "p99_ms": …} from the fused arm's ticks.
    tenant_latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)
    #: The churn arm's audit (None when churn was disabled).
    churn: ChurnStats | None = None

    @property
    def speedup(self) -> float:
        """Fused aggregate throughput over unfused."""
        return self.fused.fps / self.unfused.fps if self.unfused.fps > 0 else float("inf")

    def describe(self) -> str:
        latency_p99s = [v["p99_ms"] for v in self.tenant_latency_ms.values()]
        worst_p99 = max(latency_p99s) if latency_p99s else float("nan")
        lines = [
            f"tenants              : {self.n_tenants} "
            f"({self.n_cohorts} plan cohort(s), odd-one-out every "
            f"{self.distinct_every})",
            f"traffic              : {self.frames_per_tenant} frames/tenant, "
            f"{self.frames_per_tick}/tick, tile {self.tile}, seed {self.seed}",
            f"unfused dispatch     : {self.unfused.fps:10.0f} frames/s "
            f"({self.unfused.wall_s:.3f} s)",
            f"fused dispatch       : {self.fused.fps:10.0f} frames/s "
            f"({self.fused.wall_s:.3f} s, fusion ratio "
            f"{self.fused.fusion_ratio:.2f})",
            f"speedup              : {self.speedup:10.2f}x",
            f"byte identity        : "
            f"{'OK' if self.byte_identical else 'FAILED'} over "
            f"{self.n_compared} probabilities "
            f"(max |Δp| = {self.max_abs_delta:.3g})",
            f"worst tenant p99     : {worst_p99:10.3f} ms/tick",
            f"ledger reconciliation: "
            f"{'OK' if self.ledger_reconciled else 'FAILED'}",
            f"counter rollups      : "
            f"{'OK' if self.counters_reconciled else 'FAILED'}",
        ]
        if self.churn is not None:
            c = self.churn
            lines += [
                f"churn                : {c.ticks} ticks, {c.tenants_seen} "
                f"tenant(s) seen, +{c.attaches}/-{c.detaches} churned, "
                f"{c.swaps} swap(s), {c.migrations} shard migration(s)",
                f"churn identity       : "
                f"{'OK' if c.byte_identical else 'FAILED'} over "
                f"{c.n_compared} probabilities (max |Δp| = {c.max_abs_delta:.3g})",
                f"churn ledger         : "
                f"{'OK' if c.ledger_reconciled else 'FAILED'}  "
                f"drain-exact: {'OK' if c.drain_exact else 'FAILED'}  "
                f"post-detach serves: {c.post_detach_serves}",
            ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload written as ``BENCH_fleet.json`` (CLI adds envelope).

        ``byte_identical`` (with ``ledger_reconciled``/
        ``counters_reconciled``) are the CI-gated invariants; throughput
        and latency fields are informational.
        """
        return {
            "bench": "fleet-bench",
            "fleet": {
                "n_tenants": self.n_tenants,
                "frames_per_tenant": self.frames_per_tenant,
                "frames_per_tick": self.frames_per_tick,
                "tile": self.tile,
                "distinct_every": self.distinct_every,
                "n_cohorts": self.n_cohorts,
            },
            "identity": {
                "byte_identical": self.byte_identical,
                "n_compared": self.n_compared,
                "max_abs_delta": self.max_abs_delta,
                "ledger_reconciled": self.ledger_reconciled,
                "counters_reconciled": self.counters_reconciled,
            },
            "throughput_fps": {
                "fused": self.fused.fps,
                "unfused": self.unfused.fps,
                "speedup": self.speedup,
                "fusion_ratio": self.fused.fusion_ratio,
            },
            "wall_s": {"fused": self.fused.wall_s, "unfused": self.unfused.wall_s},
            "tenant_latency_ms": self.tenant_latency_ms,
            "churn": None if self.churn is None else self.churn.to_json(),
        }


def _fresh_plan(n_inputs: int, plan_seed: int) -> InferencePlan:
    rng = np.random.default_rng(plan_seed)
    model = Sequential(
        Linear(n_inputs, 64, rng=rng),
        ReLU(),
        Linear(64, 32, rng=rng),
        ReLU(),
        Linear(32, 1, rng=rng),
    )
    return InferencePlan.from_model(model)


def _build_plans(
    tenant_ids: list[str], n_inputs: int, distinct_every: int, seed: int
) -> dict[str, InferencePlan]:
    """One shared plan for the cohort, fresh plans for odd-one-out tenants."""
    shared = _fresh_plan(n_inputs, seed)
    plans: dict[str, InferencePlan] = {}
    for i, tenant_id in enumerate(tenant_ids):
        if distinct_every and i % distinct_every == distinct_every - 1:
            plans[tenant_id] = _fresh_plan(n_inputs, seed + 1 + i)
        else:
            plans[tenant_id] = shared
    return plans


def _campaign_source(n_inputs: int, seed: int) -> np.ndarray:
    """Realistic CSI rows from one small simulated campaign."""
    n_source = 512
    config = CampaignConfig(
        duration_h=n_source / (3600.0 * 0.5), sample_rate_hz=0.5, seed=seed
    )
    dataset = CollectionCampaign(config).run()
    source = dataset.csi[:, :n_inputs]
    if source.shape[1] < n_inputs:
        raise ConfigurationError(
            f"campaign provides {source.shape[1]} subcarriers, bench needs {n_inputs}"
        )
    return source


def _make_traffic(
    tenant_ids: list[str],
    frames_per_tenant: int,
    n_inputs: int,
    seed: int,
    source: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Seeded synthetic CSI traffic per tenant, drawn from one campaign."""
    # One small simulated campaign supplies realistic CSI rows; each
    # tenant resamples its own frame sequence from it.
    if source is None:
        source = _campaign_source(n_inputs, seed)
    rng = np.random.default_rng(seed)
    return {
        tenant_id: np.ascontiguousarray(
            source[rng.integers(0, len(source), size=frames_per_tenant)]
        )
        for tenant_id in tenant_ids
    }


def _replay(
    fleet: Fleet,
    tenant_ids: list[str],
    traffic: dict[str, np.ndarray],
    frames_per_tick: int,
    rate_hz: float,
) -> tuple[dict[str, list[float]], float, dict[str, list[float]]]:
    """Run the traffic through one fleet; returns (probs, wall_s, latencies)."""
    probabilities: dict[str, list[float]] = {t: [] for t in tenant_ids}
    latencies: dict[str, list[float]] = {t: [] for t in tenant_ids}
    frames_per_tenant = len(next(iter(traffic.values())))
    n_ticks = -(-frames_per_tenant // frames_per_tick)
    dt = 1.0 / rate_hz
    start = time.perf_counter()
    for tick_i in range(n_ticks):
        lo = tick_i * frames_per_tick
        hi = min(lo + frames_per_tick, frames_per_tenant)
        tick_start = time.perf_counter()
        for tenant_id in tenant_ids:
            rows = traffic[tenant_id]
            for j in range(lo, hi):
                fleet.submit(tenant_id, j * dt, rows[j])
        results = fleet.tick()
        tick_ms = 1000.0 * (time.perf_counter() - tick_start)
        served: set[str] = set()
        for result in results:
            probabilities[result.tenant_id].append(result.probability)
            served.add(result.tenant_id)
        for tenant_id in served:
            latencies[tenant_id].append(tick_ms)
    wall_s = time.perf_counter() - start
    return probabilities, wall_s, latencies


# ----------------------------------------------------------------- churn arm


def _churn_ops(
    seed: int, ticks: int, n_initial: int
) -> tuple[list[tuple[str, str]], list[list[tuple[str, str, str]]]]:
    """Seeded attach/detach/swap schedule, shared verbatim by both arms.

    Returns ``(initial, schedule)`` where ``initial`` is the starting
    roster as ``(tenant_id, plan_key)`` pairs and ``schedule[i]`` is the
    list of ``(op, tenant_id, plan_key)`` operations applied before tick
    ``i``.  Ops per tick: ~35% attach a new tenant (mostly into the
    shared cohort), ~25% detach a random live tenant (roster floor 3),
    ~20% hot-swap a random tenant's plan, rest quiet.
    """
    rng = np.random.default_rng(seed)
    initial = [
        (f"churn-{i:03d}", "shared" if (i + 1) % 3 else "alt")
        for i in range(n_initial)
    ]
    attached = [tenant_id for tenant_id, _ in initial]
    next_id = n_initial
    schedule: list[list[tuple[str, str, str]]] = []
    for _ in range(ticks):
        ops: list[tuple[str, str, str]] = []
        roll = float(rng.random())
        if roll < 0.35:
            tenant_id = f"churn-{next_id:03d}"
            key_roll = float(rng.random())
            if key_roll < 0.60:
                key = "shared"
            elif key_roll < 0.85:
                key = "alt"
            else:
                key = f"solo-{next_id:03d}"
            next_id += 1
            ops.append(("attach", tenant_id, key))
            attached.append(tenant_id)
        elif roll < 0.60:
            if len(attached) > 3:
                victim = attached.pop(int(rng.integers(len(attached))))
                ops.append(("detach", victim, ""))
        elif roll < 0.80:
            if attached:
                target = attached[int(rng.integers(len(attached)))]
                key = "shared" if float(rng.random()) < 0.5 else "alt"
                ops.append(("swap", target, key))
        schedule.append(ops)
    return initial, schedule


def _churn_replay(
    fusion_enabled: bool,
    initial: list[tuple[str, str]],
    schedule: list[list[tuple[str, str, str]]],
    plan_pool: dict[str, InferencePlan],
    source: np.ndarray,
    seed: int,
    frames_per_tick: int,
    n_shards: int,
    rebalance_skew: float,
    tile: int,
):
    """Drive one fleet through the churn schedule with live observers.

    Returns ``(probs, observers, detach_reports, post_detach_serves,
    frames_submitted, fleet)``.  Traffic rows are drawn from ``source``
    by a seeded rng whose draw sequence is identical across arms because
    the op schedule (hence the live-roster sequence) is identical.
    """
    observers: dict[str, Observer] = {}
    attach_label: list[str] = []

    def factory() -> Observer:
        # Fleet.attach calls the factory synchronously, so the label
        # pushed just before the call names the observer's tenant.
        observer = Observer()
        observers[attach_label[-1]] = observer
        return observer

    fleet = Fleet(
        ServeConfig(max_latency_ms=None),
        plans=PlanRegistry(n_shards=n_shards),
        tile=tile,
        fusion_enabled=fusion_enabled,
        observer_factory=factory,
        rebalance_skew=rebalance_skew,
    )
    probs: dict[str, list[float]] = {}
    detach_reports: dict[str, dict[str, int]] = {}
    detached: set[str] = set()
    post_detach = 0
    frames_submitted = 0

    def harvest(results) -> None:
        nonlocal post_detach
        for result in results:
            if result.tenant_id in detached:
                post_detach += 1
            probs.setdefault(result.tenant_id, []).append(result.probability)

    def do_attach(tenant_id: str, key: str, t_s: float) -> None:
        attach_label.append(tenant_id)
        fleet.attach(tenant_id, plan_pool[key], now_s=t_s)
        probs.setdefault(tenant_id, [])

    def do_detach(tenant_id: str, t_s: float) -> None:
        detach_reports[tenant_id] = fleet.detach(tenant_id, now_s=t_s)
        # Drain-tick results are pre-detach serves; harvest them before
        # arming the post-detach tripwire for this tenant.
        harvest(fleet.take_drained())
        detached.add(tenant_id)

    rng = np.random.default_rng(seed + 1)
    for tenant_id, key in initial:
        do_attach(tenant_id, key, 0.0)
    for tick_i, ops in enumerate(schedule):
        t_s = float(tick_i)
        # Traffic lands *before* the tick's churn ops, so a detach or
        # swap hits a tenant with frames genuinely in flight — the drain
        # path runs against real pending work, not empty rings.
        live = list(fleet.tenant_ids)
        for j in range(frames_per_tick):
            frame_t = t_s + 0.01 * (j + 1)
            for tenant_id in live:
                row = source[int(rng.integers(len(source)))]
                fleet.submit(tenant_id, frame_t, row)
                frames_submitted += 1
        for op, tenant_id, key in ops:
            if op == "attach":
                do_attach(tenant_id, key, t_s)
            elif op == "detach":
                do_detach(tenant_id, t_s)
            else:
                fleet.replace_plan(tenant_id, plan_pool[key], now_s=t_s)
                harvest(fleet.take_drained())
        harvest(fleet.tick(t_s + 0.5))
    # Final drain-out: one last round of traffic lands and then every
    # remaining tenant detaches, the first with frames still in flight —
    # so the detach-drain path runs on every schedule, not just those
    # whose rolls happened to detach mid-traffic.  Every tenant that
    # ever attached ends DETACHED with a sealed, reconciling ledger.
    final_t = float(len(schedule))
    live = list(fleet.tenant_ids)
    for tenant_id in live:
        row = source[int(rng.integers(len(source)))]
        fleet.submit(tenant_id, final_t, row)
        frames_submitted += 1
    for tenant_id in live:
        do_detach(tenant_id, final_t)
    return probs, observers, detach_reports, post_detach, frames_submitted, fleet


def run_churn_scenario(
    *,
    ticks: int = 24,
    n_initial: int = 6,
    frames_per_tick: int = 2,
    n_inputs: int = 64,
    tile: int = 16,
    n_shards: int = 4,
    rebalance_skew: float = 1.25,
    seed: int = DEFAULT_SEED,
    source: np.ndarray | None = None,
) -> ChurnStats:
    """Run the churn arm: identical tenant churn through both dispatch arms.

    Gates (all deterministic; speed is never gated): fused-vs-unfused
    byte identity over every probability served, per-tenant ledger
    reconciliation for every tenant that ever existed, drain-exact
    detach audits, and zero post-detach serves.
    """
    if ticks < 1:
        raise ConfigurationError("ticks must be >= 1")
    if n_initial < 3:
        raise ConfigurationError("n_initial must be >= 3")
    if frames_per_tick < 1:
        raise ConfigurationError("frames_per_tick must be >= 1")
    initial, schedule = _churn_ops(seed, ticks, n_initial)
    keys = {key for _, key in initial}
    keys |= {key for ops in schedule for _, _, key in ops if key}
    plan_pool = {
        key: _fresh_plan(n_inputs, seed + 7919 + i)
        for i, key in enumerate(sorted(keys))
    }
    if source is None:
        source = _campaign_source(n_inputs, seed)
    replay_args = (
        initial, schedule, plan_pool, source, seed,
        frames_per_tick, n_shards, rebalance_skew, tile,
    )
    f_probs, f_obs, f_reports, f_post, f_submitted, f_fleet = _churn_replay(
        True, *replay_args
    )
    u_probs, u_obs, u_reports, u_post, _, _ = _churn_replay(False, *replay_args)

    byte_identical = set(f_probs) == set(u_probs)
    n_compared = 0
    max_abs_delta = 0.0
    for tenant_id in sorted(f_probs):
        a = np.asarray(f_probs[tenant_id])
        b = np.asarray(u_probs.get(tenant_id, []))
        if a.shape != b.shape:
            byte_identical = False
            continue
        n_compared += a.size
        if not np.array_equal(a, b):
            byte_identical = False
            if a.size:
                max_abs_delta = max(max_abs_delta, float(np.max(np.abs(a - b))))

    ledger_reconciled = True
    for reports, obs_map, arm_probs in (
        (f_reports, f_obs, f_probs),
        (u_reports, u_obs, u_probs),
    ):
        # Every tenant that ever attached must have both an observer and
        # a sealed detach report — churn leaves no orphans.
        if set(reports) != set(obs_map):
            ledger_reconciled = False
            continue
        for tenant_id, observer in obs_map.items():
            ledger = observer.ledger()
            report = reports[tenant_id]
            if ledger["unaccounted"] or ledger["pending"]:
                ledger_reconciled = False
            if ledger["submitted"] != report["frames_in"]:
                ledger_reconciled = False
            if ledger["answered"] != report["frames_out"]:
                ledger_reconciled = False
            if ledger["answered"] != len(arm_probs.get(tenant_id, [])):
                ledger_reconciled = False

    drain_exact = all(
        report["drained"] == report["drain_served"] + report["drain_shed"]
        for reports in (f_reports, u_reports)
        for report in reports.values()
    )
    migrations = int(
        f_fleet.metrics.counter("fleet_rebalance_migrations_total").value
    )
    n_attach_ops = sum(
        1 for ops in schedule for op, _, _ in ops if op == "attach"
    )
    n_swap_ops = sum(1 for ops in schedule for op, _, _ in ops if op == "swap")
    return ChurnStats(
        ticks=ticks,
        tenants_seen=len(f_obs),
        attaches=n_attach_ops,
        detaches=len(f_reports),
        swaps=n_swap_ops,
        migrations=migrations,
        frames_submitted=f_submitted,
        frames_served=sum(len(p) for p in f_probs.values()),
        drained_total=sum(r["drained"] for r in f_reports.values()),
        byte_identical=byte_identical,
        n_compared=n_compared,
        max_abs_delta=max_abs_delta,
        ledger_reconciled=ledger_reconciled,
        drain_exact=drain_exact,
        post_detach_serves=f_post + u_post,
    )


def run_fleet_bench(
    *,
    n_tenants: int = 64,
    frames_per_tenant: int = 64,
    frames_per_tick: int = 4,
    rate_hz: float = 20.0,
    n_inputs: int = 64,
    tile: int = 16,
    distinct_every: int = 8,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    churn_ticks: int = 24,
) -> FleetBenchReport:
    """Run the full fleet benchmark; see the module docstring.

    ``quick`` shrinks the fleet (8 tenants × 16 frames, 12 churn ticks)
    for CI smoke runs while keeping every gate — identity and
    reconciliation are scale-independent invariants.  ``churn_ticks=0``
    disables the churn arm.
    """
    if n_tenants < 1:
        raise ConfigurationError("n_tenants must be >= 1")
    if frames_per_tenant < 1:
        raise ConfigurationError("frames_per_tenant must be >= 1")
    if frames_per_tick < 1:
        raise ConfigurationError("frames_per_tick must be >= 1")
    if rate_hz <= 0:
        raise ConfigurationError("rate_hz must be positive")
    if churn_ticks < 0:
        raise ConfigurationError("churn_ticks must be >= 0")
    if quick:
        n_tenants = min(n_tenants, 8)
        frames_per_tenant = min(frames_per_tenant, 16)
        churn_ticks = min(churn_ticks, 12)

    tenant_ids = [f"room-{i:03d}" for i in range(n_tenants)]
    plans = _build_plans(tenant_ids, n_inputs, distinct_every, seed)
    n_cohorts = len({id(plan) for plan in plans.values()})
    source = _campaign_source(n_inputs, seed)
    traffic = _make_traffic(
        tenant_ids, frames_per_tenant, n_inputs, seed, source=source
    )
    config = ServeConfig(max_latency_ms=None)

    def build_fleet(fusion_enabled: bool, observer_factory=None) -> Fleet:
        fleet = Fleet(
            config,
            tile=tile,
            fusion_enabled=fusion_enabled,
            observer_factory=observer_factory,
        )
        for tenant_id in tenant_ids:
            fleet.attach(tenant_id, plans[tenant_id])
        return fleet

    # Warm the BLAS kernels and allocator once so neither timed arm pays
    # first-call costs (the warmup fleet is discarded).
    warm_ids = tenant_ids[: min(4, n_tenants)]
    warm = build_fleet(True)
    for tenant_id in warm_ids:
        warm.submit(tenant_id, 0.0, traffic[tenant_id][0])
    warm.tick()

    unfused_fleet = build_fleet(False)
    unfused_probs, unfused_wall, _ = _replay(
        unfused_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )
    fused_fleet = build_fleet(True)
    fused_probs, fused_wall, fused_latencies = _replay(
        fused_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )

    # ------------------------------------------------- byte-identity gate
    n_compared = 0
    max_abs_delta = 0.0
    byte_identical = True
    for tenant_id in tenant_ids:
        a = np.asarray(fused_probs[tenant_id])
        b = np.asarray(unfused_probs[tenant_id])
        if a.shape != b.shape:
            byte_identical = False
            continue
        n_compared += a.size
        if not np.array_equal(a, b):
            byte_identical = False
            delta = np.abs(a - b)
            if delta.size:
                max_abs_delta = max(max_abs_delta, float(delta.max()))

    # ------------------------------------- observed (untimed) reconciliation
    observed_fleet = build_fleet(True, observer_factory=lambda: Observer())
    observed_probs, _, _ = _replay(
        observed_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )
    ledger_reconciled = True
    counters_reconciled = True
    for tenant_id in tenant_ids:
        ledger = observed_fleet.ledger(tenant_id)
        counters = observed_fleet.counters(tenant_id)
        if ledger["unaccounted"] or ledger["pending"]:
            ledger_reconciled = False
        if (
            ledger["submitted"] != counters["frames_in"]
            or ledger["answered"] != counters["frames_out"]
            or counters["frames_out"] != len(observed_probs[tenant_id])
        ):
            counters_reconciled = False
        metric_in = observed_fleet.metrics.counter(
            f"fleet_frames_total{{tenant={tenant_id}}}"
        ).value
        metric_out = observed_fleet.metrics.counter(
            f"fleet_frames_out_total{{tenant={tenant_id}}}"
        ).value
        if metric_in != counters["frames_in"] or metric_out != counters["frames_out"]:
            counters_reconciled = False
        if observed_probs[tenant_id] != fused_probs[tenant_id]:
            byte_identical = False

    def arm(fleet: Fleet, probs: dict[str, list[float]], wall: float) -> FleetArmStats:
        ratio = fleet.metrics.gauge("fleet_fusion_ratio").value
        return FleetArmStats(
            wall_s=wall,
            frames=sum(len(p) for p in probs.values()),
            fusion_ratio=float(ratio),
        )

    tenant_latency_ms = {
        tenant_id: {
            "p50_ms": float(np.percentile(samples, 50.0)) if samples else float("nan"),
            "p99_ms": float(np.percentile(samples, 99.0)) if samples else float("nan"),
        }
        for tenant_id, samples in fused_latencies.items()
    }

    churn = None
    if churn_ticks:
        churn = run_churn_scenario(
            ticks=churn_ticks, n_inputs=n_inputs, tile=tile, seed=seed,
            source=source,
        )

    return FleetBenchReport(
        n_tenants=n_tenants,
        frames_per_tenant=frames_per_tenant,
        frames_per_tick=frames_per_tick,
        tile=tile,
        distinct_every=distinct_every,
        n_cohorts=n_cohorts,
        seed=seed,
        fused=arm(fused_fleet, fused_probs, fused_wall),
        unfused=arm(unfused_fleet, unfused_probs, unfused_wall),
        byte_identical=byte_identical,
        n_compared=n_compared,
        max_abs_delta=max_abs_delta,
        ledger_reconciled=ledger_reconciled,
        counters_reconciled=counters_reconciled,
        tenant_latency_ms=tenant_latency_ms,
        churn=churn,
    )
