"""The ``fleet-bench`` harness: fused vs per-tenant serving at fleet scale.

Drives N tenants × M-frames-per-second seeded synthetic traffic (rows
drawn from one simulated campaign) through two identically configured
:class:`~repro.fleet.service.Fleet` instances — fusion on and fusion
off — and reports:

* aggregate throughput of each arm and the fused-vs-unfused speedup;
* per-tenant p50/p99 tick latency (every tenant served in a tick is
  charged that tick's wall time — the latency a room actually sees);
* the **byte-identity gate**: every probability of the fused arm must
  equal the unfused arm's bit for bit.  This is the invariant CI gates
  on; throughput numbers are machine-dependent and informational;
* per-tenant ledger/counter reconciliation from a third, untimed
  replay with live observers (observers stay off the timed arms so the
  comparison measures serving, not event logging).

The tenant population mixes one shared-plan cohort (the common "one
model, many rooms" deployment, fusion-eligible) with every
``distinct_every``-th tenant running its own freshly initialised plan
(the odd-one-out architectures that must fall back to per-tenant
dispatch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..benchkit import DEFAULT_SEED
from ..config import CampaignConfig
from ..data.recording import CollectionCampaign
from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan
from ..nn.modules import Linear, ReLU, Sequential
from ..obs.observer import Observer
from ..serve.config import ServeConfig
from .service import Fleet


@dataclass
class FleetArmStats:
    """Throughput of one timed arm (fused or unfused)."""

    wall_s: float
    frames: int
    fusion_ratio: float

    @property
    def fps(self) -> float:
        return self.frames / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass
class FleetBenchReport:
    """Everything one fleet-bench run measured."""

    n_tenants: int
    frames_per_tenant: int
    frames_per_tick: int
    tile: int
    distinct_every: int
    n_cohorts: int
    seed: int
    fused: FleetArmStats
    unfused: FleetArmStats
    byte_identical: bool
    n_compared: int
    max_abs_delta: float
    ledger_reconciled: bool
    counters_reconciled: bool
    #: tenant → {"p50_ms": …, "p99_ms": …} from the fused arm's ticks.
    tenant_latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Fused aggregate throughput over unfused."""
        return self.fused.fps / self.unfused.fps if self.unfused.fps > 0 else float("inf")

    def describe(self) -> str:
        latency_p99s = [v["p99_ms"] for v in self.tenant_latency_ms.values()]
        worst_p99 = max(latency_p99s) if latency_p99s else float("nan")
        lines = [
            f"tenants              : {self.n_tenants} "
            f"({self.n_cohorts} plan cohort(s), odd-one-out every "
            f"{self.distinct_every})",
            f"traffic              : {self.frames_per_tenant} frames/tenant, "
            f"{self.frames_per_tick}/tick, tile {self.tile}, seed {self.seed}",
            f"unfused dispatch     : {self.unfused.fps:10.0f} frames/s "
            f"({self.unfused.wall_s:.3f} s)",
            f"fused dispatch       : {self.fused.fps:10.0f} frames/s "
            f"({self.fused.wall_s:.3f} s, fusion ratio "
            f"{self.fused.fusion_ratio:.2f})",
            f"speedup              : {self.speedup:10.2f}x",
            f"byte identity        : "
            f"{'OK' if self.byte_identical else 'FAILED'} over "
            f"{self.n_compared} probabilities "
            f"(max |Δp| = {self.max_abs_delta:.3g})",
            f"worst tenant p99     : {worst_p99:10.3f} ms/tick",
            f"ledger reconciliation: "
            f"{'OK' if self.ledger_reconciled else 'FAILED'}",
            f"counter rollups      : "
            f"{'OK' if self.counters_reconciled else 'FAILED'}",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload written as ``BENCH_fleet.json`` (CLI adds envelope).

        ``byte_identical`` (with ``ledger_reconciled``/
        ``counters_reconciled``) are the CI-gated invariants; throughput
        and latency fields are informational.
        """
        return {
            "bench": "fleet-bench",
            "fleet": {
                "n_tenants": self.n_tenants,
                "frames_per_tenant": self.frames_per_tenant,
                "frames_per_tick": self.frames_per_tick,
                "tile": self.tile,
                "distinct_every": self.distinct_every,
                "n_cohorts": self.n_cohorts,
            },
            "identity": {
                "byte_identical": self.byte_identical,
                "n_compared": self.n_compared,
                "max_abs_delta": self.max_abs_delta,
                "ledger_reconciled": self.ledger_reconciled,
                "counters_reconciled": self.counters_reconciled,
            },
            "throughput_fps": {
                "fused": self.fused.fps,
                "unfused": self.unfused.fps,
                "speedup": self.speedup,
                "fusion_ratio": self.fused.fusion_ratio,
            },
            "wall_s": {"fused": self.fused.wall_s, "unfused": self.unfused.wall_s},
            "tenant_latency_ms": self.tenant_latency_ms,
        }


def _build_plans(
    tenant_ids: list[str], n_inputs: int, distinct_every: int, seed: int
) -> dict[str, InferencePlan]:
    """One shared plan for the cohort, fresh plans for odd-one-out tenants."""

    def fresh_plan(plan_seed: int) -> InferencePlan:
        rng = np.random.default_rng(plan_seed)
        model = Sequential(
            Linear(n_inputs, 64, rng=rng),
            ReLU(),
            Linear(64, 32, rng=rng),
            ReLU(),
            Linear(32, 1, rng=rng),
        )
        return InferencePlan.from_model(model)

    shared = fresh_plan(seed)
    plans: dict[str, InferencePlan] = {}
    for i, tenant_id in enumerate(tenant_ids):
        if distinct_every and i % distinct_every == distinct_every - 1:
            plans[tenant_id] = fresh_plan(seed + 1 + i)
        else:
            plans[tenant_id] = shared
    return plans


def _make_traffic(
    tenant_ids: list[str], frames_per_tenant: int, n_inputs: int, seed: int
) -> dict[str, np.ndarray]:
    """Seeded synthetic CSI traffic per tenant, drawn from one campaign."""
    # One small simulated campaign supplies realistic CSI rows; each
    # tenant resamples its own frame sequence from it.
    n_source = 512
    config = CampaignConfig(
        duration_h=n_source / (3600.0 * 0.5), sample_rate_hz=0.5, seed=seed
    )
    dataset = CollectionCampaign(config).run()
    source = dataset.csi[:, :n_inputs]
    if source.shape[1] < n_inputs:
        raise ConfigurationError(
            f"campaign provides {source.shape[1]} subcarriers, bench needs {n_inputs}"
        )
    rng = np.random.default_rng(seed)
    return {
        tenant_id: np.ascontiguousarray(
            source[rng.integers(0, len(source), size=frames_per_tenant)]
        )
        for tenant_id in tenant_ids
    }


def _replay(
    fleet: Fleet,
    tenant_ids: list[str],
    traffic: dict[str, np.ndarray],
    frames_per_tick: int,
    rate_hz: float,
) -> tuple[dict[str, list[float]], float, dict[str, list[float]]]:
    """Run the traffic through one fleet; returns (probs, wall_s, latencies)."""
    probabilities: dict[str, list[float]] = {t: [] for t in tenant_ids}
    latencies: dict[str, list[float]] = {t: [] for t in tenant_ids}
    frames_per_tenant = len(next(iter(traffic.values())))
    n_ticks = -(-frames_per_tenant // frames_per_tick)
    dt = 1.0 / rate_hz
    start = time.perf_counter()
    for tick_i in range(n_ticks):
        lo = tick_i * frames_per_tick
        hi = min(lo + frames_per_tick, frames_per_tenant)
        tick_start = time.perf_counter()
        for tenant_id in tenant_ids:
            rows = traffic[tenant_id]
            for j in range(lo, hi):
                fleet.submit(tenant_id, j * dt, rows[j])
        results = fleet.tick()
        tick_ms = 1000.0 * (time.perf_counter() - tick_start)
        served: set[str] = set()
        for result in results:
            probabilities[result.tenant_id].append(result.probability)
            served.add(result.tenant_id)
        for tenant_id in served:
            latencies[tenant_id].append(tick_ms)
    wall_s = time.perf_counter() - start
    return probabilities, wall_s, latencies


def run_fleet_bench(
    *,
    n_tenants: int = 64,
    frames_per_tenant: int = 64,
    frames_per_tick: int = 4,
    rate_hz: float = 20.0,
    n_inputs: int = 64,
    tile: int = 16,
    distinct_every: int = 8,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> FleetBenchReport:
    """Run the full fleet benchmark; see the module docstring.

    ``quick`` shrinks the fleet (8 tenants × 16 frames) for CI smoke
    runs while keeping every gate — identity and reconciliation are
    scale-independent invariants.
    """
    if n_tenants < 1:
        raise ConfigurationError("n_tenants must be >= 1")
    if frames_per_tenant < 1:
        raise ConfigurationError("frames_per_tenant must be >= 1")
    if frames_per_tick < 1:
        raise ConfigurationError("frames_per_tick must be >= 1")
    if rate_hz <= 0:
        raise ConfigurationError("rate_hz must be positive")
    if quick:
        n_tenants = min(n_tenants, 8)
        frames_per_tenant = min(frames_per_tenant, 16)

    tenant_ids = [f"room-{i:03d}" for i in range(n_tenants)]
    plans = _build_plans(tenant_ids, n_inputs, distinct_every, seed)
    n_cohorts = len({id(plan) for plan in plans.values()})
    traffic = _make_traffic(tenant_ids, frames_per_tenant, n_inputs, seed)
    config = ServeConfig(max_latency_ms=None)

    def build_fleet(fusion_enabled: bool, observer_factory=None) -> Fleet:
        fleet = Fleet(
            config,
            tile=tile,
            fusion_enabled=fusion_enabled,
            observer_factory=observer_factory,
        )
        for tenant_id in tenant_ids:
            fleet.attach(tenant_id, plans[tenant_id])
        return fleet

    # Warm the BLAS kernels and allocator once so neither timed arm pays
    # first-call costs (the warmup fleet is discarded).
    warm_ids = tenant_ids[: min(4, n_tenants)]
    warm = build_fleet(True)
    for tenant_id in warm_ids:
        warm.submit(tenant_id, 0.0, traffic[tenant_id][0])
    warm.tick()

    unfused_fleet = build_fleet(False)
    unfused_probs, unfused_wall, _ = _replay(
        unfused_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )
    fused_fleet = build_fleet(True)
    fused_probs, fused_wall, fused_latencies = _replay(
        fused_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )

    # ------------------------------------------------- byte-identity gate
    n_compared = 0
    max_abs_delta = 0.0
    byte_identical = True
    for tenant_id in tenant_ids:
        a = np.asarray(fused_probs[tenant_id])
        b = np.asarray(unfused_probs[tenant_id])
        if a.shape != b.shape:
            byte_identical = False
            continue
        n_compared += a.size
        if not np.array_equal(a, b):
            byte_identical = False
            delta = np.abs(a - b)
            if delta.size:
                max_abs_delta = max(max_abs_delta, float(delta.max()))

    # ------------------------------------- observed (untimed) reconciliation
    observed_fleet = build_fleet(True, observer_factory=lambda: Observer())
    observed_probs, _, _ = _replay(
        observed_fleet, tenant_ids, traffic, frames_per_tick, rate_hz
    )
    ledger_reconciled = True
    counters_reconciled = True
    for tenant_id in tenant_ids:
        ledger = observed_fleet.ledger(tenant_id)
        counters = observed_fleet.counters(tenant_id)
        if ledger["unaccounted"] or ledger["pending"]:
            ledger_reconciled = False
        if (
            ledger["submitted"] != counters["frames_in"]
            or ledger["answered"] != counters["frames_out"]
            or counters["frames_out"] != len(observed_probs[tenant_id])
        ):
            counters_reconciled = False
        metric_in = observed_fleet.metrics.counter(
            f"fleet_frames_total{{tenant={tenant_id}}}"
        ).value
        metric_out = observed_fleet.metrics.counter(
            f"fleet_frames_out_total{{tenant={tenant_id}}}"
        ).value
        if metric_in != counters["frames_in"] or metric_out != counters["frames_out"]:
            counters_reconciled = False
        if observed_probs[tenant_id] != fused_probs[tenant_id]:
            byte_identical = False

    def arm(fleet: Fleet, probs: dict[str, list[float]], wall: float) -> FleetArmStats:
        ratio = fleet.metrics.gauge("fleet_fusion_ratio").value
        return FleetArmStats(
            wall_s=wall,
            frames=sum(len(p) for p in probs.values()),
            fusion_ratio=float(ratio),
        )

    tenant_latency_ms = {
        tenant_id: {
            "p50_ms": float(np.percentile(samples, 50.0)) if samples else float("nan"),
            "p99_ms": float(np.percentile(samples, 99.0)) if samples else float("nan"),
        }
        for tenant_id, samples in fused_latencies.items()
    }

    return FleetBenchReport(
        n_tenants=n_tenants,
        frames_per_tenant=frames_per_tenant,
        frames_per_tick=frames_per_tick,
        tile=tile,
        distinct_every=distinct_every,
        n_cohorts=n_cohorts,
        seed=seed,
        fused=arm(fused_fleet, fused_probs, fused_wall),
        unfused=arm(unfused_fleet, unfused_probs, unfused_wall),
        byte_identical=byte_identical,
        n_compared=n_compared,
        max_abs_delta=max_abs_delta,
        ledger_reconciled=ledger_reconciled,
        counters_reconciled=counters_reconciled,
        tenant_latency_ms=tenant_latency_ms,
    )
