"""Room-sharded registry of frozen plans, keyed by tenant id.

A fleet process serves many rooms ("tenants") from one address space.
:class:`PlanRegistry` owns the mapping ``tenant_id →``
:class:`~repro.fastpath.plan.InferencePlan`, sharded by a stable hash of
the tenant id so lookup structures stay small as fleets grow to
thousands of rooms (and so a future multi-process split can adopt the
shard boundaries unchanged).

Fusion eligibility hangs off :class:`PlanSignature`: two tenants may be
served by one batched GEMM only when their plans are *indistinguishable
to BLAS* — same layer geometry, same activations, same bias layout,
same scaler folding **and byte-identical executable weights**.  The
weight digest is deliberately part of the signature: OpenBLAS picks
different kernel strategies for different operand shapes, and a fused
GEMM over stacked *distinct* weight matrices (a 3-D batched matmul) does
not reproduce the 2-D per-tenant results bitwise.  Sharing one weight
matrix across the fused rows keeps the arithmetic literally the same
instruction stream — the only fusion the byte-identity gate can accept.
In deployment terms the shared-weights cohort is the common case: one
trained occupancy model rolled out to every room of a building, with
per-room tenancy only in the guard/observer state.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..fastpath.plan import InferencePlan


@dataclass(frozen=True)
class PlanSignature:
    """Identity of a plan's executable arithmetic.

    Two plans with equal signatures run the exact same float32 GEMM
    chain over the exact same bytes of weights — the precondition for
    fusing their tenants' frames into one batched call.
    """

    #: Feature width the plan consumes.
    n_inputs: int
    #: Per executable step: ``(out_features, activation, has_bias)``.
    steps: tuple[tuple[int, str, bool], ...]
    #: Whether a scaler was folded into step 0.
    scaled: bool
    #: SHA-1 over the executable weight/bias bytes (scaler already folded).
    weights_digest: str

    @classmethod
    def of(cls, plan: InferencePlan) -> "PlanSignature":
        """Compute the signature of one plan (hashes the weight bytes)."""
        digest = hashlib.sha1()
        steps = []
        for weight, bias, activation in plan.exec_steps:
            steps.append((int(weight.shape[1]), activation, bias is not None))
            digest.update(weight.tobytes())
            if bias is not None:
                digest.update(bias.tobytes())
        return cls(
            n_inputs=plan.n_inputs,
            steps=tuple(steps),
            scaled=plan.input_mean is not None,
            weights_digest=digest.hexdigest(),
        )

    @property
    def arch(self) -> str:
        """Human-readable architecture key, e.g. ``"66->128->64->1"``."""
        widths = [self.n_inputs] + [out for out, _, _ in self.steps]
        return "->".join(str(w) for w in widths)

    def __str__(self) -> str:
        return f"{self.arch}#{self.weights_digest[:8]}"


class PlanRegistry:
    """Tenant → frozen plan mapping, sharded by tenant-id hash.

    Registration is explicit and conflict-checked: a tenant id maps to
    exactly one plan, and re-registering it raises rather than silently
    swapping the model a room is served by.  Signatures are computed once
    at registration (hashing megabytes of weights per submit would be
    absurd) and cached alongside the plan.
    """

    def __init__(self, n_shards: int = 16) -> None:
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self._shards: list[dict[str, InferencePlan]] = [{} for _ in range(n_shards)]
        self._signatures: dict[str, PlanSignature] = {}
        # Explicit shard overrides written by rebalance(); a tenant with no
        # override lives on its hash home shard.  Consistent-hash-style
        # stability: only tenants the rebalancer *chose* to move carry an
        # entry, everyone else keeps the process-independent hash mapping.
        self._assigned: dict[str, int] = {}

    # ------------------------------------------------------------- sharding

    def home_shard(self, tenant_id: str) -> int:
        """The pure-hash shard a tenant maps to absent any rebalancing."""
        digest = hashlib.sha1(tenant_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.n_shards

    def shard_of(self, tenant_id: str) -> int:
        """Current shard index: a rebalance override, else the hash home."""
        assigned = self._assigned.get(tenant_id)
        return assigned if assigned is not None else self.home_shard(tenant_id)

    def shard_counts(self) -> tuple[int, ...]:
        """Tenants currently resident on each shard, by shard index."""
        return tuple(len(shard) for shard in self._shards)

    def skew(self) -> float:
        """Max per-shard tenant count over the mean count (0.0 when empty).

        A perfectly balanced registry has skew 1.0; the value the
        rebalancer compares against its configured ratio.
        """
        n = len(self._signatures)
        if n == 0:
            return 0.0
        return max(self.shard_counts()) * self.n_shards / n

    def rebalance(self, max_skew: float = 2.0) -> list[tuple[str, int, int]]:
        """Migrate tenants off overloaded shards; returns the migrations.

        A shard is overloaded when its tenant count exceeds
        ``ceil(mean * max_skew)`` (never below 1).  Each pass moves the
        lexicographically-smallest tenant from the fullest shard to the
        emptiest until no shard is overloaded — deterministic, and
        **stable**: tenants on shards within the ceiling are never
        touched, so repeated passes over an unchanged population are
        no-ops.  Moved tenants get an explicit assignment override
        (cleared on :meth:`remove`), so the migration survives later
        lookups without perturbing anyone else's hash mapping.

        Returned tuples are ``(tenant_id, from_shard, to_shard)``.
        """
        if max_skew < 1.0:
            raise ConfigurationError("max_skew must be >= 1.0")
        n = len(self._signatures)
        if n == 0:
            return []
        ceiling = max(1, math.ceil(n / self.n_shards * max_skew))
        counts = [len(shard) for shard in self._shards]
        migrations: list[tuple[str, int, int]] = []
        while True:
            src = max(range(self.n_shards), key=counts.__getitem__)
            if counts[src] <= ceiling:
                break
            dst = min(range(self.n_shards), key=counts.__getitem__)
            tenant_id = min(self._shards[src])
            self._shards[dst][tenant_id] = self._shards[src].pop(tenant_id)
            self._assigned[tenant_id] = dst
            counts[src] -= 1
            counts[dst] += 1
            migrations.append((tenant_id, src, dst))
        return migrations

    # ------------------------------------------------------------ CRUD-ish

    def register(self, tenant_id: str, plan: InferencePlan) -> PlanSignature:
        """Bind a tenant to its frozen plan; returns the plan signature."""
        if not tenant_id:
            raise ConfigurationError("tenant_id must be a non-empty string")
        if not isinstance(plan, InferencePlan):
            raise ConfigurationError(
                f"PlanRegistry holds InferencePlan instances, got {type(plan).__name__}"
            )
        if plan.n_outputs != 1:
            raise ConfigurationError(
                f"fleet serving needs single-output plans, tenant {tenant_id!r} "
                f"has {plan.n_outputs} outputs"
            )
        shard = self._shards[self.shard_of(tenant_id)]
        if tenant_id in shard:
            raise ConfigurationError(f"tenant {tenant_id!r} is already registered")
        shard[tenant_id] = plan
        signature = PlanSignature.of(plan)
        self._signatures[tenant_id] = signature
        return signature

    def replace_plan(self, tenant_id: str, plan: InferencePlan) -> PlanSignature:
        """Atomically swap the plan an existing tenant is served by.

        The inverse of :meth:`register`'s conflict check: the tenant must
        already exist, and the replacement must consume the same feature
        width (a width change would invalidate every frame already
        validated against the old plan's geometry).  The swap is a single
        dict assignment — a reader sees either the old plan or the new
        one, never a torn state.  Draining in-flight frames first is the
        caller's job (:meth:`repro.fleet.service.Fleet.replace_plan`,
        :meth:`repro.serve.engine.InferenceEngine.replace_estimator`).
        """
        if not isinstance(plan, InferencePlan):
            raise ConfigurationError(
                f"PlanRegistry holds InferencePlan instances, got {type(plan).__name__}"
            )
        shard = self._shards[self.shard_of(tenant_id)]
        if tenant_id not in shard:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        if plan.n_outputs != 1:
            raise ConfigurationError(
                f"fleet serving needs single-output plans, tenant {tenant_id!r} "
                f"replacement has {plan.n_outputs} outputs"
            )
        old = shard[tenant_id]
        if plan.n_inputs != old.n_inputs:
            raise ConfigurationError(
                f"replacement plan for tenant {tenant_id!r} consumes "
                f"{plan.n_inputs} inputs, the registered plan consumes "
                f"{old.n_inputs}"
            )
        shard[tenant_id] = plan
        signature = PlanSignature.of(plan)
        self._signatures[tenant_id] = signature
        return signature

    def remove(self, tenant_id: str) -> InferencePlan:
        """Unregister a tenant; returns the plan it was served by."""
        shard = self._shards[self.shard_of(tenant_id)]
        if tenant_id not in shard:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        del self._signatures[tenant_id]
        self._assigned.pop(tenant_id, None)
        return shard.pop(tenant_id)

    def has_signature(self, signature: PlanSignature) -> bool:
        """True when at least one registered tenant carries ``signature``."""
        return any(sig == signature for sig in self._signatures.values())

    def get(self, tenant_id: str) -> InferencePlan:
        shard = self._shards[self.shard_of(tenant_id)]
        if tenant_id not in shard:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        return shard[tenant_id]

    def signature(self, tenant_id: str) -> PlanSignature:
        if tenant_id not in self._signatures:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        return self._signatures[tenant_id]

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    @property
    def tenants(self) -> tuple[str, ...]:
        """All registered tenant ids, in registration order."""
        return tuple(self._signatures)

    def cohorts(self) -> dict[PlanSignature, tuple[str, ...]]:
        """Tenants grouped by signature — the fusion-eligible sets."""
        grouped: dict[PlanSignature, list[str]] = {}
        for tenant_id, signature in self._signatures.items():
            grouped.setdefault(signature, []).append(tenant_id)
        return {sig: tuple(ids) for sig, ids in grouped.items()}
