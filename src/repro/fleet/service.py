"""The fleet facade: tenant-scoped serving over the fusion scheduler.

:class:`Fleet` is the multi-room counterpart of
:class:`~repro.serve.engine.InferenceEngine`.  One process serves many
tenants, each bound to a frozen :class:`~repro.fastpath.plan.InferencePlan`
via the :class:`~repro.fleet.registry.PlanRegistry`; submissions land in
per-tenant ring buffers (:class:`~repro.fleet.router.FleetRouter`) and a
:meth:`Fleet.tick` drains every ring through the
:class:`~repro.fleet.fusion.FusionScheduler`, fusing same-signature
cohorts into single batched GEMMs.

Tenant lifecycle (the elasticity contract):

.. code-block:: text

    attach()            detach()              ring empty, ledger sealed
      │    ┌──────────┐   │    ┌──────────┐    │    ┌──────────┐
      └──► │ ATTACHED │ ──┴──► │ DRAINING │ ───┴──► │ DETACHED │
           └──────────┘        └──────────┘         └──────────┘
            submit/tick         real ticks serve     submit raises;
            serve normally      the ring; submit     final counters
                                is closed            archived

``detach`` never drops silently: the tenant's ring is drained through
*real* :meth:`Fleet.tick` calls (the same scheduler, guards and governor
every other frame saw), and the returned counters prove it —
``drained == drain_served + drain_shed`` exactly, or detach raises.
Results produced by lifecycle-internal ticks (the cutover tick of
:meth:`replace_plan`, the drain ticks of :meth:`detach`) are never lost:
they accumulate in a spill buffer the caller harvests via
:meth:`take_drained`.

Isolation guarantees (the part that makes multi-tenancy honest):

* **guard state is per tenant** — each ``attach`` builds fresh
  validator/repairer/supervisor instances from the shared
  :class:`~repro.serve.config.ServeConfig` recipe, so one room's circuit
  breaker trips, drift windows and cadence state never bleed into
  another's;
* **observer ledgers are per tenant** — pass ``observer_factory`` and
  each tenant gets its own :class:`~repro.obs.observer.Observer`, whose
  ledger reconciles independently
  (``submitted + fills == answered + rejected + quarantined +
  policy_rejected + stale + overflow + rate_limited + deadline_expired
  + shed + pending``);
* **metrics are shared but labeled** — per-tenant rollups use the brace
  convention (``fleet_frames_total{tenant=room-12}``) that
  :func:`repro.obs.exposition.render_prometheus` renders as one labeled
  family, next to aggregate fleet counters and the fusion ratio.

The supervisor mapping differs from the engine's in one deliberate way:
a fleet has no per-tenant fallback predictor tier, so a supervisor
decision of FALLBACK or REJECT (or a primary failure) *sheds* that
tenant's tick as ``policy_rejected`` rather than serving degraded
answers.  Shedding is per tenant — the rest of the fleet's tick fuses
and serves normally.
"""

from __future__ import annotations

import enum
import time

import numpy as np

from ..data.streaming import SmoothingDebouncer, Transition, check_csi_row
from ..exceptions import ConfigurationError, ServingError, ShapeError, StreamError
from ..fastpath.plan import InferencePlan
from ..guard.supervisor import RecoverySupervisor, ServingMode
from ..guard.validation import QuarantineBuffer, QuarantinedFrame
from ..nn.modules import Module
from ..obs.observer import NULL_OBSERVER
from ..overload.deadline import deadline_for, expired
from ..overload.governor import SaturationGovernor, ServiceMode
from ..overload.limiter import RateLimiter
from ..serve.config import ServeConfig
from ..serve.engine import InferenceResult
from ..serve.metrics import MetricsRegistry
from ..serve.robustness import LinkHealth
from ..serve.types import FrameTicket
from .fusion import FusionScheduler, TenantBatch
from .registry import PlanRegistry, PlanSignature
from .router import FleetRouter, TenantFrame


class TenantLifecycle(enum.Enum):
    """Where a tenant is in its attach → drain → detach life."""

    ATTACHED = "attached"  #: serving normally; submit admits frames
    DRAINING = "draining"  #: detach in progress; ring served, submit closed
    DETACHED = "detached"  #: gone; ledger sealed and archived


class _TenantState:
    """Everything one tenant owns besides its registered plan."""

    def __init__(self, config: ServeConfig, metrics: MetricsRegistry, observer) -> None:
        self.lifecycle = TenantLifecycle.ATTACHED
        self.debouncer = SmoothingDebouncer(config.window, config.hold_frames)
        self.health = LinkHealth.IDLE
        self.observer = observer
        validator, repairer, supervisor = config.build_guards(registry=metrics)
        self.validator = validator
        self.repairer = repairer
        self.supervisor = supervisor if supervisor is not None else RecoverySupervisor()
        self.supervisor.bind_registry(metrics)
        self.supervisor.bind_observer(observer)
        self.quarantine = QuarantineBuffer() if validator is not None else None
        # Ledger-side tallies, mirroring the engine's per-link accounting.
        self.frames_in = 0
        self.frames_out = 0
        self.rejected = 0
        self.quarantined = 0
        self.repaired = 0
        self.policy_rejected = 0
        self.stale_dropped = 0
        self.overflow_dropped = 0
        # Overload control plane tallies (always zero when unconfigured).
        self.rate_limited = 0
        self.deadline_expired = 0
        self.overload_shed = 0

    def counters(self) -> dict[str, int]:
        return {
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "repaired": self.repaired,
            "policy_rejected": self.policy_rejected,
            "stale_dropped": self.stale_dropped,
            "overflow_dropped": self.overflow_dropped,
            "rate_limited": self.rate_limited,
            "deadline_expired": self.deadline_expired,
            "overload_shed": self.overload_shed,
        }


class Fleet:
    """Tenant-scoped, fusion-scheduled serving for many rooms at once.

    Parameters
    ----------
    config:
        Shared :class:`~repro.serve.config.ServeConfig` recipe.  Queue
        bounds apply *per tenant ring*; guard settings are rebuilt as
        fresh instances per tenant; ``config.registry`` (when set) is the
        shared metrics sink.
    plans:
        Optional pre-populated :class:`~repro.fleet.registry.PlanRegistry`;
        tenants registered there before construction still need
        :meth:`attach` to grow serving state.
    tile:
        Fixed GEMM tile size for the shape-stable runners (see
        :mod:`repro.fleet.fusion`).
    fusion_enabled:
        ``False`` forces per-tenant dispatch — the benchmark control arm.
    observer_factory:
        Zero-argument callable yielding one observer per tenant;
        defaults to the no-op :data:`~repro.obs.observer.NULL_OBSERVER`.
    rebalance_skew:
        Skew ratio (max per-shard tenant count over the mean) above which
        a shard-rebalance pass runs automatically after every attach and
        detach; ``None`` disables automatic rebalancing (explicit
        :meth:`rebalance` calls still work).
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        plans: PlanRegistry | None = None,
        tile: int = 16,
        fusion_enabled: bool = True,
        observer_factory=None,
        rebalance_skew: float | None = None,
    ) -> None:
        if rebalance_skew is not None and rebalance_skew < 1.0:
            raise ConfigurationError("rebalance_skew must be >= 1.0 (or None)")
        self.rebalance_skew = rebalance_skew
        self.config = config if config is not None else ServeConfig()
        self.metrics = (
            self.config.registry if self.config.registry is not None else MetricsRegistry()
        )
        self.plans = plans if plans is not None else PlanRegistry()
        self.router = FleetRouter(capacity=self.config.queue_capacity)
        self.scheduler = FusionScheduler(tile=tile, fusion_enabled=fusion_enabled)
        self._observer_factory = observer_factory
        self._tenants: dict[str, _TenantState] = {}
        #: Per-tenant rollout managers (see :mod:`repro.rollout.promote`),
        #: fed every served batch from :meth:`tick`.
        self._rollouts: dict[str, object] = {}
        #: Final counters of every tenant that ever detached, keyed by id.
        self._detached: dict[str, dict[str, int]] = {}
        #: Results produced by lifecycle-internal ticks (replace_plan
        #: cutover, detach drain) — harvested via :meth:`take_drained`.
        self._drained_results: list[InferenceResult] = []
        self._now_s = -np.inf
        self._frame_seq = 0
        # Overload control plane — inert unless configured (see the
        # engine's mirror wiring; fleet governor events go to metrics
        # only, since mode is fleet-wide and ledgers are per tenant).
        self.limiter = (
            RateLimiter(self.config.rate_limit_hz, self.config.rate_limit_burst)
            if self.config.rate_limit_hz is not None
            else None
        )
        self.deadline_s = (
            None
            if self.config.deadline_ms is None
            else self.config.deadline_ms / 1000.0
        )
        self.governor = None
        if self.config.overload is not None:
            budget_s = self.deadline_s
            if budget_s is None and self.config.max_latency_ms is not None:
                budget_s = self.config.max_latency_ms / 1000.0
            self.governor = SaturationGovernor(
                self.config.overload,
                capacity=self.config.queue_capacity,
                latency_budget_s=budget_s,
                registry=self.metrics,
            )

    # -------------------------------------------------------------- tenants

    def attach(
        self, tenant_id: str, model, scaler=None, now_s: float | None = None
    ) -> PlanSignature:
        """Register a tenant and build its isolated serving state.

        ``model`` may be a frozen :class:`~repro.fastpath.plan.InferencePlan`
        or a trainable :class:`~repro.nn.modules.Sequential` (frozen here,
        with the optional ``scaler`` folded in).  The tenant enters the
        lifecycle ATTACHED; a previously detached id may re-attach as a
        fresh tenant (its archived ledger is released).
        """
        plan = self._freeze(model, scaler)
        signature = self.plans.register(tenant_id, plan)
        observer = (
            self._observer_factory() if self._observer_factory is not None else NULL_OBSERVER
        )
        observer.bind_registry(self.metrics)
        self._tenants[tenant_id] = _TenantState(self.config, self.metrics, observer)
        self._detached.pop(tenant_id, None)
        if observer.enabled:
            observer.emit(
                "fleet.attach",
                t_s=self._stamp(now_s),
                link_id=tenant_id,
                shard=self.plans.shard_of(tenant_id),
                digest=signature.weights_digest[:8],
            )
        self.metrics.counter("fleet_attaches_total").inc()
        self.metrics.gauge("fleet_tenants").set(len(self._tenants))
        self._rescale_governor()
        self._update_shard_gauges()
        self._maybe_rebalance(now_s)
        return signature

    def _stamp(self, now_s: float | None) -> float:
        """Stream-time stamp for lifecycle events (0.0 before any traffic)."""
        if now_s is not None:
            self._now_s = max(self._now_s, float(now_s))
        return self._now_s if np.isfinite(self._now_s) else 0.0

    def _rescale_governor(self) -> None:
        # The ring bound is per tenant, so fleet-wide capacity (what the
        # saturation score normalises backlog by) scales with headcount.
        if self.governor is not None:
            self.governor.capacity = self.config.queue_capacity * max(
                1, len(self._tenants)
            )

    @property
    def mode(self) -> ServiceMode:
        """The governor's current degradation rung (FULL when ungoverned)."""
        return ServiceMode.FULL if self.governor is None else self.governor.mode

    def _freeze(self, model, scaler) -> InferencePlan:
        if isinstance(model, InferencePlan):
            return model
        if isinstance(model, Module):
            return InferencePlan.from_model(model, scaler=scaler)
        raise ConfigurationError(
            f"attach needs an InferencePlan or Sequential, got {type(model).__name__}"
        )

    def replace_plan(
        self, tenant_id: str, model, scaler=None, now_s: float | None = None
    ) -> PlanSignature:
        """Hot-swap one tenant's plan with drain-before-swap semantics.

        Every frame admitted before this call is served by the *old* plan
        (full :meth:`tick` calls run first — the cutover ticks, whose
        results land in the :meth:`take_drained` spill), then the
        registry binding flips atomically and a ``fleet.plan_swap`` event
        marks the cutover on the tenant's observer.  No frame is dropped
        or re-routed: the ledger stays exact through the swap.  When the
        replacement carries a different :class:`PlanSignature`, the
        tenant's fusion cohort re-keys from the next tick, and the old
        cohort's cached runner is evicted once its last tenant leaves it.
        """
        state = self._tenant(tenant_id)
        if state.lifecycle is not TenantLifecycle.ATTACHED:
            raise ConfigurationError(
                f"tenant {tenant_id!r} is {state.lifecycle.value}; "
                f"plans can only be replaced while attached"
            )
        plan = self._freeze(model, scaler)
        while self.router.depth(tenant_id):
            self._drained_results.extend(self.tick(now_s))
        old = self.plans.signature(tenant_id)
        signature = self.plans.replace_plan(tenant_id, plan)
        if old != signature and not self.plans.has_signature(old):
            self.scheduler.evict(old)
        self.metrics.counter("fleet_plan_swaps_total").inc()
        if state.observer.enabled:
            state.observer.emit(
                "fleet.plan_swap",
                t_s=self._stamp(now_s),
                link_id=tenant_id,
                old_digest=old.weights_digest[:8],
                new_digest=signature.weights_digest[:8],
                new_version=plan.version,
            )
        return signature

    #: Per-tenant counter keys a drain tick can move a frame into besides
    #: ``frames_out`` — the typed shed causes of the drain reconciliation.
    _DRAIN_SHED_KEYS = (
        "policy_rejected",
        "stale_dropped",
        "deadline_expired",
        "overload_shed",
    )

    def detach(self, tenant_id: str, now_s: float | None = None) -> dict[str, int]:
        """Remove a tenant after draining its ring through real ticks.

        The lifecycle walks ATTACHED → DRAINING → DETACHED: an attached
        rollout manager is aborted first (its shadow ledger closes), the
        tenant's ring is then served to empty by repeated :meth:`tick`
        calls — the same scheduler, guards and governor every other frame
        saw, so drained frames may legitimately be served *or* shed, but
        never dropped silently — and finally a ``fleet.detach`` event
        seals the observer and the binding is removed.

        Returns the tenant's final counters plus the drain audit:
        ``drained`` (frames pending when detach began), ``drain_served``
        and ``drain_shed``.  ``drained == drain_served + drain_shed`` is
        enforced — a mismatch raises :class:`~repro.exceptions.ServingError`
        rather than un-reconciling the ledger.  Results the drain ticks
        produced (for this tenant and any other with pending work) are in
        the :meth:`take_drained` spill.
        """
        state = self._tenant(tenant_id)
        if state.lifecycle is not TenantLifecycle.ATTACHED:
            raise ConfigurationError(
                f"tenant {tenant_id!r} is already {state.lifecycle.value}"
            )
        manager = self._rollouts.pop(tenant_id, None)
        if manager is not None and hasattr(manager, "abort"):
            manager.abort(self._stamp(now_s))
        state.lifecycle = TenantLifecycle.DRAINING
        drained = self.router.depth(tenant_id)
        served_before = state.frames_out
        before = state.counters()
        while self.router.depth(tenant_id):
            self._drained_results.extend(self.tick(now_s))
        drain_served = state.frames_out - served_before
        drain_shed = sum(
            state.counters()[key] - before[key] for key in self._DRAIN_SHED_KEYS
        )
        if drained != drain_served + drain_shed:
            raise ServingError(
                f"detach drain for tenant {tenant_id!r} does not reconcile: "
                f"{drained} drained != {drain_served} served + {drain_shed} shed"
            )
        final = state.counters()
        final["drained"] = drained
        final["drain_served"] = drain_served
        final["drain_shed"] = drain_shed
        if state.observer.enabled:
            state.observer.emit(
                "fleet.detach",
                t_s=self._stamp(now_s),
                link_id=tenant_id,
                frames_in=final["frames_in"],
                frames_out=final["frames_out"],
                drained=drained,
                drain_served=drain_served,
                drain_shed=drain_shed,
            )
        state.lifecycle = TenantLifecycle.DETACHED
        signature = self.plans.signature(tenant_id)
        self.plans.remove(tenant_id)
        if not self.plans.has_signature(signature):
            self.scheduler.evict(signature)
        del self._tenants[tenant_id]
        self.router.forget(tenant_id)
        self._detached[tenant_id] = final
        self.metrics.counter("fleet_detaches_total").inc()
        self.metrics.gauge("fleet_tenants").set(len(self._tenants))
        self._rescale_governor()
        self._update_shard_gauges()
        self._maybe_rebalance(now_s)
        return final

    def take_drained(self) -> list[InferenceResult]:
        """Harvest (and clear) results produced by lifecycle-internal ticks.

        :meth:`replace_plan` and :meth:`detach` run real ticks to drain
        rings; those ticks serve every pending tenant, and their results
        would otherwise be invisible to the caller.  They spill here
        instead — zero silent drops extends to the *results*, not just
        the counts.
        """
        results = self._drained_results
        self._drained_results = []
        return results

    def lifecycle(self, tenant_id: str) -> TenantLifecycle:
        """A tenant's lifecycle state (DETACHED survives removal)."""
        state = self._tenants.get(tenant_id)
        if state is not None:
            return state.lifecycle
        if tenant_id in self._detached:
            return TenantLifecycle.DETACHED
        raise ConfigurationError(f"unknown tenant {tenant_id!r}")

    def detached_ledger(self, tenant_id: str) -> dict[str, int]:
        """The archived final counters of a detached tenant."""
        if tenant_id not in self._detached:
            raise ConfigurationError(f"no detached tenant {tenant_id!r}")
        return dict(self._detached[tenant_id])

    @property
    def detached_tenants(self) -> tuple[str, ...]:
        """Tenants that have detached (and not re-attached), detach order."""
        return tuple(self._detached)

    # ------------------------------------------------------------ rebalance

    def rebalance(
        self, max_skew: float | None = None, now_s: float | None = None
    ) -> list[tuple[str, int, int]]:
        """Run one shard-rebalance pass; returns the migrations applied.

        Emits one ``fleet.rebalance`` event per migrated tenant (on that
        tenant's observer) and refreshes the ``fleet_shard_tenants{shard=…}``
        gauges.  Tenants on shards within the skew ceiling never move.
        """
        skew = max_skew if max_skew is not None else self.rebalance_skew
        if skew is None:
            raise ConfigurationError(
                "rebalance needs max_skew (or a fleet-level rebalance_skew)"
            )
        migrations = self.plans.rebalance(skew)
        t = self._stamp(now_s)
        for tenant_id, src, dst in migrations:
            self.metrics.counter("fleet_rebalance_migrations_total").inc()
            state = self._tenants.get(tenant_id)
            if state is not None and state.observer.enabled:
                state.observer.emit(
                    "fleet.rebalance",
                    t_s=t,
                    link_id=tenant_id,
                    from_shard=src,
                    to_shard=dst,
                )
        if migrations:
            self.metrics.counter("fleet_rebalance_passes_total").inc()
        self._update_shard_gauges()
        return migrations

    def _maybe_rebalance(self, now_s: float | None) -> None:
        if (
            self.rebalance_skew is not None
            and self.plans.skew() > self.rebalance_skew
        ):
            self.rebalance(self.rebalance_skew, now_s)

    def _update_shard_gauges(self) -> None:
        for shard, count in enumerate(self.plans.shard_counts()):
            self.metrics.gauge(f"fleet_shard_tenants{{shard={shard}}}").set(count)
        self.metrics.gauge("fleet_shard_skew").set(self.plans.skew())

    # -------------------------------------------------------------- rollout

    def attach_rollout(self, tenant_id: str, manager) -> None:
        """Bind a rollout manager to one tenant; it sees every served batch.

        ``manager`` follows the :class:`repro.rollout.promote.RolloutManager`
        duck type: an ``on_batch(frames, rows, probabilities, now_s)``
        called after the tenant's results are emitted each tick.
        """
        self._tenant(tenant_id)  # raises on unknown tenants
        self._rollouts[tenant_id] = manager

    def detach_rollout(self, tenant_id: str):
        """Unbind and return the tenant's rollout manager (None when absent)."""
        return self._rollouts.pop(tenant_id, None)

    def _tenant(self, tenant_id: str) -> _TenantState:
        state = self._tenants.get(tenant_id)
        if state is None:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}; attach it first")
        return state

    @property
    def tenant_ids(self) -> tuple[str, ...]:
        """Attached tenants, in attach order."""
        return tuple(self._tenants)

    def health(self, tenant_id: str) -> LinkHealth:
        """One tenant's serving health (IDLE until its first result)."""
        return self._tenant(tenant_id).health

    def state(self, tenant_id: str) -> int:
        """One tenant's current debounced occupancy state (0/1)."""
        return self._tenant(tenant_id).debouncer.state

    def ledger(self, tenant_id: str) -> dict[str, int]:
        """The tenant observer's frame ledger (all zeros when untraced)."""
        return self._tenant(tenant_id).observer.ledger()

    def counters(self, tenant_id: str) -> dict[str, int]:
        """The fleet-side per-tenant tallies (engine ``_LinkState`` parity)."""
        return self._tenant(tenant_id).counters()

    # --------------------------------------------------------------- submit

    def submit(self, tenant_id: str, t_s: float, csi_row: np.ndarray) -> FrameTicket:
        """Admit one frame into the tenant's ring; results come from tick.

        The returned :class:`~repro.serve.types.FrameTicket` carries the
        admission outcome; its ``results`` tuple is always empty because
        fleet inference is tick-driven, never submit-driven.  Only
        ATTACHED tenants admit frames: a DRAINING or DETACHED tenant
        raises, so no frame can slip in behind a drain.
        """
        state = self._tenant(tenant_id)
        if state.lifecycle is not TenantLifecycle.ATTACHED:
            raise ConfigurationError(
                f"tenant {tenant_id!r} is {state.lifecycle.value}; "
                f"submissions are closed"
            )
        obs = state.observer
        tracing = obs.enabled
        frame_id = self._frame_seq
        self._frame_seq += 1
        t_f = float(t_s)
        if tracing:
            obs.frame_submitted(frame_id, tenant_id, t_f)
        try:
            csi_row = check_csi_row(csi_row)
        except (ShapeError, StreamError):
            state.rejected += 1
            self.metrics.counter("fleet_frames_rejected").inc()
            if tracing:
                obs.frame_outcome("rejected", frame_id, tenant_id, t_f, gate="shape")
            return FrameTicket(tenant_id, frame_id, t_f, "rejected")
        if self.limiter is not None and not self.limiter.admit(tenant_id, t_f):
            # Same gate order as the engine: after the shape check
            # (malformed frames spend no tokens), before the validator
            # (over-rate tenants burn no validator CPU).
            state.rate_limited += 1
            self.metrics.counter("fleet_frames_rate_limited").inc()
            if tracing:
                obs.frame_outcome(
                    "rate_limited",
                    frame_id,
                    tenant_id,
                    t_f,
                    reserved_hz=self.limiter.reserved_hz(tenant_id),
                )
            return FrameTicket(tenant_id, frame_id, t_f, "rate_limited")
        if state.validator is not None:
            failure = state.validator.validate(tenant_id, t_f, csi_row)
            if failure is not None:
                state.quarantined += 1
                self.metrics.counter("fleet_frames_quarantined").inc()
                state.quarantine.add(QuarantinedFrame(tenant_id, t_f, csi_row, failure))
                if tracing:
                    obs.frame_outcome(
                        "quarantined", frame_id, tenant_id, t_f, check=failure.check
                    )
                return FrameTicket(tenant_id, frame_id, t_f, "quarantined")
        state.frames_in += 1
        self.metrics.counter("fleet_frames_in").inc()
        self.metrics.counter(f"fleet_frames_total{{tenant={tenant_id}}}").inc()
        self._now_s = max(self._now_s, t_f)

        pending = [
            TenantFrame(
                tenant_id,
                frame_id,
                t_f,
                csi_row,
                deadline_s=deadline_for(t_f, self.deadline_s),
            )
        ]
        if state.repairer is not None:
            fills = state.repairer.observe(tenant_id, t_f, csi_row)
            if fills:
                state.repaired += len(fills)
                self.metrics.counter("fleet_frames_repaired").inc(len(fills))
                filled = []
                for fill in fills:
                    fill_id = self._frame_seq
                    self._frame_seq += 1
                    filled.append(
                        TenantFrame(
                            tenant_id,
                            fill_id,
                            fill.t_s,
                            fill.row,
                            repaired=True,
                            deadline_s=deadline_for(fill.t_s, self.deadline_s),
                        )
                    )
                    if tracing:
                        obs.frame_filled(fill_id, tenant_id, fill.t_s, source_frame=frame_id)
                pending = filled + pending
        for frame in pending:
            evicted = self.router.route(frame)
            if evicted is not None:
                state.overflow_dropped += 1
                self.metrics.counter("fleet_frames_dropped_overflow").inc()
                # Labeled rollup: eviction is attributable per tenant in
                # the Prometheus exposition, not just fleet-aggregate.
                self.metrics.counter(
                    f"fleet_frames_overflow_total{{tenant={evicted.tenant_id}}}"
                ).inc()
                if tracing:
                    obs.frame_outcome(
                        "overflow", evicted.frame_id, evicted.tenant_id, evicted.t_s
                    )
        self.metrics.gauge("fleet_pending").set(self.router.total_depth)
        return FrameTicket(tenant_id, frame_id, t_f, "enqueued")

    # ----------------------------------------------------------------- tick

    def tick(self, now_s: float | None = None) -> list[InferenceResult]:
        """Drain every tenant ring through one fusion-scheduled pass.

        ``now_s`` advances stream time (defaults to the newest submitted
        timestamp); staleness and breaker clocks read it.  Returns the
        results of every tenant served this tick, grouped per tenant in
        submission order.
        """
        if now_s is not None:
            self._now_s = max(self._now_s, float(now_s))
        now = self._now_s
        tick_start = time.perf_counter()
        mode = ServiceMode.FULL
        if self.governor is not None:
            oldest = self.router.oldest_t_s()
            mode = self.governor.observe(
                self.router.total_depth,
                0.0 if oldest is None else now - oldest,
                now,
            )
        if mode is ServiceMode.SHED:
            for tenant_id in self.router.pending_tenants:
                state = self._tenants[tenant_id]
                self._shed_overload(state, self.router.drain(tenant_id))
            self.metrics.gauge("fleet_pending").set(self.router.total_depth)
            return []
        quota = (
            self.governor.policy.degraded_quota
            if mode is ServiceMode.FALLBACK_ONLY
            else None
        )
        batches: list[TenantBatch] = []
        shed: list[tuple[_TenantState, list[TenantFrame]]] = []
        for tenant_id in self.router.pending_tenants:
            state = self._tenants[tenant_id]
            frames = self.router.drain(tenant_id, quota)
            frames = self._drop_expired(state, frames, now)
            frames = self._drop_stale(state, frames, now)
            if not frames:
                continue
            rows = np.stack([frame.row for frame in frames]).astype(np.float32)
            if mode is ServiceMode.FULL:
                # Degraded rungs shed per-tick drift scoring — the fleet
                # already serves frozen plans, so the sentinel window is
                # the guard overhead the governor trades away first.
                state.supervisor.observe(rows, now)
            if state.supervisor.decide(now) is ServingMode.PRIMARY:
                batches.append(
                    TenantBatch(
                        tenant_id=tenant_id,
                        signature=self.plans.signature(tenant_id),
                        plan=self.plans.get(tenant_id),
                        frames=frames,
                        rows=rows,
                    )
                )
            else:
                shed.append((state, frames))
        for state, frames in shed:
            self._shed(state, frames)
        if not batches:
            self.metrics.gauge("fleet_pending").set(self.router.total_depth)
            return []

        try:
            outcome = self.scheduler.run_tick(batches)
        except Exception:
            for batch in batches:
                state = self._tenants[batch.tenant_id]
                state.supervisor.record_primary_failure(now)
                self._shed(state, batch.frames)
            self.metrics.counter("fleet_tick_failures").inc()
            return []
        scatter_start = time.perf_counter()

        results: list[InferenceResult] = []
        for batch in batches:
            state = self._tenants[batch.tenant_id]
            state.supervisor.record_primary_success(now)
            probabilities = outcome.probabilities[batch.tenant_id]
            results.extend(self._emit(batch.tenant_id, state, batch.frames, probabilities))
            manager = self._rollouts.get(batch.tenant_id)
            if manager is not None:
                # After emission, so a promotion triggered here swaps only
                # future ticks — this batch was served by the old plan.
                manager.on_batch(batch.frames, batch.rows, probabilities, now)

        scatter_ms = 1000.0 * (time.perf_counter() - scatter_start)
        tick_ms = 1000.0 * (time.perf_counter() - tick_start)
        self.metrics.counter("fleet_ticks").inc()
        self.metrics.counter("fleet_fused_frames_total").inc(outcome.fused_frames)
        self.metrics.counter("fleet_unfused_frames_total").inc(outcome.unfused_frames)
        self.metrics.counter("fleet_fused_groups_total").inc(outcome.fused_groups)
        self.metrics.counter("fleet_unfused_groups_total").inc(outcome.unfused_groups)
        fused = self.metrics.counter("fleet_fused_frames_total").value
        total = fused + self.metrics.counter("fleet_unfused_frames_total").value
        if total:
            self.metrics.gauge("fleet_fusion_ratio").set(fused / total)
        self.metrics.histogram("fleet_scatter_latency_ms").observe(scatter_ms)
        self.metrics.histogram("fleet_tick_latency_ms").observe(tick_ms)
        self.metrics.gauge("fleet_pending").set(self.router.total_depth)
        return results

    def flush(self) -> list[InferenceResult]:
        """Serve everything pending (end of stream / shutdown).

        Ticks until every ring is empty: under the governor's
        FALLBACK_ONLY quota one tick drains only a few frames per
        tenant, and shutdown must leave zero frames ringed so the
        per-tenant ledgers close exactly.  Progress is guaranteed —
        every tick with pending frames serves or sheds at least one.
        """
        results = self.tick()
        while self.router.total_depth:
            results.extend(self.tick())
        return results

    # ------------------------------------------------------------- plumbing

    def _drop_stale(
        self, state: _TenantState, frames: list[TenantFrame], now: float
    ) -> list[TenantFrame]:
        if self.config.stale_after_s is None:
            return frames
        obs = state.observer
        fresh: list[TenantFrame] = []
        for frame in frames:
            if now - frame.t_s > self.config.stale_after_s:
                state.stale_dropped += 1
                state.health = LinkHealth.DEGRADED
                self.metrics.counter("fleet_frames_dropped_stale").inc()
                if obs.enabled:
                    obs.frame_outcome(
                        "stale", frame.frame_id, frame.tenant_id, frame.t_s,
                        age_s=now - frame.t_s,
                    )
            else:
                fresh.append(frame)
        return fresh

    def _drop_expired(
        self, state: _TenantState, frames: list[TenantFrame], now: float
    ) -> list[TenantFrame]:
        """Shed frames whose deadline budget ran out in the ring."""
        if self.deadline_s is None:
            return frames
        obs = state.observer
        alive: list[TenantFrame] = []
        for frame in frames:
            if expired(frame.deadline_s, now):
                state.deadline_expired += 1
                self.metrics.counter("fleet_frames_deadline_expired").inc()
                if obs.enabled:
                    obs.frame_outcome(
                        "deadline_expired",
                        frame.frame_id,
                        frame.tenant_id,
                        frame.t_s,
                        age_s=now - frame.t_s,
                        budget_s=self.deadline_s,
                    )
            else:
                alive.append(frame)
        return alive

    def _shed_overload(self, state: _TenantState, frames: list[TenantFrame]) -> None:
        """Governor in SHED mode: a load decision, so health is untouched
        (unlike :meth:`_shed`, which records a per-tenant fault)."""
        if not frames:
            return
        state.overload_shed += len(frames)
        self.metrics.counter("fleet_frames_shed_overload").inc(len(frames))
        obs = state.observer
        if obs.enabled:
            for frame in frames:
                obs.frame_outcome("shed", frame.frame_id, frame.tenant_id, frame.t_s)

    def _shed(self, state: _TenantState, frames: list[TenantFrame]) -> None:
        """Supervisor said not-PRIMARY (or the run failed): drop the tick."""
        state.policy_rejected += len(frames)
        state.health = LinkHealth.DEGRADED
        self.metrics.counter("fleet_frames_policy_rejected").inc(len(frames))
        obs = state.observer
        if obs.enabled:
            for frame in frames:
                obs.frame_outcome(
                    "policy_rejected", frame.frame_id, frame.tenant_id, frame.t_s
                )

    def _emit(
        self,
        tenant_id: str,
        state: _TenantState,
        frames: list[TenantFrame],
        probabilities: np.ndarray,
    ) -> list[InferenceResult]:
        obs = state.observer
        tracing = obs.enabled
        out_counter = self.metrics.counter(f"fleet_frames_out_total{{tenant={tenant_id}}}")
        results: list[InferenceResult] = []
        for frame, p in zip(frames, probabilities):
            state.frames_out += 1
            out_counter.inc()
            new_health, recovered = state.supervisor.resolve_health(state.health, "primary")
            if recovered:
                self.metrics.counter("fleet_tenant_recovered_total").inc()
                if tracing:
                    obs.emit(
                        "link.recovered",
                        t_s=frame.t_s,
                        frame_id=frame.frame_id,
                        link_id=tenant_id,
                    )
            state.health = new_health
            flipped = state.debouncer.update(int(p >= 0.5))
            transition = None
            if flipped is not None:
                transition = Transition(frame.t_s, bool(flipped))
                self.metrics.counter("fleet_transitions").inc()
            results.append(
                InferenceResult(
                    link_id=tenant_id,
                    t_s=frame.t_s,
                    probability=float(p),
                    state=state.debouncer.state,
                    transition=transition,
                    source="primary",
                    repaired=frame.repaired,
                    frame_id=frame.frame_id,
                )
            )
            if tracing:
                obs.frame_outcome(
                    "answered", frame.frame_id, tenant_id, frame.t_s,
                    source="primary", repaired=frame.repaired,
                )
        self.metrics.counter("fleet_frames_out").inc(len(frames))
        return results
