"""Shape-stable tiled execution and the cross-tenant fusion scheduler.

**Why a tiled runner exists.**  The byte-identity gate demands that a
frame's probability not depend on *which other frames* shared its GEMM
call.  Plain variable-batch BLAS breaks that: OpenBLAS selects different
kernels (GEMV vs GEMM, different blocking) for different row counts, so
``plan.predict_proba`` over 7 rows and over the same rows concatenated
with another tenant's 9 are not bitwise-equal row-for-row.  The
:class:`TiledPlanRunner` removes batch shape from the equation entirely:
every GEMM in every call runs at exactly ``tile`` rows (the final
partial tile zero-padded, pad outputs discarded), and the float64
logistic tail runs per tile at fixed length too.  With every kernel
invocation shape-fixed, a row's output is a function of the row alone —
verified property-style in ``tests/fleet`` — so fused and per-tenant
dispatch agree to the byte *by construction*, not by luck.

**What the scheduler does.**  Per tick it receives one
:class:`TenantBatch` per tenant with pending frames, groups them by
:class:`~repro.fleet.registry.PlanSignature`, row-concatenates each
multi-tenant cohort into a single tiled run over the cohort's shared
weights, and scatters the probabilities back per tenant.  Odd-one-out
architectures (singleton cohorts) fall back to per-tenant dispatch
through the same tiled runner.  The per-signature runner cache means a
thousand rooms sharing one model also share one set of scratch buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..fastpath.plan import _LOGIT_CLIP, InferencePlan, _apply_activation_inplace
from .registry import PlanSignature
from .router import TenantFrame


class TiledPlanRunner:
    """Runs a frozen plan's arithmetic at a fixed GEMM tile size.

    Conforms to the ``predict_proba`` half of the estimator protocol.
    Slightly slower than :meth:`InferencePlan.predict_proba` for large
    batches (partial-tile padding wastes some FLOPs) — the price of
    batch-shape-independent, hence fusable, numerics.  Scratch buffers
    are allocated once per runner and reused across calls.
    """

    def __init__(self, plan: InferencePlan, tile: int = 16) -> None:
        if tile < 1:
            raise ConfigurationError("tile must be >= 1")
        if plan.n_outputs != 1:
            raise ShapeError(
                f"TiledPlanRunner serves single-output plans, got {plan.n_outputs}"
            )
        self.tile = int(tile)
        self._exec = plan.exec_steps
        self._n_inputs = plan.n_inputs
        #: Plans ending in a fused sigmoid are already probabilities.
        self._squash = plan.steps[-1].activation != "sigmoid"
        self._stage = np.zeros((self.tile, plan.n_inputs), dtype=np.float32)
        self._buffers = [
            np.empty((self.tile, weight.shape[1]), dtype=np.float32)
            for weight, _, _ in self._exec
        ]
        self._tail = np.empty(self.tile, dtype=np.float64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(occupied) per row, shape (n,), batch-shape-independent."""
        # asarray, not ascontiguousarray: a float32 arena-slab view passes
        # through zero-copy — the per-tile staging copy below absorbs any
        # striding, so forcing contiguity up front would only duplicate it.
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self._n_inputs:
            raise ShapeError(
                f"TiledPlanRunner({self._n_inputs} inputs) got input {x.shape}"
            )
        n = x.shape[0]
        out = np.empty(n, dtype=float)
        tile, stage, tail = self.tile, self._stage, self._tail
        for start in range(0, n, tile):
            stop = min(start + tile, n)
            k = stop - start
            stage[:k] = x[start:stop]
            if k < tile:
                stage[k:] = np.float32(0.0)
            current = stage
            for (weight, bias, activation), buffer in zip(self._exec, self._buffers):
                np.dot(current, weight, out=buffer)
                if bias is not None:
                    buffer += bias
                if activation != "none":
                    _apply_activation_inplace(buffer, activation)
                current = buffer
            # Fixed-length float64 tail: the elementwise logistic also runs
            # at tile width every call, so ufunc vectorisation boundaries
            # cannot differ between fused and per-tenant invocations.
            tail[:] = current[:, 0]
            if self._squash:
                np.maximum(tail, -_LOGIT_CLIP, out=tail)
                np.minimum(tail, _LOGIT_CLIP, out=tail)
                np.negative(tail, out=tail)
                np.exp(tail, out=tail)
                tail += 1.0
                np.reciprocal(tail, out=tail)
            out[start:stop] = tail[:k]
        return out


@dataclass
class TenantBatch:
    """One tenant's pending work for a scheduling tick."""

    tenant_id: str
    signature: PlanSignature
    plan: InferencePlan
    frames: list[TenantFrame]
    rows: np.ndarray  # (len(frames), n_inputs)


@dataclass
class TickOutcome:
    """What one scheduler tick did, plus the scattered probabilities."""

    #: tenant_id → probabilities aligned with that tenant's frames.
    probabilities: dict[str, np.ndarray] = field(default_factory=dict)
    fused_groups: int = 0
    unfused_groups: int = 0
    fused_frames: int = 0
    unfused_frames: int = 0

    @property
    def total_frames(self) -> int:
        return self.fused_frames + self.unfused_frames


class FusionScheduler:
    """Groups per-tenant batches by plan signature and runs each cohort.

    ``fusion_enabled=False`` degrades every cohort to per-tenant
    dispatch — the control arm of the ``fleet-bench`` comparison and the
    reference side of the byte-identity gate.
    """

    def __init__(self, tile: int = 16, fusion_enabled: bool = True) -> None:
        if tile < 1:
            raise ConfigurationError("tile must be >= 1")
        self.tile = int(tile)
        self.fusion_enabled = bool(fusion_enabled)
        self._runners: dict[PlanSignature, TiledPlanRunner] = {}

    def runner_for(self, signature: PlanSignature, plan: InferencePlan) -> TiledPlanRunner:
        """The (cached) tiled runner shared by every tenant of a cohort."""
        runner = self._runners.get(signature)
        if runner is None:
            runner = TiledPlanRunner(plan, tile=self.tile)
            self._runners[signature] = runner
        return runner

    def evict(self, signature: PlanSignature) -> bool:
        """Drop a cohort's cached runner (its last tenant detached or
        re-planned); returns True when a runner was actually cached.

        Under churn, plans come and go with their tenants — without
        eviction the runner cache (and its scratch buffers) would grow
        monotonically with every signature the fleet has *ever* served.
        """
        return self._runners.pop(signature, None) is not None

    @property
    def cached_runners(self) -> int:
        """Signatures currently holding a cached runner."""
        return len(self._runners)

    def run_tick(self, batches: list[TenantBatch]) -> TickOutcome:
        """Execute one tick's worth of pending tenant batches."""
        outcome = TickOutcome()
        cohorts: dict[PlanSignature, list[TenantBatch]] = {}
        for batch in batches:
            if not batch.frames:
                continue
            cohorts.setdefault(batch.signature, []).append(batch)
        for signature, members in cohorts.items():
            runner = self.runner_for(signature, members[0].plan)
            if self.fusion_enabled and len(members) > 1:
                stacked = np.concatenate([m.rows for m in members], axis=0)
                fused = runner.predict_proba(stacked)
                offset = 0
                for member in members:
                    n = len(member.frames)
                    outcome.probabilities[member.tenant_id] = fused[offset:offset + n]
                    offset += n
                    outcome.fused_frames += n
                outcome.fused_groups += 1
            else:
                for member in members:
                    outcome.probabilities[member.tenant_id] = runner.predict_proba(
                        member.rows
                    )
                    outcome.unfused_frames += len(member.frames)
                    outcome.unfused_groups += 1
        return outcome
