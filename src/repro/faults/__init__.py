"""Fault injection: seedable, composable corruption of CSI/env streams.

The paper's claim is occupancy detection in *unconstrained* environments,
so the repo needs a way to manufacture the unconstrained part on demand:
subcarriers dropping out, a Thingy:52 sensor sticking, a sniffer link
going dark, timestamps skewing.  This subpackage provides

* :mod:`repro.faults.base` — the :class:`FaultInjector` contract and the
  :class:`ChaosFrame` unit that flows through every injector;
* :mod:`repro.faults.row` — feature-row corruptions
  (:class:`SubcarrierDropout`, :class:`BurstNoise`, :class:`GainDrift`,
  :class:`SensorStuckAt`, :class:`SensorDropout`);
* :mod:`repro.faults.stream` — frame-delivery faults
  (:class:`LinkOutage`, :class:`ClockSkew`, :class:`FrameReorder`);
* :mod:`repro.faults.schedule` — :class:`ChaosSchedule`, which activates
  injectors over declared time windows of any frame stream;
* :mod:`repro.faults.bench` — the ``chaos-bench`` harness replaying a
  scenario suite through :class:`~repro.serve.engine.InferenceEngine`
  and reporting accuracy under fault.

Everything is deterministic in ``(seed, schedule)``: replaying the same
scenario over the same frames yields a byte-identical corrupted stream,
so chaos campaigns are reproducible scripts, not dice rolls.
"""

from .base import ChaosFrame, FaultInjector, RowFault
from .bench import (
    ChaosBenchReport,
    ChaosScenario,
    ChaosScenarioResult,
    FlakyPrimary,
    default_scenario_suite,
    run_chaos_bench,
)
from .row import BurstNoise, GainDrift, SensorDropout, SensorStuckAt, SubcarrierDropout
from .schedule import ChaosSchedule, FaultWindow
from .stream import ClockSkew, FrameReorder, LinkOutage

__all__ = [
    "ChaosFrame",
    "FaultInjector",
    "RowFault",
    "SubcarrierDropout",
    "BurstNoise",
    "GainDrift",
    "SensorStuckAt",
    "SensorDropout",
    "LinkOutage",
    "ClockSkew",
    "FrameReorder",
    "FaultWindow",
    "ChaosSchedule",
    "ChaosScenario",
    "ChaosScenarioResult",
    "ChaosBenchReport",
    "FlakyPrimary",
    "default_scenario_suite",
    "run_chaos_bench",
]
