"""chaos-bench: accuracy-under-fault for the serving engine.

The harness replays one recorded campaign through
:class:`~repro.serve.engine.InferenceEngine` once per
:class:`ChaosScenario`, each scenario corrupting the stream with a
:class:`~repro.faults.schedule.ChaosSchedule` (and optionally crashing
the primary model for a stretch of batches).  The report answers the
question the paper's "unconstrained environments" claim raises: when
subcarriers die, links go dark or the model itself falls over, does the
stack *degrade* — keep answering every deliverable frame, route around
the failure, recover — or does it die?

Reconciliation is exact: per scenario,

``submitted + repaired == answered + answered_repaired + rejected
+ quarantined + policy_rejected + stale + overflow + unanswered``

and a healthy engine keeps ``unanswered`` at zero — every admitted frame
yields an :class:`~repro.serve.engine.InferenceResult` from the primary
or the fallback.  The ``repaired``/``quarantined``/``policy_rejected``
legs are only non-zero when the replay runs with a
:class:`~repro.guard.policy.GuardPolicy` attached (``guard=``), which
stands up the full validation → quarantine → gap-repair →
circuit-breaker stack in front of each scenario's engine.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import OccupancyDataset
from ..exceptions import ConfigurationError
from ..serve.config import ServeConfig
from ..serve.engine import InferenceEngine
from ..serve.metrics import MetricsRegistry
from ..serve.robustness import FallbackPredictor
from .base import ChaosFrame
from .row import BurstNoise, GainDrift, SensorDropout, SensorStuckAt, SubcarrierDropout
from .schedule import ChaosSchedule, FaultWindow
from .stream import ClockSkew, FrameReorder, LinkOutage


class FlakyPrimary:
    """Wraps an estimator; raises for a declared window of calls.

    Models the OTA-update-gone-wrong scenario: the primary model starts
    throwing after ``fail_from`` batch calls and recovers ``fail_calls``
    later, which must show up in the report as fallback share followed by
    ``link_recovered_total`` increments.
    """

    def __init__(self, inner, fail_from: int, fail_calls: int) -> None:
        if fail_from < 0 or fail_calls < 1:
            raise ConfigurationError("need fail_from >= 0 and fail_calls >= 1")
        self.inner = inner
        self.fail_from = fail_from
        self.fail_until = fail_from + fail_calls
        self.calls = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        call = self.calls
        self.calls += 1
        if self.fail_from <= call < self.fail_until:
            raise RuntimeError("chaos: simulated primary-model crash")
        return self.inner.predict_proba(x)


class _StreamClock:
    """Mutable stream-time holder the replay loop advances per frame."""

    def __init__(self, t_s: float) -> None:
        self.t_s = t_s


class TimedFlakyPrimary:
    """Wraps an estimator; raises inside a *stream-time* window.

    Unlike :class:`FlakyPrimary` (whose call counter freezes when a
    circuit breaker short-circuits the primary, so the crash would never
    "end"), the outage here is anchored to the replay clock: the model is
    down for the same stretch of the campaign whether or not anything
    calls it.  That makes recovery-on vs recovery-off replays directly
    comparable.
    """

    def __init__(self, inner, clock: _StreamClock, fail_t0_s: float, fail_t1_s: float) -> None:
        if not fail_t1_s > fail_t0_s:
            raise ConfigurationError("need fail_t1_s > fail_t0_s")
        self.inner = inner
        self.clock = clock
        self.fail_t0_s = fail_t0_s
        self.fail_t1_s = fail_t1_s
        self.failed_calls = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.fail_t0_s <= self.clock.t_s < self.fail_t1_s:
            self.failed_calls += 1
            raise RuntimeError("chaos: simulated primary-model crash")
        return self.inner.predict_proba(x)


@dataclass
class ChaosScenario:
    """One named chaos campaign: fault windows plus an optional model crash.

    ``crash_fraction`` is a ``(start, stop)`` fraction of the replay's
    expected batch count during which the primary raises — expressed as
    fractions so the same scenario scales to any campaign length.
    """

    name: str
    description: str
    windows: list[FaultWindow] = field(default_factory=list)
    crash_fraction: tuple[float, float] | None = None


@dataclass
class ChaosScenarioResult:
    """Outcome of replaying one scenario through the engine."""

    name: str
    n_frames: int
    n_submitted: int
    n_answered: int
    n_correct: int
    n_fallback: int
    n_rejected: int
    n_stale: int
    n_overflow: int
    n_recovered: int
    n_primary_failures: int
    # Guard-path legs; all zero when the replay runs without a guard.
    n_quarantined: int = 0
    n_repaired: int = 0
    n_answered_repaired: int = 0
    n_correct_repaired: int = 0
    n_policy_rejected: int = 0
    n_breaker_trips: int = 0
    n_drift_warn: int = 0
    n_drift_trip: int = 0

    @property
    def accuracy(self) -> float:
        """Accuracy over answered *measured* frames (repairs excluded)."""
        return self.n_correct / self.n_answered if self.n_answered else float("nan")

    @property
    def coverage(self) -> float:
        """Correct answers (measured + repaired) over the whole campaign.

        Accuracy alone hides shed load: an engine that drops 90 % of the
        stream and nails the remainder scores 1.0.  Coverage charges
        every campaign frame, so gap repair and breaker recovery show up
        as gains rather than noise.
        """
        if not self.n_frames:
            return float("nan")
        return (self.n_correct + self.n_correct_repaired) / self.n_frames

    @property
    def fallback_share(self) -> float:
        answered = self.n_answered + self.n_answered_repaired
        return self.n_fallback / answered if answered else 0.0

    @property
    def n_unanswered(self) -> int:
        """Admitted frames that never produced a result — should be 0."""
        return (
            self.n_submitted
            + self.n_repaired
            - self.n_answered
            - self.n_answered_repaired
            - self.n_rejected
            - self.n_quarantined
            - self.n_policy_rejected
            - self.n_stale
            - self.n_overflow
        )

    def row(self) -> dict[str, object]:
        return {
            "scenario": self.name,
            "frames": self.n_frames,
            "submitted": self.n_submitted,
            "answered": self.n_answered,
            "accuracy": f"{self.accuracy:.3f}",
            "coverage": f"{self.coverage:.3f}",
            "fallback%": f"{100.0 * self.fallback_share:.1f}",
            "rejected": self.n_rejected,
            "quarantined": self.n_quarantined,
            "repaired": self.n_repaired,
            "stale": self.n_stale,
            "overflow": self.n_overflow,
            "recovered": self.n_recovered,
            "unanswered": self.n_unanswered,
        }


@dataclass
class ChaosBenchReport:
    """All scenario results of one chaos-bench run.

    When the run was traced (``observer_factory``), :attr:`observers`
    maps scenario name → its :class:`~repro.obs.observer.Observer`, so
    callers can dump per-scenario event logs and stage breakdowns via
    :func:`repro.obs.write_dump`.
    """

    results: list[ChaosScenarioResult]
    observers: dict[str, object] = field(default_factory=dict)

    def result(self, name: str) -> ChaosScenarioResult:
        for r in self.results:
            if r.name == name:
                return r
        raise ConfigurationError(f"no scenario named {name!r} in this report")

    def describe(self) -> str:
        rows = [r.row() for r in self.results]
        columns = list(rows[0]) if rows else []
        widths = {
            c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns
        }
        lines = ["accuracy under fault (chaos-bench):"]
        lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
        for row in rows:
            lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
        degraded = [r for r in self.results if r.n_unanswered]
        lines.append("")
        if degraded:
            lines.append(
                "WARNING: unanswered frames in "
                + ", ".join(r.name for r in degraded)
                + " — the engine lost admitted frames"
            )
        else:
            lines.append("every admitted frame was answered (primary or fallback)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload for the common bench envelope (see repro.benchkit)."""
        return {
            "bench": "chaos-bench",
            "scenarios": [
                {
                    **dataclasses.asdict(r),
                    "accuracy": r.accuracy,
                    "coverage": r.coverage,
                    "fallback_share": r.fallback_share,
                    "n_unanswered": r.n_unanswered,
                }
                for r in self.results
            ],
        }


def default_scenario_suite(
    t0_s: float,
    t1_s: float,
    *,
    n_csi: int = 64,
    include_env: bool = False,
    jitter_s: float = 5.0,
) -> list[ChaosScenario]:
    """The standard chaos campaign over a stream spanning ``[t0_s, t1_s]``.

    All windows are placed at fixed fractions of the span so the suite
    scales from CI smoke streams to multi-day campaigns.  The default
    (CSI-only) suite keeps corrupted rows finite, so a healthy engine
    answers *every* admitted frame; ``include_env=True`` adds the sensor
    faults (requires feature rows that carry the T/H columns), of which
    ``sensor-dropout`` intentionally emits NaN rows to drill the
    admission-rejection path.
    """
    if not t1_s > t0_s:
        raise ConfigurationError("need t1_s > t0_s")
    span = t1_s - t0_s

    def at(f0: float, f1: float, injector) -> FaultWindow:
        return FaultWindow(t0_s + f0 * span, t0_s + f1 * span, injector)

    scenarios = [
        ChaosScenario("baseline", "clean replay, reference accuracy"),
        ChaosScenario(
            "subcarrier-dropout",
            "a 16-subcarrier band reads zero for the middle 60% of the stream",
            [at(0.2, 0.8, SubcarrierDropout(band_width=16, mode="zero", n_csi=n_csi))],
        ),
        ChaosScenario(
            "burst-noise",
            "impulse-noise bursts across all subcarriers",
            [at(0.3, 0.7, BurstNoise(amplitude=4.0, burst_frames=5, p_start=0.1, n_csi=n_csi))],
        ),
        ChaosScenario(
            "gain-drift",
            "front-end gain drifts up through the second half",
            [at(0.5, 1.0, GainDrift(rate_per_s=1e-3, n_csi=n_csi))],
        ),
        ChaosScenario(
            "link-outage",
            "all links dark for the middle 20% of the stream, then recover",
            [at(0.4, 0.6, LinkOutage())],
        ),
        ChaosScenario(
            "clock-chaos",
            "timestamp jitter, then out-of-order delivery",
            [at(0.2, 0.5, ClockSkew(jitter_s=jitter_s)), at(0.5, 0.8, FrameReorder(depth=4))],
        ),
        ChaosScenario(
            "model-crash",
            "primary model raises for the middle 20% of batches",
            crash_fraction=(0.4, 0.6),
        ),
    ]
    if include_env:
        scenarios.extend(
            [
                ChaosScenario(
                    "sensor-stuck",
                    "T/H sensor sticks at its last reading",
                    [at(0.3, 0.9, SensorStuckAt(slice(n_csi, n_csi + 2)))],
                ),
                ChaosScenario(
                    "sensor-dropout",
                    "T/H columns go NaN; frames are rejected at admission",
                    [at(0.4, 0.7, SensorDropout(slice(n_csi, n_csi + 2)))],
                ),
            ]
        )
    return scenarios


def _interleaved_chaos_frames(
    dataset: OccupancyDataset, n_links: int, include_env: bool
) -> list[ChaosFrame]:
    """Round-robin the campaign rows over ``n_links`` simulated sniffers."""
    link_ids = [f"link-{i}" for i in range(n_links)]
    t = dataset.timestamps_s
    features = (
        np.hstack([dataset.csi, dataset.environment]) if include_env else dataset.csi
    )
    occupancy = dataset.occupancy
    return [
        ChaosFrame(link_ids[i % n_links], float(t[i]), features[i], int(occupancy[i]))
        for i in range(len(dataset))
    ]


def run_chaos_bench(
    estimator,
    dataset: OccupancyDataset,
    scenarios: list[ChaosScenario] | None = None,
    *,
    n_links: int = 2,
    max_batch: int = 32,
    max_latency_ms: float | None = None,
    stale_after_s: float | None = None,
    window: int = 5,
    hold_frames: int = 3,
    seed: int = 0,
    fallback: FallbackPredictor | None = None,
    include_env: bool = False,
    guard=None,
    observer_factory=None,
) -> ChaosBenchReport:
    """Replay every scenario through a fresh engine; returns the report.

    The estimator must already be fitted on features matching the replay
    layout (CSI-only by default, CSI+T/H with ``include_env=True``).  Each
    scenario gets its own engine and metrics registry, so counters never
    bleed between scenarios; the fault schedule is reseeded per replay,
    so the whole campaign is deterministic in ``seed``.

    ``guard`` is any object with a ``build(registry)`` method returning
    ``(validator, repairer, supervisor)`` — canonically a
    :class:`~repro.guard.policy.GuardPolicy` (duck-typed here so this
    module never imports :mod:`repro.guard`).  Fresh components are built
    per scenario, so per-link state cannot leak between replays.
    Repaired answers are scored against the *clean* campaign labels at
    their grid timestamps — a fill is "correct" when it matches what the
    lost frame would have been labelled.

    ``observer_factory`` is an optional ``name -> Observer`` callable
    (duck-typed; canonically ``lambda name: repro.obs.Observer(label=name)``).
    When given, each scenario's engine runs fully traced and the built
    observers come back on :attr:`ChaosBenchReport.observers`.
    """
    if n_links < 1:
        raise ConfigurationError("n_links must be >= 1")
    if len(dataset) == 0:
        raise ConfigurationError("dataset is empty; nothing to replay")
    frames = _interleaved_chaos_frames(dataset, n_links, include_env)
    t0, t1 = frames[0].t_s, frames[-1].t_s
    if scenarios is None:
        scenarios = default_scenario_suite(
            t0, max(t1, t0 + 1.0), n_csi=dataset.n_subcarriers, include_env=include_env
        )

    # Clean-campaign labels keyed by (link, grid timestamp): repaired fills
    # land exactly on the lost frames' grid, so this is their ground truth.
    clean_labels = {(f.link_id, f.t_s): f.label for f in frames}

    results: list[ChaosScenarioResult] = []
    observers: dict[str, object] = {}
    for scenario in scenarios:
        clock = _StreamClock(t0)
        primary = estimator
        if scenario.crash_fraction is not None:
            span = max(t1, t0 + 1.0) - t0
            f0, f1 = scenario.crash_fraction
            primary = TimedFlakyPrimary(estimator, clock, t0 + f0 * span, t0 + f1 * span)
        registry = MetricsRegistry()
        validator = repairer = supervisor = None
        if guard is not None:
            validator, repairer, supervisor = guard.build(registry)
        observer = None
        if observer_factory is not None:
            observer = observer_factory(scenario.name)
            observers[scenario.name] = observer
        engine = InferenceEngine(
            primary,
            ServeConfig(
                max_batch=max_batch,
                max_latency_ms=max_latency_ms,
                queue_capacity=4 * max_batch,
                window=window,
                hold_frames=hold_frames,
                stale_after_s=stale_after_s,
                fallback=fallback,
                registry=registry,
                validator=validator,
                repairer=repairer,
                supervisor=supervisor,
                observer=observer,
            ),
        )
        schedule = ChaosSchedule(scenario.windows, seed=seed)

        labels: dict[tuple[str, float], deque[int | None]] = {}
        answered_keys: set[tuple[str, float]] = set()
        repaired_answers: list = []
        n_submitted = 0
        n_answered = n_correct = n_fallback = 0
        n_answered_repaired = n_correct_repaired = 0

        def score(batch) -> None:
            nonlocal n_answered, n_correct, n_fallback, n_answered_repaired
            for result in batch:
                if result.source == "fallback":
                    n_fallback += 1
                if result.repaired:
                    # Correctness is settled after the replay: a fill only
                    # earns credit for a slot no real frame answered.
                    n_answered_repaired += 1
                    repaired_answers.append(result)
                    continue
                n_answered += 1
                key = (result.link_id, result.t_s)
                answered_keys.add(key)
                queued = labels.get(key)
                label = queued.popleft() if queued else None
                if label is not None and (result.probability >= 0.5) == bool(label):
                    n_correct += 1

        for frame in schedule.run(frames):
            n_submitted += 1
            clock.t_s = max(clock.t_s, frame.t_s)
            labels.setdefault((frame.link_id, frame.t_s), deque()).append(frame.label)
            score(engine.submit(frame.link_id, frame.t_s, frame.features))
        score(engine.flush())

        # A repaired answer counts as correct only when (a) it sits on a
        # clean grid slot, (b) no real frame answered that slot (reordered
        # originals must not be double-counted), and (c) no earlier fill
        # already claimed it.
        credited: set[tuple[str, float]] = set()
        for result in repaired_answers:
            key = (result.link_id, result.t_s)
            if key in answered_keys or key in credited:
                continue
            label = clean_labels.get(key)
            if label is not None and (result.probability >= 0.5) == bool(label):
                credited.add(key)
                n_correct_repaired += 1

        counters = registry.as_dict()
        results.append(
            ChaosScenarioResult(
                name=scenario.name,
                n_frames=len(frames),
                n_submitted=n_submitted,
                n_answered=n_answered,
                n_correct=n_correct,
                n_fallback=n_fallback,
                n_rejected=int(counters.get("frames_rejected", 0.0)),
                n_stale=int(counters.get("frames_dropped_stale", 0.0)),
                n_overflow=int(counters.get("frames_dropped_overflow", 0.0)),
                n_recovered=int(counters.get("link_recovered_total", 0.0)),
                n_primary_failures=int(counters.get("primary_failures", 0.0)),
                n_quarantined=int(counters.get("frames_quarantined", 0.0)),
                n_repaired=int(counters.get("frames_repaired", 0.0)),
                n_answered_repaired=n_answered_repaired,
                n_correct_repaired=n_correct_repaired,
                n_policy_rejected=int(counters.get("frames_rejected_policy", 0.0)),
                n_breaker_trips=int(counters.get("primary_breaker_opened_total", 0.0)),
                n_drift_warn=int(counters.get("drift_warn_total", 0.0)),
                n_drift_trip=int(counters.get("drift_trip_total", 0.0)),
            )
        )
    return ChaosBenchReport(results, observers=observers)
