"""The chaos scenario runner: injectors activated over declared windows.

A :class:`ChaosSchedule` is the reproducible script of a chaos campaign:
a list of :class:`FaultWindow` entries, each naming a stream-time window
and the injector active inside it.  :meth:`ChaosSchedule.run` wraps any
iterator of :class:`~repro.faults.base.ChaosFrame` and drives every
injector's lifecycle — bind a derived RNG, activate on window entry,
route frames through all active injectors in declaration order, flush on
window exit and at end of stream.

Determinism contract: every injector's RNG is derived as
``default_rng([seed, window_index])``, and window entry/exit is decided
by the *incoming* frame's timestamp.  Same frames + same windows + same
seed therefore yield a byte-identical corrupted stream — the property
``tests/faults`` pins down and chaos reports rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .base import ChaosFrame, FaultInjector


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: ``injector`` is active for ``start_s <= t < end_s``."""

    start_s: float
    end_s: float
    injector: FaultInjector

    def __post_init__(self) -> None:
        if not self.end_s > self.start_s:
            raise ConfigurationError(
                f"fault window must have end_s > start_s, got [{self.start_s}, {self.end_s})"
            )

    def contains(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


class ChaosSchedule:
    """Activates fault injectors over declared time windows of a stream.

    Parameters
    ----------
    windows:
        The campaign script.  Windows may overlap; frames pass through
        all currently active injectors in declaration order, so the list
        order is the corruption order.
    seed:
        Root seed; each window's injector gets an independent generator
        derived from ``(seed, window_index)``.

    Notes
    -----
    Frames a buffering injector (e.g. ``FrameReorder``) flushes on window
    close are emitted as-is, bypassing injectors later in the chain —
    the window has ended, the transport healed.
    """

    def __init__(self, windows: Sequence[FaultWindow], seed: int = 0) -> None:
        self.windows = list(windows)
        self.seed = int(seed)

    def run(self, frames: Iterable[ChaosFrame]) -> Iterator[ChaosFrame]:
        """Replay ``frames`` through the schedule; yields corrupted frames."""
        for i, window in enumerate(self.windows):
            window.injector.bind(np.random.default_rng([self.seed, i]))
        active = [False] * len(self.windows)

        for frame in frames:
            t = frame.t_s
            for i, window in enumerate(self.windows):
                if active[i] and t >= window.end_s:
                    active[i] = False
                    yield from window.injector.deactivate()
                elif not active[i] and window.contains(t):
                    active[i] = True
                    window.injector.activate(t)
            out = [frame]
            for i, window in enumerate(self.windows):
                if active[i]:
                    out = [o for f in out for o in window.injector.process(f)]
            yield from out

        for i, window in enumerate(self.windows):
            if active[i]:
                yield from window.injector.deactivate()
