"""Feature-row corruptions: the hardware faults a real testbed produces.

Each injector models one published failure mode of WiFi-sensing rigs:
attenuated/noisy subcarrier bands (the central obstacle in Shen et al.'s
multi-room CSI work), slow gain drift after thermal cycling, and the
Thingy:52 environment sensor freezing or dropping readings.  All of them
are :class:`~repro.faults.base.RowFault` subclasses, so they compose in
any order under a :class:`~repro.faults.schedule.ChaosSchedule`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .base import RowFault, resolve_columns

#: Feature layout of the paper's CSI+Env rows: 64 subcarriers, then T, H.
DEFAULT_ENV_SLICE = slice(64, 66)


class SubcarrierDropout(RowFault):
    """Zero (or NaN) a band of subcarrier columns — a detuned/blocked band.

    Parameters
    ----------
    band:
        Fixed column slice to kill.  ``None`` picks a random contiguous
        band of ``band_width`` columns once per activation, so repeated
        windows hit different bands while staying seed-deterministic.
    band_width:
        Width of the randomly placed band (ignored when ``band`` given).
    mode:
        ``"zero"`` keeps rows finite (the model sees silence);
        ``"nan"`` emits non-finite rows, which the serving engine rejects
        at admission — both paths are worth drilling.
    n_csi:
        Number of leading CSI columns a random band may land in.
    """

    def __init__(
        self,
        band: slice | None = None,
        band_width: int = 8,
        mode: str = "zero",
        n_csi: int = 64,
    ) -> None:
        super().__init__()
        if mode not in ("zero", "nan"):
            raise ConfigurationError(f"mode must be 'zero' or 'nan', got {mode!r}")
        if band is None and band_width < 1:
            raise ConfigurationError("band_width must be >= 1")
        if n_csi < 1:
            raise ConfigurationError("n_csi must be >= 1")
        self.band = band
        self.band_width = band_width
        self.mode = mode
        self.n_csi = n_csi
        self._chosen: slice | None = None

    def _on_bind(self) -> None:
        self._chosen = None

    def _on_activate(self, t_s: float) -> None:
        if self.band is not None:
            self._chosen = self.band
        else:
            width = min(self.band_width, self.n_csi)
            start = int(self.rng.integers(0, self.n_csi - width + 1))
            self._chosen = slice(start, start + width)

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:
        assert self._chosen is not None
        row[self._chosen] = 0.0 if self.mode == "zero" else np.nan
        return row


class BurstNoise(RowFault):
    """Impulse-noise windows: short bursts of heavy additive noise.

    Each active frame starts a new burst with probability ``p_start``;
    a burst adds zero-mean Gaussian noise of ``amplitude`` standard
    deviation to every CSI column for ``burst_frames`` consecutive
    frames.  Amplitudes are clipped at zero to stay physically shaped.
    """

    def __init__(
        self,
        amplitude: float = 4.0,
        burst_frames: int = 5,
        p_start: float = 0.1,
        n_csi: int = 64,
    ) -> None:
        super().__init__()
        if amplitude <= 0:
            raise ConfigurationError("amplitude must be positive")
        if burst_frames < 1:
            raise ConfigurationError("burst_frames must be >= 1")
        if not 0.0 < p_start <= 1.0:
            raise ConfigurationError("p_start must be in (0, 1]")
        self.amplitude = amplitude
        self.burst_frames = burst_frames
        self.p_start = p_start
        self.n_csi = n_csi
        self._remaining = 0

    def _on_bind(self) -> None:
        self._remaining = 0

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:
        if self._remaining == 0 and self.rng.random() < self.p_start:
            self._remaining = self.burst_frames
        if self._remaining > 0:
            self._remaining -= 1
            n = min(self.n_csi, row.shape[0])
            row[:n] = np.maximum(0.0, row[:n] + self.rng.normal(0.0, self.amplitude, n))
        return row


class GainDrift(RowFault):
    """Slow multiplicative gain drift, linear in time since activation.

    Models RF front-end gain wandering with temperature: after ``dt``
    seconds in the window every CSI amplitude is scaled by
    ``1 + rate_per_s * dt``.  Negative rates model fading gain; the
    factor is floored at zero.
    """

    def __init__(self, rate_per_s: float = 1e-3, n_csi: int = 64) -> None:
        super().__init__()
        if rate_per_s == 0:
            raise ConfigurationError("rate_per_s must be non-zero")
        self.rate_per_s = rate_per_s
        self.n_csi = n_csi

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:
        gain = max(0.0, 1.0 + self.rate_per_s * (t_s - self.active_since_s))
        n = min(self.n_csi, row.shape[0])
        row[:n] *= gain
        return row


class SensorStuckAt(RowFault):
    """Freeze the environment columns at their first in-window values.

    The classic stuck-at fault of cheap T/H sensors: readings stop
    updating but keep reporting the last value, so nothing looks broken
    until the model quietly loses its environment signal.
    """

    def __init__(self, env_slice: slice = DEFAULT_ENV_SLICE) -> None:
        super().__init__()
        self.env_slice = env_slice
        self._frozen: np.ndarray | None = None

    def _on_bind(self) -> None:
        self._frozen = None

    def _on_activate(self, t_s: float) -> None:
        self._frozen = None  # captured from the first frame seen in-window

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:
        columns = resolve_columns(self.env_slice, row.shape[0], type(self).__name__)
        if self._frozen is None:
            self._frozen = row[columns].copy()
        row[columns] = self._frozen
        return row


class SensorDropout(RowFault):
    """Replace the environment columns with NaN (sensor link dead).

    NaN rows are rejected by the serving engine's admission check, so
    this drills the *rejected* path; pass a finite ``value`` (e.g. 0.0)
    to drill the silently-wrong path instead.
    """

    def __init__(self, env_slice: slice = DEFAULT_ENV_SLICE, value: float = np.nan) -> None:
        super().__init__()
        self.env_slice = env_slice
        self.value = value

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:
        columns = resolve_columns(self.env_slice, row.shape[0], type(self).__name__)
        row[columns] = self.value
        return row
