"""The fault-injector contract.

A fault injector is a small state machine over a stream of
:class:`ChaosFrame` observations.  Its lifecycle is driven by
:class:`~repro.faults.schedule.ChaosSchedule`:

1. ``bind(rng)`` — receive a dedicated, deterministically derived RNG
   before a replay starts (all randomness must come from it);
2. ``activate(t_s)`` — the schedule entered this injector's window;
3. ``process(frame)`` — transform one frame into zero or more frames
   while active (drop, corrupt, retime, buffer);
4. ``deactivate()`` — the window closed; any buffered frames flush out.

Row-level corruptions (the common case) subclass :class:`RowFault` and
implement only ``apply_row``; frame-delivery faults override
``process``/``flush`` directly.  Injectors never mutate the incoming
frame or its feature array — every corruption lands on a copy, so the
clean stream stays available for side-by-side scoring.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class ChaosFrame:
    """One observation flowing through the fault pipeline.

    ``features`` is the model-input row (CSI amplitudes, optionally with
    the T/H environment columns appended); ``label`` is the ground-truth
    occupancy riding along so accuracy-under-fault can be scored after
    timestamps have been skewed or frames reordered.
    """

    link_id: str
    t_s: float
    features: np.ndarray
    label: int | None = None

    def with_features(self, features: np.ndarray) -> "ChaosFrame":
        return dataclasses.replace(self, features=features)

    def with_time(self, t_s: float) -> "ChaosFrame":
        return dataclasses.replace(self, t_s=float(t_s))


class FaultInjector:
    """Base class: RNG binding and the activate/process/flush lifecycle."""

    def __init__(self) -> None:
        self._rng: np.random.Generator | None = None
        self._active_since: float | None = None

    # ------------------------------------------------------------ lifecycle

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConfigurationError(
                f"{type(self).__name__} has no RNG bound; call bind() "
                "(ChaosSchedule does this before every replay)"
            )
        return self._rng

    @property
    def active(self) -> bool:
        return self._active_since is not None

    @property
    def active_since_s(self) -> float:
        if self._active_since is None:
            raise ConfigurationError(f"{type(self).__name__} is not active")
        return self._active_since

    def bind(self, rng: np.random.Generator) -> None:
        """Attach the replay RNG and reset all per-replay state."""
        self._rng = rng
        self._active_since = None
        self._on_bind()

    def activate(self, t_s: float) -> None:
        """Enter the fault window at stream time ``t_s``."""
        self._active_since = float(t_s)
        self._on_activate(t_s)

    def deactivate(self) -> list[ChaosFrame]:
        """Leave the window; returns any frames the injector buffered."""
        flushed = self.flush()
        self._active_since = None
        return flushed

    # ---------------------------------------------------------------- hooks

    def _on_bind(self) -> None:
        """Reset injector-specific state; called by :meth:`bind`."""

    def _on_activate(self, t_s: float) -> None:
        """Injector-specific window entry; called by :meth:`activate`."""

    def process(self, frame: ChaosFrame) -> list[ChaosFrame]:  # pragma: no cover
        """Transform one frame while active; may emit 0..n frames."""
        raise NotImplementedError

    def flush(self) -> list[ChaosFrame]:
        """Emit any buffered frames (window close / end of stream)."""
        return []


class RowFault(FaultInjector):
    """A fault that corrupts the feature row of every frame it sees."""

    def process(self, frame: ChaosFrame) -> list[ChaosFrame]:
        row = np.array(frame.features, dtype=float, copy=True)
        return [frame.with_features(self.apply_row(frame.t_s, row))]

    def apply_row(self, t_s: float, row: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Corrupt one feature row (already a private copy) and return it."""
        raise NotImplementedError


def resolve_columns(env_slice: slice, width: int, owner: str) -> slice:
    """Validate that ``env_slice`` addresses real columns of a ``width`` row.

    Shared by the sensor faults and the serving fallback: a CSI-only row
    has no T/H columns, and silently producing an empty slice is how the
    original ``EnvThresholdFallback`` bug crashed — fail with a clear
    message instead.
    """
    start, stop, step = env_slice.indices(width)
    wanted_stop = env_slice.stop
    if (wanted_stop is not None and wanted_stop > width) or len(range(start, stop, step)) < 1:
        raise ShapeError(
            f"{owner} expects feature rows carrying environment columns at "
            f"{env_slice.start}:{env_slice.stop} (e.g. 64 CSI subcarriers "
            f"followed by temperature and humidity), got width {width} — "
            "CSI-only rows have no T/H columns"
        )
    return slice(start, stop, step)
