"""Frame-delivery faults: outages, clock trouble, out-of-order frames.

These injectors corrupt *when and whether* frames arrive rather than what
they contain — the failure modes of the transport between sniffer and
server.  They exercise the serving engine's admission and batching
machinery: an outage starves links (and ends, which must flip health back
to HEALTHY), clock skew feeds the stale-drop policy, and reordering
stresses the stream-time bookkeeping.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from ..exceptions import ConfigurationError
from .base import ChaosFrame, FaultInjector


class LinkOutage(FaultInjector):
    """Suppress every frame (optionally of specific links) while active.

    The dropped-frame count is exposed as :attr:`suppressed` so a chaos
    report can reconcile submitted vs. answered frames exactly.
    """

    def __init__(self, link_ids: Collection[str] | None = None) -> None:
        super().__init__()
        self.link_ids = None if link_ids is None else frozenset(link_ids)
        self.suppressed = 0

    def _on_bind(self) -> None:
        self.suppressed = 0

    def process(self, frame: ChaosFrame) -> list[ChaosFrame]:
        if self.link_ids is None or frame.link_id in self.link_ids:
            self.suppressed += 1
            return []
        return [frame]


class ClockSkew(FaultInjector):
    """Timestamp corruption: uniform jitter plus cumulative drift.

    Each in-window frame's timestamp becomes
    ``t + drift_per_s * (t - window_start) + U(-jitter_s, +jitter_s)``.
    With jitter comparable to the frame period this produces locally
    out-of-order timestamps — exactly what NTP hiccups on a sniffer do.
    """

    def __init__(self, jitter_s: float = 0.5, drift_per_s: float = 0.0) -> None:
        super().__init__()
        if jitter_s < 0:
            raise ConfigurationError("jitter_s must be >= 0")
        if jitter_s == 0 and drift_per_s == 0:
            raise ConfigurationError("ClockSkew with no jitter and no drift is a no-op")
        self.jitter_s = jitter_s
        self.drift_per_s = drift_per_s

    def process(self, frame: ChaosFrame) -> list[ChaosFrame]:
        t = frame.t_s + self.drift_per_s * (frame.t_s - self.active_since_s)
        if self.jitter_s:
            t += float(self.rng.uniform(-self.jitter_s, self.jitter_s))
        return [frame.with_time(t)]


class FrameReorder(FaultInjector):
    """Deliver frames out of order: permute every ``depth`` buffered frames.

    Models a bursty transport that batches and re-sends: frames are held
    until ``depth`` accumulate, then released in a random permutation.
    Whatever is still buffered when the window closes flushes out (also
    permuted), so no frame is ever lost to reordering.
    """

    def __init__(self, depth: int = 4) -> None:
        super().__init__()
        if depth < 2:
            raise ConfigurationError("depth must be >= 2 (1 would be a no-op)")
        self.depth = depth
        self._buffer: list[ChaosFrame] = []

    def _on_bind(self) -> None:
        self._buffer = []

    def _emit(self) -> list[ChaosFrame]:
        order = self.rng.permutation(len(self._buffer))
        out = [self._buffer[i] for i in order]
        self._buffer = []
        return out

    def process(self, frame: ChaosFrame) -> list[ChaosFrame]:
        self._buffer.append(frame)
        if len(self._buffer) >= self.depth:
            return self._emit()
        return []

    def flush(self) -> list[ChaosFrame]:
        if not self._buffer:
            return []
        return self._emit()
