"""repro — reproduction of "Towards Deep Learning-based Occupancy Detection
Via WiFi Sensing in Unconstrained Environments" (DATE 2023).

The library is organised bottom-up:

* :mod:`repro.channel` / :mod:`repro.environment` — the physics and
  behavioural substrates replacing the paper's private testbed;
* :mod:`repro.data` — the Table I dataset pipeline and Table III folds;
* :mod:`repro.nn` / :mod:`repro.baselines` — the from-scratch learning
  stacks (autograd MLP; logistic regression, random forest, OLS);
* :mod:`repro.core` — the paper's contribution: the occupancy detector,
  the environment regressor, and the Table IV / Table V experiment
  harness;
* :mod:`repro.xai` — Grad-CAM feature importance (Figure 3);
* :mod:`repro.analysis` — the Section V-A profiling pipeline;
* :mod:`repro.deploy` — quantization and Nucleo-L432KC resource accounting;
* :mod:`repro.serve` — the micro-batched multi-link inference engine;
* :mod:`repro.faults` — seedable fault injection and the chaos-bench
  accuracy-under-fault harness.

Quickstart::

    from repro import CampaignConfig, generate_benchmark_folds, OccupancyDetector
    from repro.core import FeatureSet, extract_features

    dataset, split = generate_benchmark_folds(CampaignConfig.smoke_scale())
    x = extract_features(split.train.data, FeatureSet.CSI)
    detector = OccupancyDetector(n_inputs=x.shape[1]).fit(x, split.train.data.occupancy)
"""

from .config import (
    BehaviorConfig,
    CampaignConfig,
    RadioConfig,
    RoomConfig,
    ThermalConfig,
    TrainingConfig,
)
from .core.detector import OccupancyDetector
from .core.estimator import Estimator, PersistentEstimator
from .core.regressor import EnvironmentRegressor
from .core.counter import OccupantCounter
from .core.activity import ActivityRecognizer
from .core.features import FeatureSet, extract_features
from .data.dataset import OccupancyDataset
from .data.folds import FoldSplit, make_paper_folds
from .data.synthetic import generate_benchmark_dataset, generate_benchmark_folds
from .exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "BehaviorConfig",
    "CampaignConfig",
    "RadioConfig",
    "RoomConfig",
    "ThermalConfig",
    "TrainingConfig",
    "OccupancyDetector",
    "Estimator",
    "PersistentEstimator",
    "EnvironmentRegressor",
    "OccupantCounter",
    "ActivityRecognizer",
    "FeatureSet",
    "extract_features",
    "OccupancyDataset",
    "FoldSplit",
    "make_paper_folds",
    "generate_benchmark_dataset",
    "generate_benchmark_folds",
    "ReproError",
    "__version__",
]
