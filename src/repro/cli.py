"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows:

* ``generate`` — simulate a campaign and save it (NPZ or Table I CSV);
* ``profile`` — the Section V-A profiling report of a saved campaign;
* ``folds`` — print the Table III fold table of a saved campaign;
* ``table4`` — train/evaluate the occupancy grid on a saved campaign;
* ``table5`` — the linear-vs-neural T/H regression comparison;
* ``footprint`` — quantize the paper MLP and print the Nucleo budget;
* ``serve-bench`` — per-frame vs. micro-batched serving throughput;
* ``perf-bench`` — fastpath (frozen-plan) vs. tensor-path inference
  latency/throughput, with a hard numerical-equivalence gate and a
  JSON report (``BENCH_serve.json``) for CI;
* ``chaos-bench`` — accuracy-under-fault across the chaos scenario suite;
* ``guard-bench`` — the self-healing ablation: chaos suite with the
  guard stack off vs on, plus an exact frame-ledger reconciliation;
* ``fleet-bench`` — multi-tenant fused vs per-tenant serving with the
  byte-identity gate (``BENCH_fleet.json``);
* ``rollout-bench`` — a simulated mid-run room shift driven through the
  drift→retrain→shadow→hot-swap loop, gated on zero dropped frames and
  exact ledger reconciliation (``BENCH_rollout.json``);
* ``overload-bench`` — bursty 10:1 hot-tenant traffic against
  unprotected / rate-limited / governor-degraded / fleet arms, gated on
  exact shed-cause reconciliation, deadline honesty, reserved-rate
  fairness and the degradation ladder (``BENCH_overload.json``);
* ``obs-report`` — render a trace dump (``--trace-dump`` on the bench
  commands) back into per-stage latency tables and the event-log tail.

Every command is a thin shell over the public API, so scripts and
notebooks can do the same with imports.  The seven ``*-bench`` commands
share one argparse parent (:func:`repro.benchkit.bench_parent`) so
``--seed``/``--rate``/``--output``/``--quick`` are spelled and defaulted
identically everywhere, and a ``--output *.json`` always gets the common
report envelope (:func:`repro.benchkit.make_envelope`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import benchkit
from .benchkit import DEFAULT_RATE_HZ, DEFAULT_SEED
from .config import CampaignConfig, TrainingConfig
from .core.experiment import OccupancyExperiment, RegressionExperiment
from .core.model_zoo import build_paper_mlp
from .data.folds import make_paper_folds
from .data.io import load_npz, save_csv, save_npz
from .data.recording import CollectionCampaign
from .deploy.footprint import estimate_footprint
from .deploy.quantize import quantize_model
from .deploy.timing import cortex_m4_latency_ms

#: Epilog appended to every subcommand that takes the common flags.
COMMON_FLAGS_EPILOG = """\
common flags (spelled and defaulted identically across subcommands):
  --seed N      RNG seed (default 2022)
  --rate HZ     sample rate in rows per second (default 0.5)
  --output PATH where to write this command's artifact
                (bench commands: .json gets the enveloped JSON report)
  --quick       bench commands only: CI smoke mode — shrink the
                workload, keep every gate/assertion
"""


def _format_rows(rows: list[dict[str, object]]) -> str:
    if not rows:
        return ""
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _emit(text: str, output: str | None) -> None:
    """Print ``text`` and, when ``--output`` was given, also write it there."""
    print(text)
    if output:
        Path(output).write_text(text + "\n")
        print(f"(written to {output})")


def _emit_bench_report(
    report, args: argparse.Namespace, bench: str, wall_clock_s: float | None = None
) -> None:
    """Print a bench report; ``--output *.json`` gets the enveloped form.

    Every bench command funnels through here so the JSON artifacts all
    carry the same envelope (schema version, git describe, wall clock)
    around the report's own ``to_json()`` payload.
    """
    print(report.describe())
    if not args.output:
        return
    if str(args.output).endswith(".json"):
        envelope = benchkit.make_envelope(
            bench,
            seed=getattr(args, "seed", None),
            quick=getattr(args, "quick", False),
            wall_clock_s=wall_clock_s,
        )
        path = benchkit.save_report(args.output, report.to_json(), envelope)
        print(f"(JSON report written to {path})")
    else:
        Path(args.output).write_text(report.describe() + "\n")
        print(f"(written to {args.output})")


def cmd_generate(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        duration_h=args.hours, sample_rate_hz=args.rate, seed=args.seed
    )
    print(f"Simulating {config.duration_h} h at {config.sample_rate_hz} Hz "
          f"({config.n_samples} rows, seed {config.seed})...")
    dataset = CollectionCampaign(config).run(progress_every=20_000)
    path = Path(args.output)
    if path.suffix == ".csv":
        save_csv(dataset, path)
    else:
        save_npz(dataset, path)
    balance = dataset.class_balance()
    print(f"Saved {len(dataset)} rows to {path} "
          f"({balance['empty']:.0%} empty / {balance['occupied']:.0%} occupied)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.profiling import profile_dataset

    dataset = load_npz(args.dataset)
    profile = profile_dataset(dataset)
    print(f"rows: {profile.n_rows}, duplicates: {profile.n_duplicate_timestamps}, "
          f"non-finite: {profile.n_non_finite}")
    print(f"empty {profile.empty_fraction:.1%} / occupied {profile.occupied_fraction:.1%}")
    print(f"occupant distribution: {profile.occupant_distribution}")
    print(f"corr(T, H) = {profile.corr_temperature_humidity:+.2f}, "
          f"corr(T, occ) = {profile.corr_temperature_occupancy:+.2f}, "
          f"corr(H, occ) = {profile.corr_humidity_occupancy:+.2f}, "
          f"corr(time, env) = {profile.corr_time_environment():+.2f}")
    for name, result in profile.adf.items():
        print(f"ADF {name:>12}: stat {result.statistic:8.2f}  p {result.p_value:.3f}  "
              f"{'stationary' if result.is_stationary else 'NON-stationary'}")
    return 0


def cmd_folds(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    print(_format_rows([dict(f.describe()) for f in split.all_folds]))
    return 0


def _training_from_args(args: argparse.Namespace) -> TrainingConfig:
    return TrainingConfig(epochs=args.epochs, seed=args.seed)


def cmd_table4(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    experiment = OccupancyExperiment(
        split, training=_training_from_args(args), max_train_rows=args.max_train_rows
    )
    result = experiment.run(verbose=True)
    _emit(_format_rows(result.rows()), args.output)
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    experiment = RegressionExperiment(
        split, training=_training_from_args(args), max_train_rows=args.max_train_rows
    )
    result = experiment.run()
    _emit(_format_rows(result.rows()), args.output)
    return 0


def cmd_footprint(args: argparse.Namespace) -> int:
    model = build_paper_mlp(args.inputs)
    quantized = quantize_model(model)
    report = estimate_footprint(quantized)
    print(f"parameters: {model.n_parameters():,}")
    print(report.describe())
    print(f"Cortex-M4 latency model: {cortex_m4_latency_ms(quantized):.2f} ms/sample")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from .baselines.pipeline import ScaledLogistic
    from .core.detector import OccupancyDetector
    from .serve.bench import run_serve_bench
    from .serve.robustness import PriorFallback

    # Fail on bad knobs before paying for simulation + training.
    if args.links < 1:
        print("serve-bench: --links must be >= 1", file=sys.stderr)
        return 2
    if args.max_batch < 1:
        print("serve-bench: --max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.quick:
        args.hours = min(args.hours, 0.5)
        args.epochs = min(args.epochs, 1)

    config = CampaignConfig(
        duration_h=args.hours, sample_rate_hz=args.rate, seed=args.seed
    )
    print(f"Simulating {config.duration_h} h at {config.sample_rate_hz} Hz "
          f"({config.n_samples} rows, seed {config.seed})...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data

    if args.model == "mlp":
        estimator = OccupancyDetector(
            dataset.n_subcarriers, TrainingConfig(epochs=args.epochs, seed=args.seed)
        )
    else:
        estimator = ScaledLogistic()
    print(f"Training the {args.model} estimator on fold 0 ({len(train)} rows)...")
    estimator.fit(train.csi, train.occupancy)

    fallback = PriorFallback().fit(train.csi, train.occupancy)
    print(f"Replaying {len(dataset)} frames over {args.links} link(s)...\n")
    bench_start = time.perf_counter()
    report = run_serve_bench(
        estimator,
        dataset,
        n_links=args.links,
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms if args.max_latency_ms > 0 else None,
        fallback=fallback,
    )
    _emit_bench_report(
        report, args, "serve-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    return 0


def cmd_perf_bench(args: argparse.Namespace) -> int:
    from .fastpath import run_perf_bench

    if args.inputs < 1:
        print("perf-bench: --inputs must be >= 1", file=sys.stderr)
        return 2
    mode = "quick (CI smoke)" if args.quick else "full"
    print(f"Benchmarking the {args.inputs}-input paper MLP, fastpath vs "
          f"tensor path ({mode}, seed {args.seed})...\n")
    bench_start = time.perf_counter()
    report = run_perf_bench(n_inputs=args.inputs, seed=args.seed, quick=args.quick)
    wall_clock_s = time.perf_counter() - bench_start
    print(report.describe())
    if args.output:
        envelope = benchkit.make_envelope(
            "perf-bench", seed=args.seed, quick=args.quick, wall_clock_s=wall_clock_s
        )
        path = benchkit.save_report(args.output, report.to_json(), envelope)
        print(f"(JSON report written to {path})")
    # Exit code gates deterministic invariants only (never wall-clock
    # speed): tensor/fastpath equivalence, quantized accuracy deltas,
    # and exact frame-ledger reconciliation under saturation.
    if not report.equivalent:
        print(f"perf-bench: fastpath DIVERGED from the tensor path "
              f"(max |dp| = {report.max_divergence:.3g} > "
              f"tolerance {report.tolerance:g})", file=sys.stderr)
        return 1
    if not report.quantized_ok:
        failed = [row.mode for row in report.quantized if not row.ok]
        print(f"perf-bench: quantized plan(s) {failed} exceeded the "
              f"accuracy-delta gate vs float32", file=sys.stderr)
        return 1
    if not report.saturated_ok:
        print("perf-bench: saturated arm failed frame-ledger "
              "reconciliation (or leaked arena slots)", file=sys.stderr)
        return 1
    return 0


def _observer_factory(trace_dump: str | None):
    """``name -> Observer`` factory when ``--trace-dump`` was given, else None."""
    if not trace_dump:
        return None
    from .obs import Observer

    return lambda name: Observer(label=name)


def _write_trace_dump(trace_dump: str | None, observers: dict) -> None:
    if not trace_dump:
        return
    from .obs import write_dump

    path = write_dump(trace_dump, observers)
    print(f"(trace dump written to {path}; render with `python -m repro obs-report {path}`)")


def cmd_obs_report(args: argparse.Namespace) -> int:
    from .exceptions import SerializationError
    from .obs import load_dump, render_report

    try:
        dump = load_dump(args.dump)
    except SerializationError as error:
        print(f"obs-report: {error}", file=sys.stderr)
        return 2
    if args.prom:
        blocks = [
            run["prometheus"] for run in dump.get("runs", []) if run.get("prometheus")
        ]
        if not blocks:
            print("obs-report: dump carries no Prometheus exposition "
                  "(run was not registry-bound)", file=sys.stderr)
            return 1
        _emit("\n".join(blocks).rstrip("\n"), args.output)
        return 0
    _emit(render_report(dump, events_tail=args.events), args.output)
    return 0


def cmd_chaos_bench(args: argparse.Namespace) -> int:
    from .baselines.pipeline import ScaledLogistic
    from .core.detector import OccupancyDetector
    from .faults.bench import default_scenario_suite, run_chaos_bench
    from .serve.robustness import PriorFallback

    if args.links < 1:
        print("chaos-bench: --links must be >= 1", file=sys.stderr)
        return 2
    if args.max_batch < 1:
        print("chaos-bench: --max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.quick:
        args.hours = min(args.hours, 0.5)
        args.epochs = min(args.epochs, 1)

    config = CampaignConfig(
        duration_h=args.hours, sample_rate_hz=args.rate, seed=args.seed
    )
    print(f"Simulating {config.duration_h} h at {config.sample_rate_hz} Hz "
          f"({config.n_samples} rows, seed {config.seed})...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data

    if args.model == "mlp":
        estimator = OccupancyDetector(
            dataset.n_subcarriers, TrainingConfig(epochs=args.epochs, seed=args.seed)
        )
    else:
        estimator = ScaledLogistic()
    print(f"Training the {args.model} estimator on fold 0 ({len(train)} rows)...")
    estimator.fit(train.csi, train.occupancy)
    fallback = PriorFallback().fit(train.csi, train.occupancy)

    t = dataset.timestamps_s
    scenarios = default_scenario_suite(
        float(t[0]), float(t[-1]), n_csi=dataset.n_subcarriers
    )
    if args.scenario:
        known = {s.name for s in scenarios}
        unknown = [name for name in args.scenario if name not in known]
        if unknown:
            print(f"chaos-bench: unknown scenario(s) {unknown}; "
                  f"choose from {sorted(known)}", file=sys.stderr)
            return 2
        scenarios = [s for s in scenarios if s.name in args.scenario]
    print(f"Replaying {len(dataset)} frames over {args.links} link(s) "
          f"through {len(scenarios)} scenario(s)...\n")
    bench_start = time.perf_counter()
    report = run_chaos_bench(
        estimator,
        dataset,
        scenarios,
        n_links=args.links,
        max_batch=args.max_batch,
        seed=args.seed,
        fallback=fallback,
        observer_factory=_observer_factory(args.trace_dump),
    )
    _emit_bench_report(
        report, args, "chaos-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    _write_trace_dump(args.trace_dump, report.observers)
    return 0


def cmd_guard_bench(args: argparse.Namespace) -> int:
    import numpy as np

    from .baselines.pipeline import ScaledLogistic
    from .guard import GuardPolicy, ReferenceStats, run_guard_bench
    from .serve.robustness import PriorFallback

    if args.links < 1:
        print("guard-bench: --links must be >= 1", file=sys.stderr)
        return 2
    if args.max_batch < 1:
        print("guard-bench: --max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.quick:
        args.hours = min(args.hours, 0.5)

    config = CampaignConfig(
        duration_h=args.hours, sample_rate_hz=args.rate, seed=args.seed
    )
    print(f"Simulating {config.duration_h} h at {config.sample_rate_hz} Hz "
          f"({config.n_samples} rows, seed {config.seed})...")
    dataset = CollectionCampaign(config).run()
    split = make_paper_folds(dataset)
    train = split.train.data

    # The guarded replay carries the T/H columns, so train on CSI + env.
    features = np.hstack([train.csi, train.environment])
    estimator = ScaledLogistic()
    print(f"Training the estimator on fold 0 ({len(train)} rows, CSI+env)...")
    estimator.fit(features, train.occupancy)
    fallback = PriorFallback().fit(features, train.occupancy)

    reference = ReferenceStats.fit(features)
    if args.stats:
        path = reference.save(args.stats)
        print(f"Reference statistics written to {path}")
    n_csi = dataset.n_subcarriers
    policy = GuardPolicy(
        reference=reference,
        n_features=n_csi + 2,
        env_slice=slice(n_csi, n_csi + 2),
        seed=args.seed,
    )
    print(f"Replaying {len(dataset)} frames over {args.links} link(s), "
          f"guard off then on...\n")
    bench_start = time.perf_counter()
    report = run_guard_bench(
        estimator,
        dataset,
        policy,
        n_links=args.links,
        max_batch=args.max_batch,
        seed=args.seed,
        fallback=fallback,
        observer_factory=_observer_factory(args.trace_dump),
    )
    _emit_bench_report(
        report, args, "guard-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    _write_trace_dump(args.trace_dump, report.guarded.observers)
    if report.unaccounted_total:
        print(f"guard-bench: {report.unaccounted_total} unaccounted frames",
              file=sys.stderr)
        return 1
    return 0


def cmd_fleet_bench(args: argparse.Namespace) -> int:
    from .fleet.bench import run_fleet_bench

    if args.tenants < 1:
        print("fleet-bench: --tenants must be >= 1", file=sys.stderr)
        return 2
    if args.frames < 1:
        print("fleet-bench: --frames must be >= 1", file=sys.stderr)
        return 2
    if args.rate <= 0:
        print("fleet-bench: --rate must be positive", file=sys.stderr)
        return 2
    if args.churn_ticks < 0:
        print("fleet-bench: --churn-ticks must be >= 0", file=sys.stderr)
        return 2

    mode = "quick (CI smoke)" if args.quick else "full"
    print(f"Fleet bench: {args.tenants} tenant(s) x {args.frames} frames, "
          f"fused vs per-tenant dispatch ({mode}, seed {args.seed})...\n")
    bench_start = time.perf_counter()
    report = run_fleet_bench(
        n_tenants=args.tenants,
        frames_per_tenant=args.frames,
        frames_per_tick=args.frames_per_tick,
        rate_hz=args.rate,
        tile=args.tile,
        distinct_every=args.distinct_every,
        seed=args.seed,
        quick=args.quick,
        churn_ticks=args.churn_ticks,
    )
    _emit_bench_report(
        report, args, "fleet-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    # CI gates on the deterministic invariants only — byte identity and
    # exact ledger/counter reconciliation — never on throughput numbers.
    failed = []
    if not report.byte_identical:
        failed.append("fused outputs DIVERGED from per-tenant dispatch")
    if not report.ledger_reconciled:
        failed.append("observer ledgers do not reconcile")
    if not report.counters_reconciled:
        failed.append("per-tenant counter rollups do not reconcile")
    if report.churn is not None:
        if not report.churn.byte_identical:
            failed.append("churn arm: fused outputs DIVERGED under tenant churn")
        if not report.churn.ledger_reconciled:
            failed.append("churn arm: per-tenant ledgers do not reconcile")
        if not report.churn.drain_exact:
            failed.append("churn arm: a detach drain did not reconcile "
                          "(drained != served + shed)")
        if report.churn.post_detach_serves:
            failed.append(f"churn arm: {report.churn.post_detach_serves} "
                          f"frame(s) served after their tenant detached")
    if failed:
        for reason in failed:
            print(f"fleet-bench: {reason}", file=sys.stderr)
        return 1
    return 0


def cmd_rollout_bench(args: argparse.Namespace) -> int:
    from .rollout.bench import run_rollout_bench

    if args.stream_frames < 64:
        print("rollout-bench: --stream-frames must be >= 64", file=sys.stderr)
        return 2
    if not 16 <= args.shift_at < args.stream_frames:
        print("rollout-bench: --shift-at must lie in [16, --stream-frames)",
              file=sys.stderr)
        return 2

    mode = "quick (CI smoke)" if args.quick else "full"
    print(f"Rollout bench: {args.stream_frames} streamed frames, room shift "
          f"at frame {args.shift_at}, healthy vs forced-bad challenger "
          f"({mode}, seed {args.seed})...\n")
    bench_start = time.perf_counter()
    report = run_rollout_bench(
        n_stream=args.stream_frames,
        shift_at=args.shift_at,
        train_epochs=args.epochs,
        seed=args.seed,
        quick=args.quick,
    )
    _emit_bench_report(
        report, args, "rollout-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    # CI gates on the deterministic invariants only — zero drops, exact
    # champion/challenger ledger reconciliation, and the two arms'
    # verdicts — never on timing or accuracy numbers.
    failed = []
    if not report.zero_drops:
        failed.append(
            f"frames were dropped (healthy {report.healthy.dropped_frames}, "
            f"forced-bad {report.forced_bad.dropped_frames}); the hot-swap "
            "path must not lose frames"
        )
    if not report.ledgers_reconciled:
        failed.append("champion/challenger ledgers do not reconcile exactly")
    if not report.healthy_promoted:
        failed.append("the healthy challenger was not promoted")
    if not report.bad_never_promoted:
        failed.append("the forced-bad challenger was not stopped")
    if failed:
        for reason in failed:
            print(f"rollout-bench: {reason}", file=sys.stderr)
        return 1
    return 0


def cmd_overload_bench(args: argparse.Namespace) -> int:
    from .overload.bench import run_overload_bench

    if args.cold_tenants < 1:
        print("overload-bench: --cold-tenants must be >= 1", file=sys.stderr)
        return 2
    if args.skew <= 1:
        print("overload-bench: --skew must be > 1", file=sys.stderr)
        return 2

    mode = "quick (CI smoke)" if args.quick else "full"
    print(f"Overload bench: 1 hot + {args.cold_tenants} cold tenant(s), "
          f"{args.skew:g}:1 burst skew, unprotected vs rate-limited vs "
          f"governor-degraded vs fleet ({mode}, seed {args.seed})...\n")
    bench_start = time.perf_counter()
    report = run_overload_bench(
        duration_s=args.duration,
        n_cold=args.cold_tenants,
        skew=args.skew,
        reserved_hz=args.reserved_hz,
        deadline_ms=args.deadline_ms,
        service_hz=args.service_hz,
        seed=args.seed,
        quick=args.quick,
    )
    _emit_bench_report(
        report, args, "overload-bench", wall_clock_s=time.perf_counter() - bench_start
    )
    # CI gates on the deterministic invariants only — ledger/shed-cause
    # reconciliation, deadline honesty, reserved-rate fairness and the
    # ladder walk — never on goodput or latency numbers.
    failed = []
    if not report.reconciled:
        failed.append("shed-cause ledgers do not reconcile exactly")
    if not report.deadline_honest:
        failed.append("a frame was served past its deadline budget")
    if not report.fairness_ok:
        failed.append("a cold tenant under its reserved rate lost frames "
                      "to the hot tenant's bursts")
    if not report.ladder_walked:
        failed.append("the governed arm did not walk the degradation ladder "
                      "(escalate, probe, recover)")
    if failed:
        for reason in failed:
            print(f"overload-bench: {reason}", file=sys.stderr)
        return 1
    return 0


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"RNG seed (default {DEFAULT_SEED})")


def _add_rate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rate", type=float, default=DEFAULT_RATE_HZ,
                        help=f"rows per second (default {DEFAULT_RATE_HZ})")


def _add_output(parser: argparse.ArgumentParser, default: str | None, help_text: str) -> None:
    parser.add_argument("--output", default=default, help=help_text)


def _add_trace_dump(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-dump", metavar="PATH", default=None,
                        help="trace the replay and write an obs dump here "
                             "(render with `repro obs-report PATH`)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiFi-CSI occupancy detection (DATE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(
            name,
            help=help_text,
            epilog=COMMON_FLAGS_EPILOG,
            formatter_class=argparse.RawDescriptionHelpFormatter,
            **kwargs,
        )

    def add_bench(
        name: str,
        help_text: str,
        *,
        output_default: str | None = None,
        output_help: str | None = None,
    ) -> argparse.ArgumentParser:
        """A bench subcommand riding the shared --seed/--rate/--output/--quick parent."""
        parent_kwargs = {"output_default": output_default}
        if output_help is not None:
            parent_kwargs["output_help"] = output_help
        return add_command(
            name, help_text, parents=[benchkit.bench_parent(**parent_kwargs)]
        )

    p = add_command("generate", "simulate a campaign and save it")
    _add_output(p, "campaign.npz",
                "output path (.npz, or .csv for Table I format; default campaign.npz)")
    p.add_argument("--hours", type=float, default=74.0)
    _add_rate(p)
    _add_seed(p)
    p.set_defaults(func=cmd_generate)

    p = add_command("profile", "Section V-A profiling of a saved campaign")
    p.add_argument("dataset", help="path to a .npz campaign")
    p.set_defaults(func=cmd_profile)

    p = add_command("folds", "print the Table III fold table")
    p.add_argument("dataset")
    p.set_defaults(func=cmd_folds)

    for name, func in (("table4", cmd_table4), ("table5", cmd_table5)):
        p = add_command(name, f"regenerate {name} on a saved campaign")
        p.add_argument("dataset")
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--max-train-rows", type=int, default=12_000)
        _add_seed(p)
        _add_output(p, None, "also write the printed table to this path")
        p.set_defaults(func=func)

    p = add_command("footprint", "Nucleo-L432KC deployment accounting")
    p.add_argument("--inputs", type=int, default=66)
    p.set_defaults(func=cmd_footprint)

    p = add_bench("serve-bench", "per-frame vs. micro-batched serving throughput")
    p.add_argument("--hours", type=float, default=2.0,
                   help="synthetic campaign length (default 2.0)")
    p.add_argument("--epochs", type=int, default=3,
                   help="training epochs for the mlp estimator (default 3)")
    p.add_argument("--model", choices=("mlp", "logistic"), default="mlp",
                   help="estimator served by both paths (default mlp)")
    p.add_argument("--links", type=int, default=4,
                   help="simulated sniffer links (default 4)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch flush size (default 64)")
    p.add_argument("--max-latency-ms", type=float, default=0.0,
                   help="micro-batch latency budget in stream time; "
                        "0 disables the trigger and benchmarks the "
                        "backlogged regime (default 0)")
    p.set_defaults(func=cmd_serve_bench)

    p = add_bench(
        "perf-bench",
        "fastpath vs tensor-path inference regression",
        output_default="BENCH_serve.json",
        output_help="where to write the JSON report (default BENCH_serve.json)",
    )
    p.add_argument("--inputs", type=int, default=64,
                   help="feature width of the benchmarked MLP "
                        "(default 64; use 66 for CSI+Env)")
    p.set_defaults(func=cmd_perf_bench)

    p = add_bench("chaos-bench", "accuracy-under-fault across the chaos suite")
    p.add_argument("--hours", type=float, default=2.0,
                   help="synthetic campaign length (default 2.0)")
    p.add_argument("--epochs", type=int, default=3,
                   help="training epochs for the mlp estimator (default 3)")
    p.add_argument("--model", choices=("mlp", "logistic"), default="logistic",
                   help="primary estimator under test (default logistic)")
    p.add_argument("--links", type=int, default=2,
                   help="simulated sniffer links (default 2)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="micro-batch flush size (default 32)")
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="run only this scenario (repeatable; default: all)")
    _add_trace_dump(p)
    p.set_defaults(func=cmd_chaos_bench)

    p = add_bench("guard-bench", "self-healing ablation: chaos suite, guard off vs on")
    p.add_argument("--hours", type=float, default=2.0,
                   help="synthetic campaign length (default 2.0)")
    p.add_argument("--links", type=int, default=2,
                   help="simulated sniffer links (default 2)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="micro-batch flush size (default 32)")
    p.add_argument("--stats", metavar="PATH", default=None,
                   help="also persist the training-fold reference statistics "
                        "(.npz) used by the drift sentinel")
    _add_trace_dump(p)
    p.set_defaults(func=cmd_guard_bench)

    p = add_bench(
        "fleet-bench",
        "multi-tenant fused vs per-tenant serving, with byte-identity gate",
        output_default="BENCH_fleet.json",
        output_help="where to write the JSON report (default BENCH_fleet.json)",
    )
    p.add_argument("--tenants", type=int, default=64,
                   help="number of simulated rooms (default 64)")
    p.add_argument("--frames", type=int, default=64,
                   help="frames submitted per tenant (default 64)")
    p.add_argument("--frames-per-tick", type=int, default=4,
                   help="frames each tenant submits between scheduler ticks "
                        "(default 4)")
    p.add_argument("--tile", type=int, default=16,
                   help="fixed GEMM tile size of the shape-stable runners "
                        "(default 16)")
    p.add_argument("--distinct-every", type=int, default=8,
                   help="every Nth tenant gets its own odd-one-out plan that "
                        "cannot fuse (default 8; 0 for one shared cohort)")
    p.add_argument("--churn-ticks", type=int, default=24,
                   help="ticks of the elasticity churn arm — seeded "
                        "attach/detach/swap under live traffic, gated on "
                        "ledger + drain + identity (default 24; 0 disables)")
    p.set_defaults(func=cmd_fleet_bench)

    p = add_bench(
        "rollout-bench",
        "drift-triggered retrain + champion/challenger hot-swap under a "
        "simulated room shift",
        output_default="BENCH_rollout.json",
        output_help="where to write the JSON report (default BENCH_rollout.json)",
    )
    p.add_argument("--stream-frames", type=int, default=768,
                   help="frames streamed through the engine (default 768)")
    p.add_argument("--shift-at", type=int, default=128,
                   help="stream index where the room shift hits (default 128)")
    p.add_argument("--epochs", type=int, default=25,
                   help="champion training epochs (default 25)")
    p.set_defaults(func=cmd_rollout_bench)

    p = add_bench(
        "overload-bench",
        "per-tenant rate limiting, deadlines and graceful degradation "
        "under bursty 10:1 hot-tenant traffic",
        output_default="BENCH_overload.json",
        output_help="where to write the JSON report (default BENCH_overload.json)",
    )
    p.add_argument("--duration", type=float, default=120.0,
                   help="stream-time length of the replay in seconds "
                        "(default 120)")
    p.add_argument("--cold-tenants", type=int, default=3,
                   help="steady well-behaved tenants beside the hot one "
                        "(default 3)")
    p.add_argument("--skew", type=float, default=10.0,
                   help="hot tenant's burst rate as a multiple of a cold "
                        "tenant's rate (default 10)")
    p.add_argument("--reserved-hz", type=float, default=8.0,
                   help="per-tenant reserved admission rate in the protected "
                        "arms (default 8)")
    p.add_argument("--deadline-ms", type=float, default=2000.0,
                   help="stream-time deadline budget per frame (default 2000)")
    p.add_argument("--service-hz", type=float, default=30.0,
                   help="modelled service capacity in frames/s (default 30)")
    p.set_defaults(func=cmd_overload_bench)

    p = add_command("obs-report", "render a bench trace dump (ledger, stages, events)")
    p.add_argument("dump", help="path to a dump written via --trace-dump")
    p.add_argument("--events", type=int, default=20, metavar="N",
                   help="event-log tail length per run (default 20)")
    p.add_argument("--prom", action="store_true",
                   help="print the stored Prometheus exposition instead of the report")
    _add_output(p, None, "also write the rendered report to this path")
    p.set_defaults(func=cmd_obs_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
