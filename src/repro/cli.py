"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows:

* ``generate`` — simulate a campaign and save it (NPZ or Table I CSV);
* ``profile`` — the Section V-A profiling report of a saved campaign;
* ``folds`` — print the Table III fold table of a saved campaign;
* ``table4`` — train/evaluate the occupancy grid on a saved campaign;
* ``table5`` — the linear-vs-neural T/H regression comparison;
* ``footprint`` — quantize the paper MLP and print the Nucleo budget.

Every command is a thin shell over the public API, so scripts and
notebooks can do the same with imports.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .config import CampaignConfig, TrainingConfig
from .core.experiment import OccupancyExperiment, RegressionExperiment
from .core.model_zoo import build_paper_mlp
from .data.folds import make_paper_folds
from .data.io import load_npz, save_csv, save_npz
from .data.recording import CollectionCampaign
from .deploy.footprint import estimate_footprint
from .deploy.quantize import quantize_model
from .deploy.timing import cortex_m4_latency_ms


def _print_rows(rows: list[dict[str, object]]) -> None:
    if not rows:
        return
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


def cmd_generate(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        duration_h=args.hours, sample_rate_hz=args.rate, seed=args.seed
    )
    print(f"Simulating {config.duration_h} h at {config.sample_rate_hz} Hz "
          f"({config.n_samples} rows, seed {config.seed})...")
    dataset = CollectionCampaign(config).run(progress_every=20_000)
    path = Path(args.output)
    if path.suffix == ".csv":
        save_csv(dataset, path)
    else:
        save_npz(dataset, path)
    balance = dataset.class_balance()
    print(f"Saved {len(dataset)} rows to {path} "
          f"({balance['empty']:.0%} empty / {balance['occupied']:.0%} occupied)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.profiling import profile_dataset

    dataset = load_npz(args.dataset)
    profile = profile_dataset(dataset)
    print(f"rows: {profile.n_rows}, duplicates: {profile.n_duplicate_timestamps}, "
          f"non-finite: {profile.n_non_finite}")
    print(f"empty {profile.empty_fraction:.1%} / occupied {profile.occupied_fraction:.1%}")
    print(f"occupant distribution: {profile.occupant_distribution}")
    print(f"corr(T, H) = {profile.corr_temperature_humidity:+.2f}, "
          f"corr(T, occ) = {profile.corr_temperature_occupancy:+.2f}, "
          f"corr(H, occ) = {profile.corr_humidity_occupancy:+.2f}, "
          f"corr(time, env) = {profile.corr_time_environment():+.2f}")
    for name, result in profile.adf.items():
        print(f"ADF {name:>12}: stat {result.statistic:8.2f}  p {result.p_value:.3f}  "
              f"{'stationary' if result.is_stationary else 'NON-stationary'}")
    return 0


def cmd_folds(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    _print_rows([dict(f.describe()) for f in split.all_folds])
    return 0


def _training_from_args(args: argparse.Namespace) -> TrainingConfig:
    return TrainingConfig(epochs=args.epochs)


def cmd_table4(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    experiment = OccupancyExperiment(
        split, training=_training_from_args(args), max_train_rows=args.max_train_rows
    )
    result = experiment.run(verbose=True)
    _print_rows(result.rows())
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    dataset = load_npz(args.dataset)
    split = make_paper_folds(dataset)
    experiment = RegressionExperiment(
        split, training=_training_from_args(args), max_train_rows=args.max_train_rows
    )
    result = experiment.run()
    _print_rows(result.rows())
    return 0


def cmd_footprint(args: argparse.Namespace) -> int:
    model = build_paper_mlp(args.inputs)
    quantized = quantize_model(model)
    report = estimate_footprint(quantized)
    print(f"parameters: {model.n_parameters():,}")
    print(report.describe())
    print(f"Cortex-M4 latency model: {cortex_m4_latency_ms(quantized):.2f} ms/sample")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiFi-CSI occupancy detection (DATE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="simulate a campaign and save it")
    p.add_argument("output", help="output path (.npz, or .csv for Table I format)")
    p.add_argument("--hours", type=float, default=74.0)
    p.add_argument("--rate", type=float, default=0.1, help="rows per second")
    p.add_argument("--seed", type=int, default=2022)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("profile", help="Section V-A profiling of a saved campaign")
    p.add_argument("dataset", help="path to a .npz campaign")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("folds", help="print the Table III fold table")
    p.add_argument("dataset")
    p.set_defaults(func=cmd_folds)

    for name, func in (("table4", cmd_table4), ("table5", cmd_table5)):
        p = sub.add_parser(name, help=f"regenerate {name} on a saved campaign")
        p.add_argument("dataset")
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--max-train-rows", type=int, default=12_000)
        p.set_defaults(func=func)

    p = sub.add_parser("footprint", help="Nucleo-L432KC deployment accounting")
    p.add_argument("--inputs", type=int, default=66)
    p.set_defaults(func=cmd_footprint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
