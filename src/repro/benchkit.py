"""Shared benchmark plumbing: common flags and the JSON report envelope.

Five CLI benchmarks (``serve-bench``, ``perf-bench``, ``chaos-bench``,
``guard-bench``, ``fleet-bench``) grew up at different times and each
re-declared its own ``--seed``/``--rate``/``--output`` spelling and its
own ad-hoc JSON shape.  This module is the single source of truth both
now share:

* :func:`bench_parent` — an ``argparse`` parent parser carrying the four
  common flags (``--seed``, ``--rate``, ``--output``, ``--quick``) with
  identical spelling, defaults and help everywhere;
* :func:`make_envelope` / :func:`wrap_report` — the common JSON report
  envelope: schema version, ``git describe`` of the producing tree, and
  wall-clock fields (generation timestamp + bench duration).  Envelope
  keys are *added alongside* each bench's own payload keys, never over
  them, so pre-envelope consumers keep working.

The envelope's ``schema_version`` covers the envelope keys only; each
bench still versions its payload through its own ``bench`` tag.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from pathlib import Path

#: Version of the envelope keys (schema_version/git_describe/…).
BENCH_SCHEMA_VERSION = 1

#: Shared flag defaults — single source of truth for every subcommand.
DEFAULT_SEED = 2022
DEFAULT_RATE_HZ = 0.5

#: One bound for every helper subprocess the toolkit spawns (seconds).
#: Callers outside this module (e.g. the C-runtime harness) import it
#: instead of hardcoding their own copy.
SUBPROCESS_TIMEOUT_S = 10.0


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree, or "unknown".

    Benchmark numbers without a code identity are unfalsifiable; this is
    best-effort and never raises — but failure modes stay distinguishable
    in the envelope: no git / not a checkout reads ``"unknown"``, while a
    hung git reads ``"timeout-after-10s"`` instead of being silently
    conflated with a missing binary.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=SUBPROCESS_TIMEOUT_S,
            cwd=Path(__file__).resolve().parent,
        )
    except subprocess.TimeoutExpired:
        return f"timeout-after-{SUBPROCESS_TIMEOUT_S:g}s"
    except OSError:
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


def make_envelope(
    bench: str,
    *,
    seed: int | None = None,
    quick: bool = False,
    wall_clock_s: float | None = None,
) -> dict:
    """The common report envelope for one bench run."""
    envelope = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "git_describe": git_describe(),
        "generated_unix_s": time.time(),
    }
    if seed is not None:
        envelope["seed"] = int(seed)
    if quick:
        envelope["quick"] = True
    if wall_clock_s is not None:
        envelope["wall_clock_s"] = float(wall_clock_s)
    return envelope


def wrap_report(payload: dict, envelope: dict) -> dict:
    """Merge envelope keys under a payload (payload keys always win)."""
    return {**envelope, **payload}


def save_report(path: str | Path, payload: dict, envelope: dict) -> Path:
    """Write the enveloped payload as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(wrap_report(payload, envelope), indent=2) + "\n")
    return path


def bench_parent(
    *,
    output_default: str | None = None,
    output_help: str = "also write this benchmark's report to this path "
    "(.json gets the enveloped JSON form, anything else the text report)",
) -> argparse.ArgumentParser:
    """An ``argparse`` parent with the four common bench flags.

    Use via ``add_parser(name, parents=[bench_parent(...)])``; the parent
    carries no help action of its own.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"RNG seed (default {DEFAULT_SEED})",
    )
    parent.add_argument(
        "--rate", type=float, default=DEFAULT_RATE_HZ,
        help=f"rows per second (default {DEFAULT_RATE_HZ})",
    )
    parent.add_argument("--output", default=output_default, help=output_help)
    parent.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: shrink the workload, keep every gate/assertion",
    )
    return parent
