"""Fastpath inference: frozen plans for the latency-critical serving path.

The autograd stack in :mod:`repro.nn` is built for training — every
forward allocates Tensors, records the graph and dispatches layer by
layer through Python.  Serving needs none of that.  This package freezes
a trained model (and its input scaler) into an :class:`InferencePlan`:
a flat list of contiguous float32 weight/bias arrays executed as fused
``matmul + bias + activation`` steps into preallocated, reused buffers.

:mod:`repro.fastpath.bench` is the regression harness that proves the
plan is both *faster* (single-frame p50/p99, batched throughput) and
*equivalent* (max probability divergence <= 1e-5) against the tensor
path, emitting ``BENCH_serve.json`` for CI.
"""

from .bench import (
    PerfBenchReport,
    QuantizedPlanReport,
    SaturatedLoad,
    run_perf_bench,
)
from .plan import (
    PLAN_ACTIVATIONS,
    QUANTIZE_MODES,
    InferencePlan,
    PlanStep,
    freeze_detector,
)

__all__ = [
    "PLAN_ACTIVATIONS",
    "QUANTIZE_MODES",
    "QuantizedPlanReport",
    "SaturatedLoad",
    "InferencePlan",
    "PlanStep",
    "PerfBenchReport",
    "freeze_detector",
    "run_perf_bench",
]
