"""perf-bench: the fastpath regression harness.

Measures, on the paper's MLP (64 CSI inputs by default, 128-256-128
hidden), what the frozen :class:`~repro.fastpath.plan.InferencePlan` buys
over the tensor path the trainer uses:

* **single-frame latency** — p50/p99 of one ``predict_proba`` call on a
  1-row input, the number a 20 Hz sniffer deployment actually feels;
* **batched throughput** — frames/s at several batch sizes, the number
  the micro-batching engine feels;
* **guard validation** — scalar :meth:`~repro.guard.validation.FrameValidator.validate`
  vs the vectorized ``validate_batch`` on the same stream, since admission
  runs in front of every model call.

Equivalence is asserted, not assumed: before any timing is reported the
harness compares fastpath and tensor probabilities over a probe matrix
and records the max elementwise divergence; :attr:`PerfBenchReport.equivalent`
gates the CLI exit code, so a plan that drifts from its source model
fails CI even if it got faster.  The JSON form (``BENCH_serve.json``)
contains only equivalence and configuration invariants worth diffing —
wall-clock numbers ride along for humans but are never gated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines.scaler import StandardScaler
from ..core.model_zoo import PAPER_HIDDEN_SIZES, build_paper_mlp
from ..exceptions import ConfigurationError
from ..guard.validation import (
    FiniteCheck,
    FrameValidator,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
)
from ..nn.modules import Sequential
from ..nn.tensor import Tensor, no_grad
from .plan import InferencePlan

#: Batch sizes the throughput sweep runs by default.  The large tail
#: sizes are the saturated-serving regime — the >1M fr/s headline lives
#: at 256-512, where BLAS amortises the per-call dispatch completely.
DEFAULT_BATCH_SIZES = (1, 8, 64, 256, 512)

#: Elementwise probability divergence the harness tolerates.
DEFAULT_TOLERANCE = 1e-5

#: Accuracy gates per quantization mode: max elementwise |Δp| against the
#: float32 plan over the probe matrix.  int8 stores 8-bit codes per
#: weight (per-channel scales), float16 merely rounds the mantissa, hence
#: the tighter bound.
QUANT_DELTA_GATES = {"int8": 0.05, "float16": 1e-3}

#: Fraction of probe rows allowed to flip their 0.5-threshold label under
#: quantization (shared by both modes).
QUANT_FLIP_GATE = 0.01

#: The paper's deployment footprint target for the stored plan artifact.
PLAN_BYTES_TARGET = 15 * 1024

#: Offered-load multiples of measured capacity the saturated arm replays
#: (below, at, and past saturation).
DEFAULT_SATURATED_LOADS = (0.7, 1.0, 1.4)


@dataclass(frozen=True)
class QuantizedPlanReport:
    """Accuracy/size outcome of one quantization mode vs the float32 plan."""

    mode: str
    max_divergence: float
    label_flip_rate: float
    parameter_bytes: int
    float32_parameter_bytes: int
    delta_gate: float
    flip_gate: float
    throughput_fps: float

    @property
    def compression(self) -> float:
        return (
            self.float32_parameter_bytes / self.parameter_bytes
            if self.parameter_bytes
            else float("inf")
        )

    @property
    def ok(self) -> bool:
        """Both accuracy gates hold (the CI-gated invariant)."""
        return (
            bool(np.isfinite(self.max_divergence))
            and self.max_divergence <= self.delta_gate
            and self.label_flip_rate <= self.flip_gate
        )


@dataclass(frozen=True)
class SaturatedLoad:
    """One open-loop offered load replayed through the serving engine."""

    offered_ratio: float
    offered_fps: float
    n_offered: int
    answered: int
    dropped: dict[str, int]
    sojourn_p50_ms: float
    sojourn_p99_ms: float
    wall_fps: float
    batch_resizes: int
    ledger_unaccounted: int
    arena_in_use_after: int

    @property
    def ok(self) -> bool:
        """Exact frame accounting and a fully recycled arena."""
        return self.ledger_unaccounted == 0 and self.arena_in_use_after == 0


@dataclass(frozen=True)
class BatchThroughput:
    """Frames/s of both paths at one batch size."""

    batch: int
    tensor_fps: float
    fastpath_fps: float

    @property
    def speedup(self) -> float:
        return self.fastpath_fps / self.tensor_fps if self.tensor_fps > 0 else float("inf")


@dataclass
class PerfBenchReport:
    """Everything one perf-bench run measured and asserted."""

    n_inputs: int
    hidden_sizes: tuple[int, ...]
    n_parameters: int
    n_repeats: int
    tolerance: float
    n_probe: int
    max_divergence: float
    tensor_p50_ms: float
    tensor_p99_ms: float
    fastpath_p50_ms: float
    fastpath_p99_ms: float
    throughput: list[BatchThroughput] = field(default_factory=list)
    guard_scalar_fps: float = 0.0
    guard_batch_fps: float = 0.0
    float32_parameter_bytes: int = 0
    quantized: list[QuantizedPlanReport] = field(default_factory=list)
    saturated_capacity_fps: float = 0.0
    saturated: list[SaturatedLoad] = field(default_factory=list)

    @property
    def single_frame_speedup(self) -> float:
        """Tensor-path p50 over fastpath p50 — the headline number."""
        return (
            self.tensor_p50_ms / self.fastpath_p50_ms
            if self.fastpath_p50_ms > 0
            else float("inf")
        )

    @property
    def guard_speedup(self) -> float:
        return (
            self.guard_batch_fps / self.guard_scalar_fps
            if self.guard_scalar_fps > 0
            else float("inf")
        )

    @property
    def equivalent(self) -> bool:
        """True when fastpath matched the tensor path within tolerance."""
        return bool(np.isfinite(self.max_divergence)) and (
            self.max_divergence <= self.tolerance
        )

    @property
    def quantized_ok(self) -> bool:
        """Every quantization mode held its accuracy gates."""
        return all(row.ok for row in self.quantized)

    @property
    def saturated_ok(self) -> bool:
        """Every offered load reconciled its frame ledger exactly."""
        return all(row.ok for row in self.saturated)

    @property
    def gates_passed(self) -> bool:
        """The full CI verdict: equivalence, quantization accuracy, and
        ledger reconciliation — deterministic invariants only, never
        wall-clock speed."""
        return self.equivalent and self.quantized_ok and self.saturated_ok

    def describe(self) -> str:
        arch = "-".join(str(w) for w in (self.n_inputs, *self.hidden_sizes, 1))
        lines = [
            f"model                : {arch} MLP, {self.n_parameters:,} parameters",
            f"equivalence          : max |Δp| = {self.max_divergence:.3g} over "
            f"{self.n_probe} probe rows (tolerance {self.tolerance:g}) — "
            f"{'OK' if self.equivalent else 'DIVERGED'}",
            f"single frame, tensor : p50 {self.tensor_p50_ms:8.4f} ms   "
            f"p99 {self.tensor_p99_ms:8.4f} ms",
            f"single frame, plan   : p50 {self.fastpath_p50_ms:8.4f} ms   "
            f"p99 {self.fastpath_p99_ms:8.4f} ms   "
            f"({self.single_frame_speedup:.2f}x at p50)",
        ]
        for row in self.throughput:
            lines.append(
                f"batch {row.batch:>4}           : tensor {row.tensor_fps:12.0f} fr/s   "
                f"plan {row.fastpath_fps:12.0f} fr/s   ({row.speedup:.2f}x)"
            )
        if self.guard_scalar_fps > 0:
            lines.append(
                f"guard validation     : scalar {self.guard_scalar_fps:10.0f} fr/s   "
                f"batch {self.guard_batch_fps:12.0f} fr/s   "
                f"({self.guard_speedup:.2f}x)"
            )
        for row in self.quantized:
            lines.append(
                f"quantized {row.mode:<8}   : max |Δp| {row.max_divergence:.3g} "
                f"(gate {row.delta_gate:g})   flips {row.label_flip_rate:.3%} "
                f"(gate {row.flip_gate:.0%})   "
                f"{row.parameter_bytes:,} B stored ({row.compression:.2f}x vs "
                f"float32 {row.float32_parameter_bytes:,} B) — "
                f"{'OK' if row.ok else 'FAILED'}"
            )
        if self.saturated:
            lines.append(
                f"saturated serving    : capacity {self.saturated_capacity_fps:,.0f} fr/s "
                f"(plan, batch {self.throughput[-1].batch if self.throughput else '?'})"
            )
        for row in self.saturated:
            drops = sum(row.dropped.values())
            lines.append(
                f"  load {row.offered_ratio:>4.2f}x          : "
                f"sojourn p50 {row.sojourn_p50_ms:8.3f} ms   "
                f"p99 {row.sojourn_p99_ms:8.3f} ms   "
                f"answered {row.answered:>7,}   dropped {drops:>6,}   "
                f"ledger {'OK' if row.ok else 'UNBALANCED'}"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable form; written as ``BENCH_serve.json`` by the CLI.

        ``equivalent``/``max_divergence`` are the CI-gated invariants;
        the timing fields are informational (machine-dependent, never
        asserted on).
        """
        return {
            "bench": "perf-bench",
            "model": {
                "n_inputs": self.n_inputs,
                "hidden_sizes": list(self.hidden_sizes),
                "n_parameters": self.n_parameters,
            },
            "equivalence": {
                "max_divergence": self.max_divergence,
                "tolerance": self.tolerance,
                "n_probe": self.n_probe,
                "equivalent": self.equivalent,
            },
            "single_frame_ms": {
                "tensor_p50": self.tensor_p50_ms,
                "tensor_p99": self.tensor_p99_ms,
                "fastpath_p50": self.fastpath_p50_ms,
                "fastpath_p99": self.fastpath_p99_ms,
                "speedup_p50": self.single_frame_speedup,
            },
            "throughput_fps": [
                {
                    "batch": row.batch,
                    "tensor": row.tensor_fps,
                    "fastpath": row.fastpath_fps,
                    "speedup": row.speedup,
                }
                for row in self.throughput
            ],
            "guard_validation_fps": {
                "scalar": self.guard_scalar_fps,
                "batch": self.guard_batch_fps,
                "speedup": self.guard_speedup,
            },
            "quantized": {
                "ok": self.quantized_ok,
                "float32_parameter_bytes": self.float32_parameter_bytes,
                "bytes_target": PLAN_BYTES_TARGET,
                "modes": [
                    {
                        "mode": row.mode,
                        "max_divergence_vs_float32": row.max_divergence,
                        "delta_gate": row.delta_gate,
                        "label_flip_rate": row.label_flip_rate,
                        "flip_gate": row.flip_gate,
                        "parameter_bytes": row.parameter_bytes,
                        "compression_vs_float32": row.compression,
                        "throughput_fps": row.throughput_fps,
                        "ok": row.ok,
                    }
                    for row in self.quantized
                ],
            },
            "saturated": {
                "ok": self.saturated_ok,
                "capacity_fps": self.saturated_capacity_fps,
                "loads": [
                    {
                        "offered_ratio": row.offered_ratio,
                        "offered_fps": row.offered_fps,
                        "n_offered": row.n_offered,
                        "answered": row.answered,
                        "dropped": dict(row.dropped),
                        "sojourn_ms": {
                            "p50": row.sojourn_p50_ms,
                            "p99": row.sojourn_p99_ms,
                        },
                        "wall_fps": row.wall_fps,
                        "batch_resizes": row.batch_resizes,
                        "ledger_unaccounted": row.ledger_unaccounted,
                        "arena_in_use_after": row.arena_in_use_after,
                        "ok": row.ok,
                    }
                    for row in self.saturated
                ],
            },
            "gates_passed": self.gates_passed,
            "n_repeats": self.n_repeats,
        }

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _percentiles_ms(fn, x: np.ndarray, n_repeats: int, warmup: int) -> tuple[float, float]:
    """p50/p99 wall-clock of ``fn(x)`` in milliseconds."""
    for _ in range(warmup):
        fn(x)
    samples = np.empty(n_repeats)
    for i in range(n_repeats):
        start = time.perf_counter()
        fn(x)
        samples[i] = time.perf_counter() - start
    return (
        1e3 * float(np.percentile(samples, 50)),
        1e3 * float(np.percentile(samples, 99)),
    )


def _throughput_fps(fn, x: np.ndarray, n_repeats: int, warmup: int) -> float:
    for _ in range(warmup):
        fn(x)
    start = time.perf_counter()
    for _ in range(n_repeats):
        fn(x)
    elapsed = time.perf_counter() - start
    return n_repeats * x.shape[0] / elapsed if elapsed > 0 else float("inf")


def _tensor_predict_proba(model: Sequential, scaler: StandardScaler):
    """The production tensor path, verbatim.

    Mirrors :meth:`repro.core.detector.OccupancyDetector.predict_proba`
    by way of :meth:`repro.nn.train.Trainer.predict`: scale, switch to
    eval mode (every call, as the trainer does), forward through the
    autograd graph under ``no_grad``, then the clipped logistic.
    """

    def predict_proba(x: np.ndarray) -> np.ndarray:
        scaled = scaler.transform(np.asarray(x, dtype=float))
        model.eval()
        with no_grad():
            logits = model(Tensor(scaled)).data
        return 1.0 / (1.0 + np.exp(-np.clip(logits.ravel(), -500, 500)))

    return predict_proba


def _guard_validation_fps(
    n_inputs: int, n_frames: int, seed: int, chunk: int = 64
) -> tuple[float, float]:
    """Frames/s of the scalar vs batch admission chain on one stream."""

    def chain() -> FrameValidator:
        return FrameValidator(
            [
                FiniteCheck(),
                SubcarrierCountCheck(n_inputs),
                TimestampMonotonicityCheck(),
            ]
        )

    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(0.01, 0.1, size=n_frames))
    rows = rng.normal(loc=10.0, scale=3.0, size=(n_frames, n_inputs))

    scalar = chain()
    start = time.perf_counter()
    for i in range(n_frames):
        scalar.validate("bench", float(t[i]), rows[i])
    scalar_s = time.perf_counter() - start

    batch = chain()
    start = time.perf_counter()
    for lo in range(0, n_frames, chunk):
        batch.validate_batch("bench", t[lo : lo + chunk], rows[lo : lo + chunk])
    batch_s = time.perf_counter() - start

    return (
        n_frames / scalar_s if scalar_s > 0 else float("inf"),
        n_frames / batch_s if batch_s > 0 else float("inf"),
    )


def _quantized_arm(
    plan: InferencePlan,
    probe: np.ndarray,
    p32: np.ndarray,
    n_repeats: int,
    warmup: int,
) -> list[QuantizedPlanReport]:
    """Accuracy-delta + footprint of every quantization mode vs float32."""
    labels32 = p32 >= 0.5
    out: list[QuantizedPlanReport] = []
    for mode in ("int8", "float16"):
        qplan = plan.quantized(mode)
        pq = qplan.predict_proba(probe)
        out.append(
            QuantizedPlanReport(
                mode=mode,
                max_divergence=float(np.max(np.abs(pq - p32))),
                label_flip_rate=float(np.mean((pq >= 0.5) != labels32)),
                parameter_bytes=qplan.parameter_bytes(),
                float32_parameter_bytes=plan.parameter_bytes(),
                delta_gate=QUANT_DELTA_GATES[mode],
                flip_gate=QUANT_FLIP_GATE,
                throughput_fps=_throughput_fps(
                    qplan.predict_proba, probe, max(1, n_repeats // 4), warmup
                ),
            )
        )
    return out


def _saturated_arm(
    plan: InferencePlan,
    n_inputs: int,
    capacity_fps: float,
    loads: tuple[float, ...],
    n_frames: int,
    seed: int,
) -> list[SaturatedLoad]:
    """Open-loop saturation sweep through the full serving engine.

    Each load replays ``n_frames`` stream-time arrivals at
    ``ratio * capacity_fps`` into an adaptive, arena-backed engine with
    ``auto_flush=False``, and services the queue with stream-time pump
    budgets of exactly ``capacity_fps`` — so queueing dynamics (and
    therefore sojourn latency and drop counts) are functions of the
    offered ratio alone, independent of the benchmarking host's speed.
    Past capacity the queue must shed (overflow / deadline), and the
    frame ledger must still reconcile exactly — that reconciliation is
    the gated invariant; the latency percentiles are the measurement.
    """
    # Deferred import: repro.serve pulls the guard/overload/obs stack,
    # none of which the plan-only benches above need.
    from ..serve.config import ServeConfig
    from ..serve.engine import InferenceEngine

    config = ServeConfig(
        max_batch=64,
        min_batch=4,
        max_latency_ms=20.0,
        queue_capacity=256,
        arena_slots=512,
        adaptive_batching=True,
        deadline_ms=200.0,
        auto_flush=False,
    )
    rng = np.random.default_rng(seed)
    rows = rng.normal(loc=10.0, scale=3.0, size=(min(n_frames, 2048), n_inputs))
    tick = 64  # arrivals between service pumps
    out: list[SaturatedLoad] = []
    for ratio in loads:
        engine = InferenceEngine(plan, config)
        offered_fps = capacity_fps * ratio
        dt = 1.0 / offered_fps
        per_tick = tick * dt * capacity_fps  # service credit per pump
        credit = 0.0
        sojourn: list[float] = []
        answered = 0
        start = time.perf_counter()
        t = 0.0
        for i in range(n_frames):
            t = i * dt
            engine.submit("sat", t, rows[i % len(rows)])
            if (i + 1) % tick == 0:
                credit += per_tick
                budget = int(credit)
                if budget:
                    credit -= budget
                    for result in engine.pump(max_frames=budget, now_s=t):
                        sojourn.append(t - result.t_s)
                        answered += 1
        # Arrivals ended; keep serving at capacity until the backlog is
        # gone (deadline expiry drains whatever service cannot reach).
        while engine.queue.depth:
            t += tick * dt
            credit += per_tick
            budget = int(credit)
            credit -= budget
            for result in engine.pump(max_frames=budget, now_s=t):
                sojourn.append(t - result.t_s)
                answered += 1
        wall = time.perf_counter() - start
        stats = engine.link_stats("sat")
        dropped = {
            "overflow": stats["overflow"],
            "deadline_expired": stats["deadline_expired"],
            "stale": stats["stale_dropped"],
            "shed": stats["overload_shed"],
            "policy_rejected": stats["policy_rejected"],
        }
        unaccounted = (
            stats["frames_in"]
            + stats["repaired"]
            - stats["frames_out"]
            - sum(dropped.values())
            - engine.queue.depth
        )
        engine.arena.check()
        sojourn_arr = np.asarray(sojourn) if sojourn else np.zeros(1)
        out.append(
            SaturatedLoad(
                offered_ratio=float(ratio),
                offered_fps=offered_fps,
                n_offered=n_frames,
                answered=answered,
                dropped=dropped,
                sojourn_p50_ms=1e3 * float(np.percentile(sojourn_arr, 50)),
                sojourn_p99_ms=1e3 * float(np.percentile(sojourn_arr, 99)),
                wall_fps=answered / wall if wall > 0 else float("inf"),
                batch_resizes=int(
                    engine.registry.counter("batch_resizes_total").value
                ),
                ledger_unaccounted=int(unaccounted),
                arena_in_use_after=engine.arena.in_use,
            )
        )
    return out


def run_perf_bench(
    n_inputs: int = 64,
    hidden_sizes: tuple[int, ...] | None = None,
    *,
    seed: int = 2022,
    n_repeats: int = 300,
    warmup: int = 30,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    n_probe: int = 256,
    tolerance: float = DEFAULT_TOLERANCE,
    guard_frames: int = 4096,
    saturated_frames: int = 120_000,
    saturated_loads: tuple[float, ...] = DEFAULT_SATURATED_LOADS,
    quick: bool = False,
) -> PerfBenchReport:
    """Freeze the paper MLP and benchmark fastpath vs tensor path.

    Beyond the legacy arms (equivalence, single-frame latency,
    throughput sweep, guard validation) the report carries two saturated-
    serving arms: ``quantized`` — int8/float16 plan variants gated on
    accuracy delta vs float32 — and ``saturated`` — an open-loop sweep of
    the full engine at ``saturated_loads`` multiples of measured plan
    capacity, gated on exact frame-ledger reconciliation.  All gates are
    deterministic invariants; wall-clock numbers ride along unasserted.

    ``quick`` shrinks repeats/probe/replay sizes for CI smoke runs — the
    gated assertions are identical, only the timing estimates get
    noisier.  The scaler is fitted on a synthetic amplitude distribution
    (the bench needs realistic numerics, not a trained model: weights at
    init and weights after training flow through the very same ops).
    """
    if n_inputs < 1:
        raise ConfigurationError("n_inputs must be >= 1")
    if n_repeats < 1 or warmup < 0 or n_probe < 1:
        raise ConfigurationError("invalid bench parameters")
    if any(b < 1 for b in batch_sizes):
        raise ConfigurationError("batch sizes must be >= 1")
    if saturated_frames < 0 or any(r <= 0 for r in saturated_loads):
        raise ConfigurationError("invalid saturated-arm parameters")
    if quick:
        n_repeats = min(n_repeats, 60)
        warmup = min(warmup, 5)
        n_probe = min(n_probe, 64)
        guard_frames = min(guard_frames, 1024)
        saturated_frames = min(saturated_frames, 8_000)

    hidden = tuple(hidden_sizes) if hidden_sizes is not None else PAPER_HIDDEN_SIZES
    model = build_paper_mlp(n_inputs, hidden, n_outputs=1, seed=seed)
    rng = np.random.default_rng(seed)
    scaler = StandardScaler()
    scaler.fit(rng.normal(loc=10.0, scale=3.0, size=(max(n_probe, 64), n_inputs)))

    tensor_proba = _tensor_predict_proba(model, scaler)
    plan = InferencePlan.from_model(model, scaler=scaler)

    # Equivalence first: no point timing a wrong answer.
    probe = rng.normal(loc=10.0, scale=3.0, size=(n_probe, n_inputs))
    max_divergence = float(
        np.max(np.abs(tensor_proba(probe) - plan.predict_proba(probe)))
    )

    frame = probe[:1]
    tensor_p50, tensor_p99 = _percentiles_ms(tensor_proba, frame, n_repeats, warmup)
    fast_p50, fast_p99 = _percentiles_ms(plan.predict_proba, frame, n_repeats, warmup)

    throughput = []
    for batch in batch_sizes:
        x = rng.normal(loc=10.0, scale=3.0, size=(batch, n_inputs))
        reps = max(1, n_repeats // 4)
        throughput.append(
            BatchThroughput(
                batch=batch,
                tensor_fps=_throughput_fps(tensor_proba, x, reps, warmup),
                fastpath_fps=_throughput_fps(plan.predict_proba, x, reps, warmup),
            )
        )

    guard_scalar, guard_batch = _guard_validation_fps(n_inputs, guard_frames, seed)

    quantized = _quantized_arm(
        plan, probe, plan.predict_proba(probe).copy(), n_repeats, warmup
    )

    # Capacity for the saturation sweep: the plan's best measured batched
    # throughput (the service rate an engine tick can actually sustain).
    capacity_fps = max((row.fastpath_fps for row in throughput), default=0.0)
    saturated = (
        _saturated_arm(
            plan, n_inputs, capacity_fps, saturated_loads, saturated_frames, seed
        )
        if saturated_frames > 0
        else []
    )

    return PerfBenchReport(
        n_inputs=n_inputs,
        hidden_sizes=hidden,
        n_parameters=plan.n_parameters(),
        n_repeats=n_repeats,
        tolerance=tolerance,
        n_probe=n_probe,
        max_divergence=max_divergence,
        tensor_p50_ms=tensor_p50,
        tensor_p99_ms=tensor_p99,
        fastpath_p50_ms=fast_p50,
        fastpath_p99_ms=fast_p99,
        throughput=throughput,
        guard_scalar_fps=guard_scalar,
        guard_batch_fps=guard_batch,
        float32_parameter_bytes=plan.parameter_bytes(),
        quantized=quantized,
        saturated_capacity_fps=capacity_fps,
        saturated=saturated,
    )
