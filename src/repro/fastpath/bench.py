"""perf-bench: the fastpath regression harness.

Measures, on the paper's MLP (64 CSI inputs by default, 128-256-128
hidden), what the frozen :class:`~repro.fastpath.plan.InferencePlan` buys
over the tensor path the trainer uses:

* **single-frame latency** — p50/p99 of one ``predict_proba`` call on a
  1-row input, the number a 20 Hz sniffer deployment actually feels;
* **batched throughput** — frames/s at several batch sizes, the number
  the micro-batching engine feels;
* **guard validation** — scalar :meth:`~repro.guard.validation.FrameValidator.validate`
  vs the vectorized ``validate_batch`` on the same stream, since admission
  runs in front of every model call.

Equivalence is asserted, not assumed: before any timing is reported the
harness compares fastpath and tensor probabilities over a probe matrix
and records the max elementwise divergence; :attr:`PerfBenchReport.equivalent`
gates the CLI exit code, so a plan that drifts from its source model
fails CI even if it got faster.  The JSON form (``BENCH_serve.json``)
contains only equivalence and configuration invariants worth diffing —
wall-clock numbers ride along for humans but are never gated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines.scaler import StandardScaler
from ..core.model_zoo import PAPER_HIDDEN_SIZES, build_paper_mlp
from ..exceptions import ConfigurationError
from ..guard.validation import (
    FiniteCheck,
    FrameValidator,
    SubcarrierCountCheck,
    TimestampMonotonicityCheck,
)
from ..nn.modules import Sequential
from ..nn.tensor import Tensor, no_grad
from .plan import InferencePlan

#: Batch sizes the throughput sweep runs by default.
DEFAULT_BATCH_SIZES = (1, 8, 64)

#: Elementwise probability divergence the harness tolerates.
DEFAULT_TOLERANCE = 1e-5


@dataclass(frozen=True)
class BatchThroughput:
    """Frames/s of both paths at one batch size."""

    batch: int
    tensor_fps: float
    fastpath_fps: float

    @property
    def speedup(self) -> float:
        return self.fastpath_fps / self.tensor_fps if self.tensor_fps > 0 else float("inf")


@dataclass
class PerfBenchReport:
    """Everything one perf-bench run measured and asserted."""

    n_inputs: int
    hidden_sizes: tuple[int, ...]
    n_parameters: int
    n_repeats: int
    tolerance: float
    n_probe: int
    max_divergence: float
    tensor_p50_ms: float
    tensor_p99_ms: float
    fastpath_p50_ms: float
    fastpath_p99_ms: float
    throughput: list[BatchThroughput] = field(default_factory=list)
    guard_scalar_fps: float = 0.0
    guard_batch_fps: float = 0.0

    @property
    def single_frame_speedup(self) -> float:
        """Tensor-path p50 over fastpath p50 — the headline number."""
        return (
            self.tensor_p50_ms / self.fastpath_p50_ms
            if self.fastpath_p50_ms > 0
            else float("inf")
        )

    @property
    def guard_speedup(self) -> float:
        return (
            self.guard_batch_fps / self.guard_scalar_fps
            if self.guard_scalar_fps > 0
            else float("inf")
        )

    @property
    def equivalent(self) -> bool:
        """True when fastpath matched the tensor path within tolerance."""
        return bool(np.isfinite(self.max_divergence)) and (
            self.max_divergence <= self.tolerance
        )

    def describe(self) -> str:
        arch = "-".join(str(w) for w in (self.n_inputs, *self.hidden_sizes, 1))
        lines = [
            f"model                : {arch} MLP, {self.n_parameters:,} parameters",
            f"equivalence          : max |Δp| = {self.max_divergence:.3g} over "
            f"{self.n_probe} probe rows (tolerance {self.tolerance:g}) — "
            f"{'OK' if self.equivalent else 'DIVERGED'}",
            f"single frame, tensor : p50 {self.tensor_p50_ms:8.4f} ms   "
            f"p99 {self.tensor_p99_ms:8.4f} ms",
            f"single frame, plan   : p50 {self.fastpath_p50_ms:8.4f} ms   "
            f"p99 {self.fastpath_p99_ms:8.4f} ms   "
            f"({self.single_frame_speedup:.2f}x at p50)",
        ]
        for row in self.throughput:
            lines.append(
                f"batch {row.batch:>4}           : tensor {row.tensor_fps:12.0f} fr/s   "
                f"plan {row.fastpath_fps:12.0f} fr/s   ({row.speedup:.2f}x)"
            )
        if self.guard_scalar_fps > 0:
            lines.append(
                f"guard validation     : scalar {self.guard_scalar_fps:10.0f} fr/s   "
                f"batch {self.guard_batch_fps:12.0f} fr/s   "
                f"({self.guard_speedup:.2f}x)"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable form; written as ``BENCH_serve.json`` by the CLI.

        ``equivalent``/``max_divergence`` are the CI-gated invariants;
        the timing fields are informational (machine-dependent, never
        asserted on).
        """
        return {
            "bench": "perf-bench",
            "model": {
                "n_inputs": self.n_inputs,
                "hidden_sizes": list(self.hidden_sizes),
                "n_parameters": self.n_parameters,
            },
            "equivalence": {
                "max_divergence": self.max_divergence,
                "tolerance": self.tolerance,
                "n_probe": self.n_probe,
                "equivalent": self.equivalent,
            },
            "single_frame_ms": {
                "tensor_p50": self.tensor_p50_ms,
                "tensor_p99": self.tensor_p99_ms,
                "fastpath_p50": self.fastpath_p50_ms,
                "fastpath_p99": self.fastpath_p99_ms,
                "speedup_p50": self.single_frame_speedup,
            },
            "throughput_fps": [
                {
                    "batch": row.batch,
                    "tensor": row.tensor_fps,
                    "fastpath": row.fastpath_fps,
                    "speedup": row.speedup,
                }
                for row in self.throughput
            ],
            "guard_validation_fps": {
                "scalar": self.guard_scalar_fps,
                "batch": self.guard_batch_fps,
                "speedup": self.guard_speedup,
            },
            "n_repeats": self.n_repeats,
        }

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _percentiles_ms(fn, x: np.ndarray, n_repeats: int, warmup: int) -> tuple[float, float]:
    """p50/p99 wall-clock of ``fn(x)`` in milliseconds."""
    for _ in range(warmup):
        fn(x)
    samples = np.empty(n_repeats)
    for i in range(n_repeats):
        start = time.perf_counter()
        fn(x)
        samples[i] = time.perf_counter() - start
    return (
        1e3 * float(np.percentile(samples, 50)),
        1e3 * float(np.percentile(samples, 99)),
    )


def _throughput_fps(fn, x: np.ndarray, n_repeats: int, warmup: int) -> float:
    for _ in range(warmup):
        fn(x)
    start = time.perf_counter()
    for _ in range(n_repeats):
        fn(x)
    elapsed = time.perf_counter() - start
    return n_repeats * x.shape[0] / elapsed if elapsed > 0 else float("inf")


def _tensor_predict_proba(model: Sequential, scaler: StandardScaler):
    """The production tensor path, verbatim.

    Mirrors :meth:`repro.core.detector.OccupancyDetector.predict_proba`
    by way of :meth:`repro.nn.train.Trainer.predict`: scale, switch to
    eval mode (every call, as the trainer does), forward through the
    autograd graph under ``no_grad``, then the clipped logistic.
    """

    def predict_proba(x: np.ndarray) -> np.ndarray:
        scaled = scaler.transform(np.asarray(x, dtype=float))
        model.eval()
        with no_grad():
            logits = model(Tensor(scaled)).data
        return 1.0 / (1.0 + np.exp(-np.clip(logits.ravel(), -500, 500)))

    return predict_proba


def _guard_validation_fps(
    n_inputs: int, n_frames: int, seed: int, chunk: int = 64
) -> tuple[float, float]:
    """Frames/s of the scalar vs batch admission chain on one stream."""

    def chain() -> FrameValidator:
        return FrameValidator(
            [
                FiniteCheck(),
                SubcarrierCountCheck(n_inputs),
                TimestampMonotonicityCheck(),
            ]
        )

    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(0.01, 0.1, size=n_frames))
    rows = rng.normal(loc=10.0, scale=3.0, size=(n_frames, n_inputs))

    scalar = chain()
    start = time.perf_counter()
    for i in range(n_frames):
        scalar.validate("bench", float(t[i]), rows[i])
    scalar_s = time.perf_counter() - start

    batch = chain()
    start = time.perf_counter()
    for lo in range(0, n_frames, chunk):
        batch.validate_batch("bench", t[lo : lo + chunk], rows[lo : lo + chunk])
    batch_s = time.perf_counter() - start

    return (
        n_frames / scalar_s if scalar_s > 0 else float("inf"),
        n_frames / batch_s if batch_s > 0 else float("inf"),
    )


def run_perf_bench(
    n_inputs: int = 64,
    hidden_sizes: tuple[int, ...] | None = None,
    *,
    seed: int = 2022,
    n_repeats: int = 300,
    warmup: int = 30,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    n_probe: int = 256,
    tolerance: float = DEFAULT_TOLERANCE,
    guard_frames: int = 4096,
    quick: bool = False,
) -> PerfBenchReport:
    """Freeze the paper MLP and benchmark fastpath vs tensor path.

    ``quick`` shrinks repeats/probe sizes for CI smoke runs — the
    equivalence assertion is identical, only the timing estimates get
    noisier.  The scaler is fitted on a synthetic amplitude distribution
    (the bench needs realistic numerics, not a trained model: weights at
    init and weights after training flow through the very same ops).
    """
    if n_inputs < 1:
        raise ConfigurationError("n_inputs must be >= 1")
    if n_repeats < 1 or warmup < 0 or n_probe < 1:
        raise ConfigurationError("invalid bench parameters")
    if any(b < 1 for b in batch_sizes):
        raise ConfigurationError("batch sizes must be >= 1")
    if quick:
        n_repeats = min(n_repeats, 60)
        warmup = min(warmup, 5)
        n_probe = min(n_probe, 64)
        guard_frames = min(guard_frames, 1024)

    hidden = tuple(hidden_sizes) if hidden_sizes is not None else PAPER_HIDDEN_SIZES
    model = build_paper_mlp(n_inputs, hidden, n_outputs=1, seed=seed)
    rng = np.random.default_rng(seed)
    scaler = StandardScaler()
    scaler.fit(rng.normal(loc=10.0, scale=3.0, size=(max(n_probe, 64), n_inputs)))

    tensor_proba = _tensor_predict_proba(model, scaler)
    plan = InferencePlan.from_model(model, scaler=scaler)

    # Equivalence first: no point timing a wrong answer.
    probe = rng.normal(loc=10.0, scale=3.0, size=(n_probe, n_inputs))
    max_divergence = float(
        np.max(np.abs(tensor_proba(probe) - plan.predict_proba(probe)))
    )

    frame = probe[:1]
    tensor_p50, tensor_p99 = _percentiles_ms(tensor_proba, frame, n_repeats, warmup)
    fast_p50, fast_p99 = _percentiles_ms(plan.predict_proba, frame, n_repeats, warmup)

    throughput = []
    for batch in batch_sizes:
        x = rng.normal(loc=10.0, scale=3.0, size=(batch, n_inputs))
        reps = max(1, n_repeats // 4)
        throughput.append(
            BatchThroughput(
                batch=batch,
                tensor_fps=_throughput_fps(tensor_proba, x, reps, warmup),
                fastpath_fps=_throughput_fps(plan.predict_proba, x, reps, warmup),
            )
        )

    guard_scalar, guard_batch = _guard_validation_fps(n_inputs, guard_frames, seed)

    return PerfBenchReport(
        n_inputs=n_inputs,
        hidden_sizes=hidden,
        n_parameters=plan.n_parameters(),
        n_repeats=n_repeats,
        tolerance=tolerance,
        n_probe=n_probe,
        max_divergence=max_divergence,
        tensor_p50_ms=tensor_p50,
        tensor_p99_ms=tensor_p99,
        fastpath_p50_ms=fast_p50,
        fastpath_p99_ms=fast_p99,
        throughput=throughput,
        guard_scalar_fps=guard_scalar,
        guard_batch_fps=guard_batch,
    )
