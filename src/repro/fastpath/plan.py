"""Frozen inference plans: the serving-only forward pass.

Training needs the autograd :class:`~repro.nn.tensor.Tensor` graph; serving
does not.  The paper's pitch is a *lightweight* MLP streaming 64-subcarrier
CSI at 20 Hz, yet running every micro-batch through the full tape — one
Python dispatch per layer, one ``Tensor`` allocation per op — pays training
overheads on a path that never calls ``backward``.  An
:class:`InferencePlan` freezes a trained :class:`~repro.nn.modules.Sequential`
(and, optionally, the :class:`~repro.baselines.scaler.StandardScaler` that
fed it) into the minimum the forward pass actually is:

* a flat list of fused steps, each one contiguous float32 weight matrix,
  bias vector and activation tag (``matmul + bias + activation`` executed
  as three in-place numpy calls);
* one preallocated float32 scratch buffer per step, reused across calls
  and grown geometrically when a larger batch arrives — steady-state
  inference allocates nothing;
* ``np.matmul(..., out=)`` into those buffers, so no intermediate arrays,
  no autograd bookkeeping and no per-call Python-level layer dispatch.

The plan is an *eval-mode snapshot*: dropout layers are dropped (they are
identity at inference), and the module must be one of the shapes this
library's MLPs take (``Linear`` + ReLU/Sigmoid/Tanh/Dropout).  Freezing is
explicit and one-way — the plan holds copies, so later training steps on
the source model do not leak into a deployed plan.

Equivalence is a contract, not a hope: ``tests/fastpath`` asserts the plan
matches the tensor path to ≤1e-5 elementwise over random architectures,
and the ``perf-bench`` CLI (:mod:`repro.fastpath.bench`) re-asserts it on
every benchmark run before reporting any speedup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..baselines.scaler import StandardScaler
from ..exceptions import ConfigurationError, ShapeError
from ..nn.modules import Dropout, Linear, Module, ReLU, Sequential, Sigmoid, Tanh

#: Activation tags a plan step may carry (applied in place after the GEMM).
PLAN_ACTIVATIONS = ("none", "relu", "sigmoid", "tanh")

#: Weight-storage quantization modes a plan may carry.  ``None`` keeps the
#: legacy float32 storage; the quantized modes shrink the *stored* weights
#: (the deployed artifact) while the executed arithmetic stays float32:
#:
#: * ``"int8"`` — symmetric per-output-channel affine: each weight column
#:   stores int8 codes plus one float32 scale (``w ~= code * scale``),
#:   4x smaller than float32.  Codes are dequantized **once** at plan
#:   construction into float32 exec steps, so every GEMM accumulates in
#:   float32 — the rounding error is confined to the weights themselves.
#: * ``"float16"`` — IEEE half-precision storage, 2x smaller, upcast to
#:   float32 at construction (the cast is exact, so only the initial
#:   float32 → float16 rounding costs accuracy).
#:
#: The ``perf-bench`` CLI gates both modes on max |Δp| and label-flip rate
#: against the float32 plan before reporting any size win.
QUANTIZE_MODES = (None, "int8", "float16")

#: Logit clip bound shared with :class:`~repro.core.detector.OccupancyDetector`
#: so fastpath probabilities saturate at exactly the same point.
_LOGIT_CLIP = 500.0

_F32_ZERO = np.float32(0.0)


@dataclass(frozen=True)
class PlanStep:
    """One fused layer: ``y = activation(x @ weight + bias)``."""

    weight: np.ndarray  # float32, C-contiguous, shape (in, out)
    bias: np.ndarray | None  # float32, shape (out,)
    activation: str

    def __post_init__(self) -> None:
        if self.weight.dtype != np.float32 or not self.weight.flags["C_CONTIGUOUS"]:
            raise ConfigurationError("step weight must be contiguous float32")
        if self.weight.ndim != 2:
            raise ShapeError(f"step weight must be 2-D, got {self.weight.shape}")
        if self.bias is not None and (
            self.bias.dtype != np.float32 or self.bias.shape != (self.weight.shape[1],)
        ):
            raise ConfigurationError("step bias must be float32 of the output width")
        if self.activation not in PLAN_ACTIVATIONS:
            raise ConfigurationError(
                f"activation must be one of {PLAN_ACTIVATIONS}, got {self.activation!r}"
            )

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])


def _quantize_weight(weight: np.ndarray, mode: str) -> tuple[np.ndarray, ...]:
    """Quantize one float32 weight matrix into its storage arrays.

    ``"float16"`` returns ``(codes,)``; ``"int8"`` returns
    ``(codes, scales)`` with one symmetric float32 scale per output
    channel (column), chosen so the column's largest magnitude maps to
    ±127 exactly.  All-zero columns get scale 1 so dequantization stays
    total.
    """
    if mode == "float16":
        return (weight.astype(np.float16),)
    scale = np.max(np.abs(weight), axis=0) / np.float32(127.0)
    scale = np.where(scale == 0.0, np.float32(1.0), scale).astype(np.float32)
    codes = np.clip(np.rint(weight / scale), -127, 127).astype(np.int8)
    return (codes, scale)


def _dequantize_weight(store: tuple[np.ndarray, ...], mode: str) -> np.ndarray:
    """The float32 weight a quantized store executes as (exact per mode)."""
    if mode == "float16":
        return np.ascontiguousarray(store[0], dtype=np.float32)
    codes, scale = store
    return np.ascontiguousarray(codes.astype(np.float32) * scale)


def _apply_activation_inplace(out: np.ndarray, activation: str) -> None:
    """Apply a :data:`PLAN_ACTIVATIONS` tag to ``out`` without allocating."""
    if activation == "relu":
        np.maximum(out, np.float32(0.0), out=out)
    elif activation == "sigmoid":
        # Stable in-place logistic: clip, negate, exp, 1+, reciprocal.
        # (maximum+minimum is np.clip's result without np.clip's Python
        # dispatch overhead, which dominates at single-frame sizes.)
        np.maximum(out, -_LOGIT_CLIP, out=out)
        np.minimum(out, _LOGIT_CLIP, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += np.float32(1.0)
        np.reciprocal(out, out=out)
    elif activation == "tanh":
        np.tanh(out, out=out)


class InferencePlan:
    """A frozen, buffer-reusing forward pass over float32 arrays.

    Build one with :meth:`from_model` (or restore one with
    :func:`repro.deploy.export.load_plan`).  The plan conforms to the
    ``predict_proba`` half of the :class:`~repro.core.estimator.Estimator`
    protocol, so it drops straight into
    :class:`~repro.serve.engine.InferenceEngine` as the primary estimator.

    Parameters
    ----------
    steps:
        The fused layers, widths chained (``out`` of step *k* equals
        ``in`` of step *k+1*).
    input_mean / input_scale:
        Optional standardisation — the frozen form of a fitted
        :class:`~repro.baselines.scaler.StandardScaler`.  Folded
        algebraically into the first GEMM at construction time
        (``(x - m)/s @ W == x @ (W/s) - (m/s) @ W``), so the hot path
        pays zero extra ops for it; the raw statistics are kept for
        serialization round-trips.
    capacity:
        Initial batch capacity of the scratch buffers; grows
        geometrically on demand and never shrinks.
    version / label:
        Identity metadata for rollout bookkeeping: ``version`` is a
        monotonically increasing deployment generation (a promoted
        challenger carries its champion's version + 1), ``label`` a
        free-form human tag.  Neither affects the numerics —
        :meth:`fingerprint` is the content identity, these two are the
        lineage identity.  Both survive :meth:`payload` round-trips.
    quantize:
        One of :data:`QUANTIZE_MODES`.  A quantized plan stores its
        weights in the reduced form (what :meth:`payload` persists and
        :meth:`parameter_bytes` counts) and *executes* the dequantized
        float32 equivalent — accuracy shifts come from weight rounding
        alone, never from reduced-precision accumulation.  Biases and
        scaler statistics stay float32 in every mode.
    """

    def __init__(
        self,
        steps: list[PlanStep],
        input_mean: np.ndarray | None = None,
        input_scale: np.ndarray | None = None,
        capacity: int = 64,
        *,
        version: int = 0,
        label: str | None = None,
        quantize: str | None = None,
        _qstore: list[tuple[np.ndarray, ...]] | None = None,
    ) -> None:
        if version < 0:
            raise ConfigurationError("version must be >= 0")
        if quantize not in QUANTIZE_MODES:
            raise ConfigurationError(
                f"quantize must be one of {QUANTIZE_MODES}, got {quantize!r}"
            )
        self.version = int(version)
        self.label = label
        self.quantize = quantize
        self._fingerprint: str | None = None
        if not steps:
            raise ConfigurationError("InferencePlan needs at least one step")
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if quantize is not None:
            # Quantize-then-dequantize before anything else touches the
            # steps: the rest of the constructor (width checks, scaler
            # fold, exec build) then sees exactly the arithmetic the
            # stored artifact will reproduce after a payload round-trip.
            # A preloaded ``_qstore`` (the load side) skips re-quantizing
            # so round-trips are byte-exact, not merely close.
            if _qstore is None:
                _qstore = [_quantize_weight(s.weight, quantize) for s in steps]
            steps = [
                PlanStep(_dequantize_weight(store, quantize), s.bias, s.activation)
                for store, s in zip(_qstore, steps)
            ]
        self._qstore = _qstore
        for a, b in zip(steps[:-1], steps[1:]):
            if a.out_features != b.in_features:
                raise ConfigurationError(
                    f"step widths mismatch: {a.out_features} -> {b.in_features}"
                )
        if (input_mean is None) != (input_scale is None):
            raise ConfigurationError("input_mean and input_scale come together")
        self.steps = list(steps)
        if input_mean is not None:
            input_mean = np.ascontiguousarray(input_mean, dtype=np.float32)
            input_scale = np.ascontiguousarray(input_scale, dtype=np.float32)
            if input_mean.shape != (self.n_inputs,) or input_scale.shape != (
                self.n_inputs,
            ):
                raise ShapeError(
                    f"scaler statistics must have shape ({self.n_inputs},)"
                )
            if np.any(input_scale == 0.0):
                raise ConfigurationError("input_scale must be non-zero")
        self.input_mean = input_mean
        self.input_scale = input_scale
        # The executable form: (weight, bias, activation) tuples with the
        # scaler folded into step 0, so the hot loop touches no properties
        # and runs no normalization ops.
        self._exec: list[tuple[np.ndarray, np.ndarray | None, str]] = [
            (s.weight, s.bias, s.activation) for s in self.steps
        ]
        if input_mean is not None:
            inv_scale = np.float32(1.0) / input_scale
            first = self.steps[0]
            folded_w = np.ascontiguousarray(first.weight * inv_scale[:, None])
            shift = (input_mean * inv_scale) @ first.weight
            folded_b = np.ascontiguousarray(
                (first.bias - shift) if first.bias is not None else -shift,
                dtype=np.float32,
            )
            self._exec[0] = (folded_w, folded_b, first.activation)
        self._n_inputs = self.steps[0].in_features
        self._capacity = 0
        self._buffers: list[np.ndarray] = []
        # Views of the buffers at the last-seen batch size, so steady-state
        # serving (a fixed micro-batch size, or single frames) re-slices
        # nothing per call.
        self._views: list[np.ndarray] = []
        self._views_n = -1
        self._ensure_capacity(capacity)

    # -------------------------------------------------------------- freezing

    @classmethod
    def from_model(
        cls,
        model: Sequential,
        scaler: StandardScaler | None = None,
        capacity: int = 64,
        *,
        version: int = 0,
        label: str | None = None,
        quantize: str | None = None,
    ) -> "InferencePlan":
        """Freeze a ``Sequential`` MLP (and optional fitted scaler).

        Supported layers: :class:`~repro.nn.modules.Linear` with a
        ReLU/Sigmoid/Tanh directly after it, and
        :class:`~repro.nn.modules.Dropout` anywhere (identity at
        inference, so it is simply dropped).  Anything else — BatchNorm,
        custom modules, stacked activations — raises
        :class:`~repro.exceptions.ConfigurationError`: a plan that
        silently diverged from its source model would be worse than no
        plan at all.
        """
        if not isinstance(model, Sequential):
            raise ConfigurationError(
                f"InferencePlan freezes Sequential models, got {type(model).__name__}"
            )
        tags = {ReLU: "relu", Sigmoid: "sigmoid", Tanh: "tanh"}
        steps: list[PlanStep] = []
        for layer in model.layers:
            if isinstance(layer, Dropout):
                continue
            if isinstance(layer, Linear):
                weight = np.ascontiguousarray(layer.weight.data, dtype=np.float32)
                bias = (
                    None
                    if layer.bias is None
                    else np.ascontiguousarray(layer.bias.data, dtype=np.float32)
                )
                steps.append(PlanStep(weight, bias, "none"))
                continue
            tag = tags.get(type(layer))
            if tag is None:
                raise ConfigurationError(
                    f"cannot freeze layer {layer!r}: InferencePlan supports "
                    "Linear, ReLU, Sigmoid, Tanh and Dropout"
                )
            if not steps:
                raise ConfigurationError(
                    f"cannot freeze {layer!r} before any Linear layer"
                )
            if steps[-1].activation != "none":
                raise ConfigurationError(
                    f"cannot fuse {layer!r}: step already carries "
                    f"{steps[-1].activation!r}"
                )
            steps[-1] = PlanStep(steps[-1].weight, steps[-1].bias, tag)
        if not steps:
            raise ConfigurationError("model contains no Linear layers to freeze")
        mean = scale = None
        if scaler is not None:
            state = scaler.state  # raises NotFittedError on an unfitted scaler
            mean, scale = state["mean"], state["scale"]
        return cls(
            steps,
            input_mean=mean,
            input_scale=scale,
            capacity=capacity,
            version=version,
            label=label,
            quantize=quantize,
        )

    def quantized(self, mode: str, capacity: int | None = None) -> "InferencePlan":
        """A quantized sibling of this plan (same lineage, new storage).

        Quantizes this plan's *stored* steps — call it on the float32
        original; re-quantizing an already-quantized plan compounds the
        rounding and raises instead.
        """
        if self.quantize is not None:
            raise ConfigurationError(
                f"plan is already quantized ({self.quantize!r}); quantize the "
                "float32 original instead of stacking rounding passes"
            )
        return InferencePlan(
            self.steps,
            input_mean=self.input_mean,
            input_scale=self.input_scale,
            capacity=self._capacity if capacity is None else capacity,
            version=self.version,
            label=self.label,
            quantize=mode,
        )

    # ------------------------------------------------------------- geometry

    @property
    def n_inputs(self) -> int:
        """Feature width the plan consumes."""
        return self.steps[0].in_features

    @property
    def n_outputs(self) -> int:
        """Output width the final step produces."""
        return self.steps[-1].out_features

    @property
    def capacity(self) -> int:
        """Largest batch the current buffers hold without reallocating."""
        return self._capacity

    @property
    def exec_steps(self) -> tuple[tuple[np.ndarray, np.ndarray | None, str], ...]:
        """The executable ``(weight, bias, activation)`` steps, scaler folded.

        This is the exact sequence :meth:`forward` runs — step 0 carries
        the algebraically folded scaler when the plan was built with one.
        External executors (the fleet's tiled runner) drive these instead
        of :attr:`steps` so their arithmetic matches the plan's, GEMM for
        GEMM.  The arrays are the plan's own — treat them as read-only.
        """
        return tuple(self._exec)

    def n_parameters(self) -> int:
        """Total frozen scalar count (matches the source model's)."""
        return sum(
            s.weight.size + (0 if s.bias is None else s.bias.size) for s in self.steps
        )

    # ------------------------------------------------------------- identity

    def fingerprint(self) -> str:
        """SHA-1 content identity over the executable weight/bias bytes.

        Two plans with equal fingerprints run the exact same arithmetic
        (scaler folding included), whatever their ``version``/``label``
        say.  Computed lazily and cached — plan weights are frozen by
        contract.  Matches
        :meth:`repro.fleet.registry.PlanSignature.of` digests byte for
        byte, since both hash the same ``exec_steps`` buffers.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            for weight, bias, _ in self._exec:
                digest.update(weight.tobytes())
                if bias is not None:
                    digest.update(bias.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def identity(self) -> dict:
        """JSON-stable lineage descriptor (version, label, fingerprint)."""
        return {
            "version": self.version,
            "label": self.label,
            "fingerprint": self.fingerprint(),
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
        }

    def nbytes(self) -> int:
        """Bytes held by weights, biases and scratch buffers."""
        weights = sum(
            w.nbytes + (0 if b is None else b.nbytes) for w, b, _ in self._exec
        )
        scratch = sum(b.nbytes for b in self._buffers)
        return weights + scratch

    def parameter_bytes(self) -> int:
        """Stored bytes of the deployed artifact's parameter arrays.

        Exactly what :meth:`payload` persists — quantized codes and
        scales (or float32 weights), float32 biases, scaler statistics —
        the number the paper's ~15 KiB deployment footprint is measured
        against.  :meth:`nbytes` by contrast counts the *runtime*
        footprint (dequantized float32 exec weights plus scratch).
        """
        arrays, _ = self.payload()
        return sum(a.nbytes for a in arrays.values())

    def __repr__(self) -> str:
        widths = [self.n_inputs] + [s.out_features for s in self.steps]
        arch = "->".join(str(w) for w in widths)
        scaled = ", scaled" if self.input_mean is not None else ""
        tag = ""
        if self.quantize is not None:
            tag = f", {self.quantize}"
        if self.label is not None:
            tag += f", label={self.label!r}"
        if self.version:
            tag += f", v{self.version}"
        return f"InferencePlan({arch}{scaled}{tag}, capacity={self._capacity})"

    # ------------------------------------------------------------- hot path

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = max(n, 2 * self._capacity, 1)
        self._buffers = [
            np.empty((capacity, step.out_features), dtype=np.float32)
            for step in self.steps
        ]
        self._capacity = capacity
        self._views_n = -1

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the frozen forward pass; returns raw outputs, shape (n, out).

        The returned array is a **view into a reused scratch buffer** —
        valid until the next ``forward`` call.  Copy it if you keep it;
        :meth:`predict_proba` / :meth:`predict_logits` already do.
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self._n_inputs:
            raise ShapeError(
                f"InferencePlan({self._n_inputs} inputs) got input {x.shape}"
            )
        n = x.shape[0]
        if n != self._views_n:
            if n > self._capacity:
                self._ensure_capacity(n)
            self._views = [buffer[:n] for buffer in self._buffers]
            self._views_n = n
        current = x
        for (weight, bias, activation), out in zip(self._exec, self._views):
            # np.dot hits the same BLAS GEMM as np.matmul but with less
            # Python dispatch — worth ~0.5 us/layer at single-frame sizes.
            np.dot(current, weight, out=out)
            if bias is not None:
                out += bias
            if activation == "relu":
                np.maximum(out, _F32_ZERO, out=out)
            elif activation != "none":
                _apply_activation_inplace(out, activation)
            current = out
        return current

    __call__ = forward

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Raw model outputs as a fresh (owned) array, shape (n, out)."""
        return self.forward(x).copy()

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(occupied) per row, shape (n,) — single-logit plans only.

        Matches :meth:`repro.core.detector.OccupancyDetector.predict_proba`
        numerics (clipped logistic) so a frozen detector serves byte-alike.
        A plan whose final step already ends in ``sigmoid`` is returned
        as-is (re-squashing probabilities would be wrong).
        """
        if self.n_outputs != 1:
            raise ShapeError(
                f"predict_proba needs a single-output plan, this one has "
                f"{self.n_outputs}"
            )
        out = self.forward(x)[:, 0].astype(float)
        if self.steps[-1].activation == "sigmoid":
            return out
        # In-place float64 clipped logistic — bit-identical to the
        # detector's 1/(1 + exp(-clip(logits))) but allocation-free
        # (maximum+minimum computes np.clip's result without its
        # Python dispatch overhead).
        np.maximum(out, -_LOGIT_CLIP, out=out)
        np.minimum(out, _LOGIT_CLIP, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 decisions at the 0.5 threshold."""
        return (self.predict_proba(x) >= 0.5).astype(int)

    # ---------------------------------------------------------- persistence

    def payload(self) -> tuple[dict[str, np.ndarray], dict]:
        """``(arrays, meta)`` for :func:`repro.deploy.export.export_plan`."""
        arrays: dict[str, np.ndarray] = {}
        for i, step in enumerate(self.steps):
            if self.quantize is None:
                arrays[f"w{i}"] = step.weight
            else:
                # Persist the quantized storage, not the dequantized exec
                # weights — the artifact carries the size win, and the
                # load side rebuilds the identical float32 arithmetic.
                store = self._qstore[i]
                arrays[f"w{i}"] = store[0]
                if self.quantize == "int8":
                    arrays[f"ws{i}"] = store[1]
            if step.bias is not None:
                arrays[f"b{i}"] = step.bias
        if self.input_mean is not None:
            arrays["input_mean"] = self.input_mean
            arrays["input_scale"] = self.input_scale
        meta = {
            "kind": "inference_plan",
            "version": 1,
            "n_steps": len(self.steps),
            "activations": [s.activation for s in self.steps],
            "has_bias": [s.bias is not None for s in self.steps],
            "has_scaler": self.input_mean is not None,
            # Lineage identity (PR 7): absent in pre-rollout payloads, so
            # the load side defaults both.
            "plan_version": self.version,
            "plan_label": self.label,
            # Storage quantization (PR 10): absent/None in older payloads.
            "quantize": self.quantize,
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict, capacity: int = 64
    ) -> "InferencePlan":
        """Rebuild a plan from :meth:`payload` output (load-side)."""
        if meta.get("kind") != "inference_plan":
            raise ConfigurationError("payload is not an inference plan")
        quantize = meta.get("quantize")
        if quantize not in QUANTIZE_MODES:
            raise ConfigurationError(
                f"payload carries unknown quantize mode {quantize!r}"
            )
        steps = []
        qstore: list[tuple[np.ndarray, ...]] | None = [] if quantize else None
        for i in range(int(meta["n_steps"])):
            if quantize is None:
                weight = np.ascontiguousarray(arrays[f"w{i}"], dtype=np.float32)
            else:
                store = (
                    (np.ascontiguousarray(arrays[f"w{i}"]),)
                    if quantize == "float16"
                    else (
                        np.ascontiguousarray(arrays[f"w{i}"]),
                        np.ascontiguousarray(arrays[f"ws{i}"]),
                    )
                )
                qstore.append(store)
                weight = _dequantize_weight(store, quantize)
            bias = (
                np.ascontiguousarray(arrays[f"b{i}"], dtype=np.float32)
                if meta["has_bias"][i]
                else None
            )
            steps.append(PlanStep(weight, bias, meta["activations"][i]))
        mean = scale = None
        if meta["has_scaler"]:
            mean, scale = arrays["input_mean"], arrays["input_scale"]
        return cls(
            steps,
            input_mean=mean,
            input_scale=scale,
            capacity=capacity,
            version=int(meta.get("plan_version", 0)),
            label=meta.get("plan_label"),
            quantize=quantize,
            _qstore=qstore,
        )


def freeze_detector(detector, *, version: int = 0, label: str | None = None) -> InferencePlan:
    """Freeze an :class:`~repro.core.detector.OccupancyDetector` end to end.

    Captures both halves of the detector's predict path — the fitted
    scaler and the MLP — so ``plan.predict_proba`` reproduces
    ``detector.predict_proba`` to float32 precision.  Duck-typed: any
    object with a fitted ``.scaler`` and a Sequential ``.model`` works.
    ``version``/``label`` stamp the plan's lineage identity.
    """
    model = getattr(detector, "model", None)
    scaler = getattr(detector, "scaler", None)
    if model is None:
        raise ConfigurationError(
            f"{type(detector).__name__} has no .model attribute to freeze"
        )
    if not isinstance(model, Module):
        raise ConfigurationError(
            f"{type(detector).__name__}.model is not a Module"
        )
    return InferencePlan.from_model(model, scaler=scaler, version=version, label=label)
