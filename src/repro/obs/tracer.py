"""Frame-level trace spans: where did each frame's time actually go?

The serving engine's aggregate histograms say a batch took 3 ms; they
cannot say that frame 8231 spent 40 ms waiting in the queue, 2 ms in the
validator and 1 ms in predict before the debouncer emitted its state.
:class:`FrameTracer` records exactly that: per frame (keyed by the
monotonic frame id :meth:`~repro.serve.engine.InferenceEngine.submit`
assigns), a map of pipeline stage → wall-clock milliseconds, plus the
frame's terminal outcome.

Two sinks, two contracts:

* a bounded ring of :class:`FrameTrace` records (drop-oldest) for
  per-frame postmortems — wall-clock timings, explicitly **outside** the
  byte-identical determinism guarantee of the event log;
* per-stage :class:`~repro.serve.metrics.Histogram` aggregates, exact
  over the run's lifetime, which also mirror into a bound
  :class:`~repro.serve.metrics.MetricsRegistry` as ``stage_<name>_ms``
  so they ride along in the Prometheus exposition and ``obs-report``.

The tracer is only ever touched behind the engine's
``observer.enabled`` check — a disabled (null) observer keeps the hot
path free of ``perf_counter`` calls entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError


def _new_histogram():
    # Deferred: the engine imports repro.obs at module level, so an eager
    # import of repro.serve.metrics here would complete a cycle whenever
    # repro.obs loads first.
    from ..serve.metrics import Histogram

    return Histogram()

#: Pipeline stages in hot-path order.  ``queue_wait`` is the span between
#: enqueue and batch drain; ``predict``/``supervise`` are batch-level and
#: attributed whole to every frame in the batch (each frame really did
#: wait the full batch call).
STAGES = (
    "validate",
    "repair",
    "enqueue",
    "queue_wait",
    "supervise",
    "predict",
    "emit",
)


@dataclass
class FrameTrace:
    """One frame's journey: stage → wall ms, plus the terminal outcome."""

    frame_id: int
    link_id: str
    t_s: float
    #: True for synthetic gap-fill frames.
    repaired: bool = False
    #: Stage name → wall-clock milliseconds spent in that stage.
    stages: dict[str, float] = field(default_factory=dict)
    #: ``answered`` / ``rejected`` / ``quarantined`` / ``policy_rejected``
    #: / ``stale`` / ``overflow``; ``None`` while still in flight.
    outcome: str | None = None

    @property
    def total_ms(self) -> float:
        return sum(self.stages.values())

    def to_dict(self) -> dict:
        return {
            "frame_id": self.frame_id,
            "link_id": self.link_id,
            "t_s": self.t_s,
            "repaired": self.repaired,
            "outcome": self.outcome,
            "stages": dict(self.stages),
        }


class FrameTracer:
    """Bounded per-frame span recorder plus lifetime stage histograms."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: dict[int, FrameTrace] = {}
        self._enqueued_at: dict[int, float] = {}
        self._stage_hist: dict = {}
        self._registry = None
        #: Lifetime counts (exact under ring eviction).
        self.started = 0
        self.finished = 0

    def bind_registry(self, registry) -> None:
        """Mirror stage timings into ``stage_<name>_ms`` registry histograms."""
        if self._registry is None:
            self._registry = registry

    # ---------------------------------------------------------------- spans

    def start(self, frame_id: int, link_id: str, t_s: float, *, repaired: bool = False) -> None:
        """Open a trace for one frame (evicting the oldest at capacity)."""
        if len(self._traces) >= self.capacity:
            # dicts preserve insertion order: the first key is the oldest.
            self._traces.pop(next(iter(self._traces)))
        self._traces[frame_id] = FrameTrace(frame_id, link_id, float(t_s), repaired=repaired)
        self.started += 1

    def add_stage(self, frame_id: int, stage: str, wall_ms: float) -> None:
        """Record wall time for one stage of one frame.

        The lifetime histogram is always fed; the per-frame record only
        when the trace is still retained in the ring.
        """
        wall_ms = float(wall_ms)
        hist = self._stage_hist.get(stage)
        if hist is None:
            hist = self._stage_hist[stage] = _new_histogram()
        hist.observe(wall_ms)
        if self._registry is not None:
            self._registry.histogram(f"stage_{stage}_ms").observe(wall_ms)
        trace = self._traces.get(frame_id)
        if trace is not None:
            trace.stages[stage] = trace.stages.get(stage, 0.0) + wall_ms

    def mark_enqueued(self, frame_id: int) -> None:
        """Stamp the enqueue wall clock; closed later by :meth:`queue_wait`."""
        self._enqueued_at[frame_id] = time.perf_counter()

    def queue_wait(self, frame_id: int) -> None:
        """Close the enqueue→drain span as the ``queue_wait`` stage."""
        t0 = self._enqueued_at.pop(frame_id, None)
        if t0 is not None:
            self.add_stage(frame_id, "queue_wait", 1000.0 * (time.perf_counter() - t0))

    def finish(self, frame_id: int, outcome: str) -> None:
        """Seal a frame's trace with its terminal outcome."""
        self._enqueued_at.pop(frame_id, None)  # overflow/stale never drain
        self.finished += 1
        trace = self._traces.get(frame_id)
        if trace is not None:
            trace.outcome = outcome

    # ------------------------------------------------------------- read side

    @property
    def open_frames(self) -> int:
        """Frames started but not yet finished (still in the pipeline)."""
        return self.started - self.finished

    def trace(self, frame_id: int) -> FrameTrace | None:
        """The retained trace for one frame id (None once evicted)."""
        return self._traces.get(frame_id)

    def traces(self) -> list[FrameTrace]:
        """All retained traces, oldest first."""
        return list(self._traces.values())

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Per-stage latency summary (count/mean/p50/p95/max), hot-path order."""
        order = {name: i for i, name in enumerate(STAGES)}
        return {
            stage: self._stage_hist[stage].summary()
            for stage in sorted(self._stage_hist, key=lambda s: (order.get(s, len(order)), s))
        }
