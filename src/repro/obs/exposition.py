"""Prometheus text exposition of a :class:`~repro.serve.metrics.MetricsRegistry`.

The registry's native ``report()`` is for humans at a terminal; scrapers
want the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_.
:func:`render_prometheus` maps the registry's three primitives onto it:

* :class:`~repro.serve.metrics.Counter` → ``counter`` samples;
* :class:`~repro.serve.metrics.Gauge` → ``gauge`` samples;
* :class:`~repro.serve.metrics.Histogram` → a ``summary``: quantile
  samples over the retained window plus lifetime-exact ``_sum``/``_count``
  (matching the histogram's own windowed-percentiles / exact-totals split).

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) and prefixed with a namespace, so
``batch_latency_ms`` becomes ``repro_batch_latency_ms``.  Output is
sorted by sample name — stable across runs for diffable scrapes.

No HTTP server ships here: the renderer is the hard part, and serving the
string from any framework (or writing it to a node-exporter textfile) is
one line at the deployment edge.
"""

from __future__ import annotations

import math
import re

#: Summary quantiles exported for every histogram.
QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Map an arbitrary registry name onto the Prometheus grammar."""
    cleaned = _INVALID.sub("_", name)
    if namespace:
        cleaned = f"{_INVALID.sub('_', namespace)}_{cleaned}"
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry, namespace: str = "repro") -> str:
    """The registry's current state in Prometheus text exposition format.

    Accepts any object with ``counters``/``gauges``/``histograms``
    mapping properties (canonically a
    :class:`~repro.serve.metrics.MetricsRegistry`).  Returns the full
    page, newline-terminated.
    """
    blocks: list[tuple[str, list[str]]] = []
    for name, counter in registry.counters.items():
        metric = sanitize_metric_name(name, namespace)
        blocks.append(
            (metric, [f"# TYPE {metric} counter", f"{metric} {_format_value(counter.value)}"])
        )
    for name, gauge in registry.gauges.items():
        metric = sanitize_metric_name(name, namespace)
        blocks.append(
            (metric, [f"# TYPE {metric} gauge", f"{metric} {_format_value(gauge.value)}"])
        )
    for name, hist in registry.histograms.items():
        metric = sanitize_metric_name(name, namespace)
        lines = [f"# TYPE {metric} summary"]
        for q, pct in QUANTILES:
            lines.append(
                f'{metric}{{quantile="{q}"}} {_format_value(hist.percentile(pct))}'
            )
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
        blocks.append((metric, lines))
    blocks.sort(key=lambda block: block[0])
    return "\n".join(line for _, lines in blocks for line in lines) + "\n"
