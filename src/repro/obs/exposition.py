"""Prometheus text exposition of a :class:`~repro.serve.metrics.MetricsRegistry`.

The registry's native ``report()`` is for humans at a terminal; scrapers
want the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_.
:func:`render_prometheus` maps the registry's three primitives onto it:

* :class:`~repro.serve.metrics.Counter` → ``counter`` samples;
* :class:`~repro.serve.metrics.Gauge` → ``gauge`` samples;
* :class:`~repro.serve.metrics.Histogram` → a ``summary``: quantile
  samples over the retained window plus lifetime-exact ``_sum``/``_count``
  (matching the histogram's own windowed-percentiles / exact-totals split).

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) and prefixed with a namespace, so
``batch_latency_ms`` becomes ``repro_batch_latency_ms``.  Output is
sorted by sample name — stable across runs for diffable scrapes.

Registry names may carry **labels** in the conventional brace form the
fleet layer uses, e.g. ``fleet_frames_total{tenant=room-12}``:
:func:`split_labels` parses the name into a base family plus label
pairs, the family name is sanitised once, label values are escaped, and
every series of one family shares a single ``# TYPE`` line — so
per-tenant rollups scrape as one labeled family rather than hundreds of
mangled flat names.

No HTTP server ships here: the renderer is the hard part, and serving the
string from any framework (or writing it to a node-exporter textfile) is
one line at the deployment edge.
"""

from __future__ import annotations

import math
import re

#: Summary quantiles exported for every histogram.
QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Map an arbitrary registry name onto the Prometheus grammar."""
    cleaned = _INVALID.sub("_", name)
    if namespace:
        cleaned = f"{_INVALID.sub('_', namespace)}_{cleaned}"
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = f"_{cleaned}"
    return cleaned


_LABELED = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>[^{}]*)\}$")


def split_labels(name: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Parse a registry name into ``(family, ((key, value), ...))``.

    ``"fleet_frames_total{tenant=room-12}"`` →
    ``("fleet_frames_total", (("tenant", "room-12"),))``; a name without
    a brace block comes back with an empty label tuple.  Malformed brace
    blocks (no ``=``, nested braces) are left alone — the whole name is
    treated as an unlabeled family and later sanitised into grammar.
    """
    match = _LABELED.match(name)
    if not match:
        return name, ()
    pairs = []
    for part in match.group("labels").split(","):
        if "=" not in part:
            return name, ()
        key, value = part.split("=", 1)
        if not key.strip():
            return name, ()
        pairs.append((key.strip(), value.strip()))
    return match.group("base"), tuple(pairs)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _series_name(metric: str, labels: tuple[tuple[str, str], ...], *extra: tuple[str, str]) -> str:
    pairs = labels + tuple(extra)
    if not pairs:
        return metric
    inner = ",".join(
        f'{_INVALID.sub("_", key)}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return f"{metric}{{{inner}}}"


def render_prometheus(registry, namespace: str = "repro") -> str:
    """The registry's current state in Prometheus text exposition format.

    Accepts any object with ``counters``/``gauges``/``histograms``
    mapping properties (canonically a
    :class:`~repro.serve.metrics.MetricsRegistry`).  Returns the full
    page, newline-terminated.  Labeled registry names (brace convention,
    see :func:`split_labels`) render as labeled series grouped under one
    ``# TYPE`` line per family.
    """
    # family name -> (kind, [(sort_key, [sample lines]), ...])
    families: dict[str, tuple[str, list[tuple[str, list[str]]]]] = {}

    def family(name: str, kind: str) -> tuple[str, tuple[tuple[str, str], ...], list]:
        base, labels = split_labels(name)
        metric = sanitize_metric_name(base, namespace)
        if metric not in families:
            families[metric] = (kind, [])
        return metric, labels, families[metric][1]

    for name, counter in registry.counters.items():
        metric, labels, series = family(name, "counter")
        sample = _series_name(metric, labels)
        series.append((sample, [f"{sample} {_format_value(counter.value)}"]))
    for name, gauge in registry.gauges.items():
        metric, labels, series = family(name, "gauge")
        sample = _series_name(metric, labels)
        series.append((sample, [f"{sample} {_format_value(gauge.value)}"]))
    for name, hist in registry.histograms.items():
        metric, labels, series = family(name, "summary")
        lines = [
            f"{_series_name(metric, labels, ('quantile', str(q)))} "
            f"{_format_value(hist.percentile(pct))}"
            for q, pct in QUANTILES
        ]
        lines.append(f"{_series_name(metric + '_sum', labels)} {_format_value(hist.total)}")
        lines.append(f"{_series_name(metric + '_count', labels)} {hist.count}")
        series.append((_series_name(metric, labels), lines))
    out: list[str] = []
    for metric in sorted(families):
        kind, series = families[metric]
        out.append(f"# TYPE {metric} {kind}")
        for _, lines in sorted(series, key=lambda item: item[0]):
            out.extend(lines)
    return "\n".join(out) + "\n"
