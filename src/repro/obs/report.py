"""Trace dumps on disk and the ``obs-report`` renderer.

A bench run (or a live engine at shutdown) serialises its
:class:`~repro.obs.observer.Observer` state to one JSON **dump file**:

.. code-block:: json

    {"format": "repro-obs-dump-v1",
     "runs": [{"label": "...", "ledger": {...}, "stages": {...},
               "events_total": 0, "events_by_kind": {...},
               "events": [...], "metrics": {...}, "prometheus": "..."}]}

``runs`` is always a list so one file can carry a whole chaos campaign
(one run per scenario).  :func:`render_report` turns a dump back into the
operator view: per-run frame-ledger reconciliation, the per-stage
wall-time breakdown (count / mean / p50 / p95 / max ms) and the tail of
the structured event log — everything needed to answer "which frame went
where, and what did it cost" from a file attached to a CI artifact.

The ``events`` section of each run is deterministic under same-seed
replay; ``stages``/``metrics``/``prometheus`` carry wall-clock numbers
and are not.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import ConfigurationError, SerializationError

#: Format tag stored in every dump file.
DUMP_FORMAT = "repro-obs-dump-v1"


def build_dump(observers) -> dict:
    """Assemble the dump dict from one observer, a list, or a name→observer map."""
    if hasattr(observers, "dump"):
        runs = [observers.dump()]
    elif isinstance(observers, dict):
        runs = []
        for label, observer in observers.items():
            run = observer.dump()
            if run.get("label") is None:
                run["label"] = label
            runs.append(run)
    else:
        runs = [observer.dump() for observer in observers]
    return {"format": DUMP_FORMAT, "runs": runs}


def write_dump(path: str | Path, observers) -> Path:
    """Serialise observers (or a prebuilt dump dict) to ``path`` as JSON."""
    dump = (
        observers
        if isinstance(observers, dict) and observers.get("format") == DUMP_FORMAT
        else build_dump(observers)
    )
    path = Path(path)
    path.write_text(json.dumps(dump, sort_keys=True, indent=1) + "\n")
    return path


def load_dump(path: str | Path) -> dict:
    """Read and validate a dump written by :func:`write_dump`."""
    path = Path(path)
    try:
        dump = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SerializationError(f"cannot read obs dump {path}: {error}") from error
    if not isinstance(dump, dict) or dump.get("format") != DUMP_FORMAT:
        raise SerializationError(
            f"{path} is not a {DUMP_FORMAT} dump "
            f"(format={dump.get('format')!r})" if isinstance(dump, dict)
            else f"{path} is not a {DUMP_FORMAT} dump"
        )
    if not isinstance(dump.get("runs"), list):
        raise SerializationError(f"{path}: dump carries no 'runs' list")
    return dump


def _format_table(rows: list[dict[str, object]]) -> list[str]:
    if not rows:
        return []
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return lines


def _render_stage_table(stages: dict) -> list[str]:
    rows = []
    for stage, s in stages.items():
        rows.append(
            {
                "stage": stage,
                "count": f"{s.get('count', float('nan')):g}",
                "mean ms": f"{s.get('mean', float('nan')):.3f}",
                "p50 ms": f"{s.get('p50', float('nan')):.3f}",
                "p95 ms": f"{s.get('p95', float('nan')):.3f}",
                "max ms": f"{s.get('max', float('nan')):.3f}",
            }
        )
    return _format_table(rows)


def _render_event(event: dict) -> str:
    parts = [f"[{event.get('seq', '?'):>6}]", f"t={event.get('t_s', float('nan')):.3f}s"]
    parts.append(str(event.get("kind", "?")))
    if event.get("frame_id") is not None:
        parts.append(f"frame={event['frame_id']}")
    if event.get("link_id") is not None:
        parts.append(f"link={event['link_id']}")
    data = event.get("data") or {}
    parts.extend(f"{key}={data[key]}" for key in sorted(data))
    return " ".join(parts)


def render_run(run: dict, *, events_tail: int = 20) -> str:
    """One run's operator view: ledger, stage breakdown, event tail."""
    if events_tail < 0:
        raise ConfigurationError("events_tail must be >= 0")
    label = run.get("label") or "(unlabelled run)"
    lines = [f"== {label} =="]

    ledger = run.get("ledger") or {}
    if ledger:
        lines.append(
            "frame ledger: "
            + "  ".join(f"{key}={ledger[key]}" for key in ledger)
        )
        unaccounted = int(ledger.get("unaccounted", 0)) + int(ledger.get("pending", 0))
        lines.append(
            "ledger reconciles: every frame accounted for"
            if unaccounted == 0
            else f"WARNING: {unaccounted} frame(s) pending or unaccounted"
        )

    stages = run.get("stages") or {}
    if stages:
        lines.append("")
        lines.append("per-stage wall time:")
        lines.extend("  " + line for line in _render_stage_table(stages))

    total = run.get("events_total", 0)
    events = run.get("events") or []
    by_kind = run.get("events_by_kind") or {}
    rollout_kinds = sorted(k for k in by_kind if k.startswith("rollout."))
    if rollout_kinds:
        lines.append("")
        lines.append(
            "rollout: "
            + "  ".join(
                f"{kind.split('.', 1)[1]}={by_kind[kind]}" for kind in rollout_kinds
            )
        )
        promoted = int(by_kind.get("rollout.promoted", 0))
        rolled_back = int(by_kind.get("rollout.rolled_back", 0))
        if rolled_back:
            lines.append(f"WARNING: {rolled_back} promotion(s) rolled back")
        elif promoted:
            lines.append("rollout healthy: every promotion stuck")
    governor_kinds = sorted(k for k in by_kind if k.startswith("governor."))
    shed_causes = {
        "frame.rate_limited": "rate_limited",
        "frame.deadline_expired": "deadline_expired",
        "frame.shed": "shed",
    }
    shed_counts = {
        name: int(by_kind.get(kind, 0))
        for kind, name in shed_causes.items()
        if by_kind.get(kind)
    }
    if governor_kinds or shed_counts:
        lines.append("")
        overload = [
            f"{kind.split('.', 1)[1]}={by_kind[kind]}" for kind in governor_kinds
        ] + [f"{name}={count}" for name, count in shed_counts.items()]
        lines.append("overload: " + "  ".join(overload))
        mode_changes = int(by_kind.get("governor.mode_change", 0))
        if mode_changes:
            lines.append(
                f"governor stepped the degradation ladder {mode_changes} time(s)"
            )
    fleet_kinds = sorted(k for k in by_kind if k.startswith("fleet."))
    if fleet_kinds:
        lines.append("")
        lines.append(
            "fleet: "
            + "  ".join(
                f"{kind.split('.', 1)[1]}={by_kind[kind]}" for kind in fleet_kinds
            )
        )
        migrations = int(by_kind.get("fleet.rebalance", 0))
        if migrations:
            lines.append(
                f"shard rebalancing migrated this tenant {migrations} time(s)"
            )
        if by_kind.get("fleet.detach"):
            lines.append("tenant detached: final ledger above is the archive")
    lines.append("")
    lines.append(
        f"event log: {total} event(s) lifetime, {len(events)} retained"
        + (
            " (" + ", ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind)) + ")"
            if by_kind
            else ""
        )
    )
    tail = events[-events_tail:] if events_tail else []
    if tail:
        lines.append(f"last {len(tail)} event(s):")
        lines.extend("  " + _render_event(event) for event in tail)
    return "\n".join(lines)


def render_report(dump: dict, *, events_tail: int = 20) -> str:
    """The full ``obs-report`` text for one dump (all runs)."""
    runs = dump.get("runs") or []
    if not runs:
        return "obs-report: dump carries no runs"
    return "\n\n".join(render_run(run, events_tail=events_tail) for run in runs)
