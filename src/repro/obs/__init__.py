"""Frame-level observability: trace spans, structured events, exposition.

The serving stack (:mod:`repro.serve`) and the guard stack
(:mod:`repro.guard`) count everything; this package makes them
*accountable*.  Three layers, one facade:

* :mod:`repro.obs.tracer` — per-frame **trace spans** keyed by the
  monotonic frame id the engine assigns at ``submit``: wall-clock
  milliseconds per pipeline stage (validate → repair → enqueue →
  queue_wait → supervise → predict → emit) in a bounded ring, plus
  lifetime stage histograms;
* :mod:`repro.obs.events` — a bounded **structured event log** of typed,
  stream-time-stamped records (quarantine verdicts, gap fills, breaker
  transitions, fallback switches, checkpoint saves/rollbacks) whose
  JSONL dump is byte-identical under same-seed replay;
* :mod:`repro.obs.exposition` — Prometheus text exposition of any
  :class:`~repro.serve.metrics.MetricsRegistry`, including the derived
  ``stage_<name>_ms`` latency histograms the tracer feeds.

:class:`~repro.obs.observer.Observer` bundles the sinks and owns the
obs-side frame ledger; :data:`~repro.obs.observer.NULL_OBSERVER` is the
zero-cost default every engine runs with unless handed a live observer.
:mod:`repro.obs.report` round-trips observer state through JSON dump
files and renders the ``obs-report`` CLI view.
"""

from .events import EVENT_KINDS, Event, EventLog
from .exposition import QUANTILES, render_prometheus, sanitize_metric_name
from .observer import NULL_OBSERVER, NullObserver, Observer
from .report import (
    DUMP_FORMAT,
    build_dump,
    load_dump,
    render_report,
    render_run,
    write_dump,
)
from .tracer import STAGES, FrameTrace, FrameTracer

__all__ = [
    "DUMP_FORMAT",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "FrameTrace",
    "FrameTracer",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "QUANTILES",
    "STAGES",
    "build_dump",
    "load_dump",
    "render_prometheus",
    "render_report",
    "render_run",
    "sanitize_metric_name",
    "write_dump",
]
