"""Structured events: the pipeline's append-only incident journal.

Counters answer "how many"; they cannot answer "which frame, when, and
in what order".  :class:`EventLog` is the missing middle ground between a
metrics registry and a full tracing backend: a bounded ring buffer of
typed :class:`Event` records — quarantine verdicts, gap fills, breaker
transitions, fallback switches, checkpoint saves and rollbacks — each
stamped with a monotonic sequence number and **stream time** (frame
timestamps), never wall clock.

Stream-time stamping is a determinism contract, not a convenience: a
same-seed chaos replay must produce a byte-identical event-log dump
(:meth:`EventLog.to_jsonl`), extending the byte-identical stream
guarantee of :mod:`repro.faults` up through observability.  Anything
wall-clock-dependent belongs in the tracer's stage spans
(:mod:`repro.obs.tracer`), which are explicitly outside that guarantee.

The event taxonomy is closed (:data:`EVENT_KINDS`): emitting an unknown
kind raises, so a typo in an instrumentation site fails loudly in tests
instead of silently fragmenting postmortem queries.  Extend the taxonomy
per log via ``extra_kinds`` when embedding the log in new subsystems.

Lifetime totals (:attr:`EventLog.total`, :meth:`EventLog.counts_by_kind`)
survive ring eviction, so ledger reconciliation stays exact even when a
long campaign wraps the buffer many times.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError

#: The closed event taxonomy.  Per-frame terminal outcomes come first —
#: every frame the engine admits ends its life in exactly one of them.
EVENT_KINDS = frozenset(
    {
        # -- per-frame terminal outcomes (the obs-side frame ledger) --
        "frame.answered",        # a result was emitted (primary or fallback)
        "frame.rejected",        # refused at the basic shape/finite gate
        "frame.quarantined",     # refused by the validator check chain
        "frame.policy_rejected", # shed because both serving tiers were down
        "frame.stale",           # dropped at flush: older than stale_after_s
        "frame.overflow",        # evicted by queue backpressure
        "frame.rate_limited",    # refused admission by the tenant's token bucket
        "frame.deadline_expired",# shed at dequeue: deadline budget exhausted
        "frame.shed",            # shed by the saturation governor (SHED mode)
        # -- per-frame non-terminal --
        "frame.repaired",        # a synthetic gap-fill frame was manufactured
        # -- batch-level --
        "batch.flush",           # a micro-batch ran (size + serving source)
        "batch.rejected",        # a whole batch shed by the supervisor
        "serve.batch_resize",    # the adaptive batcher re-sized the flush triggers
        # -- guard transitions --
        "breaker.opened",
        "breaker.closed",
        "breaker.probe",
        "drift.warn",
        "drift.trip",
        "link.recovered",
        # -- overload governor --
        "governor.mode_change",  # the degradation ladder stepped (sticky)
        "governor.probe",        # a jittered-backoff recovery probe fired
        # -- training lifecycle --
        "train.epoch",
        "checkpoint.saved",
        "checkpoint.best",
        "checkpoint.rollback",
        # -- champion/challenger rollout lifecycle --
        "rollout.shadow_start",  # a challenger entered shadow evaluation
        "rollout.promoted",      # anytime-valid win: challenger hot-swapped in
        "rollout.rolled_back",   # promotion reverted (breaker trip / divergence)
        "rollout.futility_stop", # shadow ended without promotion (loss/futility)
        # -- fleet tenant churn --
        "fleet.attach",          # a tenant joined the fleet (lifecycle ATTACHED)
        "fleet.plan_swap",       # a tenant's plan was replaced after a drain
        "fleet.detach",          # a tenant left the fleet after a drain
        "fleet.rebalance",       # a tenant migrated shards (skew rebalancing)
    }
)


def _jsonable(value):
    """Coerce numpy scalars/strings to plain JSON-stable Python values."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class Event:
    """One structured record: what happened, to which frame, at what time."""

    #: Monotonic position in the log (survives ring eviction).
    seq: int
    #: One of :data:`EVENT_KINDS` (or a registered extra kind).
    kind: str
    #: Stream time of the event (frame timestamps; 0-based epoch index
    #: for training events) — never wall clock.
    t_s: float
    frame_id: int | None = None
    link_id: str | None = None
    #: Kind-specific payload (JSON-stable values only).
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "t_s": self.t_s,
            "frame_id": self.frame_id,
            "link_id": self.link_id,
            "data": self.data,
        }

    def to_json(self) -> str:
        """Canonical one-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class EventLog:
    """Bounded, typed, stream-time event ring (drop-oldest on overflow)."""

    def __init__(self, capacity: int = 4096, extra_kinds: tuple[str, ...] = ()) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._kinds = EVENT_KINDS | frozenset(extra_kinds)
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        #: Lifetime number of events emitted (>= len(self) after eviction).
        self.total = 0
        self._by_kind: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def emit(
        self,
        kind: str,
        *,
        t_s: float = 0.0,
        frame_id: int | None = None,
        link_id: str | None = None,
        **data,
    ) -> Event:
        """Append one event; returns it.  Unknown kinds raise."""
        if kind not in self._kinds:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; register it via extra_kinds "
                f"or use one of the {len(self._kinds)} taxonomy kinds"
            )
        event = Event(
            seq=self._seq,
            kind=kind,
            t_s=float(t_s),
            frame_id=None if frame_id is None else int(frame_id),
            link_id=link_id,
            data={key: _jsonable(value) for key, value in data.items()},
        )
        self._seq += 1
        self.total += 1
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        self._events.append(event)
        return event

    def counts_by_kind(self) -> dict[str, int]:
        """Lifetime event counts keyed by kind (exact under eviction)."""
        return dict(self._by_kind)

    def count(self, kind: str) -> int:
        """Lifetime count of one kind (0 when never emitted)."""
        return self._by_kind.get(kind, 0)

    def tail(self, n: int = 20) -> list[Event]:
        """The newest ``n`` retained events, oldest first."""
        if n < 0:
            raise ConfigurationError("n must be >= 0")
        return list(self._events)[-n:] if n else []

    def to_jsonl(self) -> str:
        """Canonical JSONL dump of the retained ring, oldest first.

        This string is the byte-identical determinism surface: two
        same-seed replays of the same campaign must produce equal dumps.
        """
        return "\n".join(event.to_json() for event in self._events)

    def drain(self) -> list[Event]:
        """Pop every retained event (oldest first) for offline audit."""
        out = list(self._events)
        self._events.clear()
        return out
