"""The observability facade the serving stack threads through itself.

:class:`Observer` bundles the two sinks — a :class:`~repro.obs.tracer.FrameTracer`
for wall-clock stage spans and an :class:`~repro.obs.events.EventLog` for
deterministic structured events — behind the single object the
:class:`~repro.serve.engine.InferenceEngine`, the
:class:`~repro.guard.supervisor.RecoverySupervisor`, the trainer and the
benches all accept.

The default is :data:`NULL_OBSERVER`: a singleton whose ``enabled`` flag
is False and whose methods are no-ops.  Instrumented code guards every
timing block with ``if observer.enabled:``, so a disabled pipeline pays
one attribute read per frame and zero ``perf_counter`` calls — tier-1
throughput numbers are untouched (asserted by the serve-bench noise test).

Beyond bundling, the observer owns the obs-side **frame ledger**: it
counts frames entering the pipeline (:attr:`frames_submitted`, plus
synthetic :attr:`fills_created`) and, via the event log's lifetime kind
counts, frames leaving through each terminal outcome.  :meth:`ledger`
reconciles the two —

``submitted + fills == answered + rejected + quarantined
+ policy_rejected + stale + overflow + rate_limited
+ deadline_expired + shed + pending``

— exactly, mirroring the chaos-bench frame ledger from the event side so
the two accountings can be cross-checked frame-for-frame.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .events import EventLog
from .tracer import FrameTracer

#: Terminal outcomes and the event kind that records each.
_OUTCOME_KINDS = {
    "answered": "frame.answered",
    "rejected": "frame.rejected",
    "quarantined": "frame.quarantined",
    "policy_rejected": "frame.policy_rejected",
    "stale": "frame.stale",
    "overflow": "frame.overflow",
    "rate_limited": "frame.rate_limited",
    "deadline_expired": "frame.deadline_expired",
    "shed": "frame.shed",
}


class Observer:
    """Live tracer + event log + ledger behind one ``enabled`` flag."""

    enabled = True

    def __init__(
        self,
        *,
        label: str | None = None,
        tracer: FrameTracer | None = None,
        events: EventLog | None = None,
        trace_capacity: int = 2048,
        event_capacity: int = 4096,
    ) -> None:
        self.label = label
        self.tracer = tracer if tracer is not None else FrameTracer(trace_capacity)
        self.events = events if events is not None else EventLog(event_capacity)
        self.registry = None
        #: Real frames entering submit (ids assigned, pre-admission).
        self.frames_submitted = 0
        #: Synthetic gap-fill frames manufactured by the repairer.
        self.fills_created = 0

    def bind_registry(self, registry) -> None:
        """Adopt the engine's metrics registry (stage histograms + dump)."""
        if self.registry is None:
            self.registry = registry
        self.tracer.bind_registry(registry)

    # ------------------------------------------------------------ frame life

    def frame_submitted(self, frame_id: int, link_id: str, t_s: float) -> None:
        """A real frame entered ``submit`` and got its id."""
        self.frames_submitted += 1
        self.tracer.start(frame_id, link_id, t_s)

    def frame_filled(self, frame_id: int, link_id: str, t_s: float, source_frame: int) -> None:
        """The repairer manufactured a fill frame (non-terminal event)."""
        self.fills_created += 1
        self.tracer.start(frame_id, link_id, t_s, repaired=True)
        self.events.emit(
            "frame.repaired",
            t_s=t_s,
            frame_id=frame_id,
            link_id=link_id,
            source_frame=source_frame,
        )

    def frame_outcome(
        self,
        outcome: str,
        frame_id: int,
        link_id: str,
        t_s: float,
        **data,
    ) -> None:
        """Seal one frame: emit its terminal event and close its trace."""
        kind = _OUTCOME_KINDS.get(outcome)
        if kind is None:
            raise ConfigurationError(
                f"unknown frame outcome {outcome!r}; expected one of "
                f"{sorted(_OUTCOME_KINDS)}"
            )
        self.events.emit(kind, t_s=t_s, frame_id=frame_id, link_id=link_id, **data)
        self.tracer.finish(frame_id, outcome)

    # ---------------------------------------------------------------- events

    def emit(self, kind: str, *, t_s: float = 0.0, frame_id=None, link_id=None, **data):
        """Emit a non-frame-terminal event (batch/guard/training kinds)."""
        return self.events.emit(
            kind, t_s=t_s, frame_id=frame_id, link_id=link_id, **data
        )

    # ---------------------------------------------------------------- ledger

    def ledger(self) -> dict[str, int]:
        """The obs-side frame accounting; ``unaccounted`` must be zero."""
        outcomes = {
            name: self.events.count(kind) for name, kind in _OUTCOME_KINDS.items()
        }
        pending = self.frames_submitted + self.fills_created - sum(outcomes.values())
        return {
            "submitted": self.frames_submitted,
            "fills": self.fills_created,
            **outcomes,
            "pending": self.tracer.open_frames,
            "unaccounted": pending - self.tracer.open_frames,
        }

    # ------------------------------------------------------------------ dump

    def dump(self) -> dict:
        """One JSON-ready postmortem bundle for this observer's run.

        ``events``/``ledger`` are deterministic under same-seed replay;
        ``stages`` (wall-clock) and ``metrics``/``prometheus`` are not.
        """
        out: dict = {
            "label": self.label,
            "ledger": self.ledger(),
            "stages": self.tracer.stage_summary(),
            "events_total": self.events.total,
            "events_by_kind": self.events.counts_by_kind(),
            "events": [event.to_dict() for event in self.events],
        }
        if self.registry is not None:
            from .exposition import render_prometheus  # deferred: avoid cycle

            out["metrics"] = self.registry.as_dict()
            out["prometheus"] = render_prometheus(self.registry)
        return out


class NullObserver:
    """The zero-cost default: ``enabled`` is False, every method a no-op.

    Instrumented code checks ``observer.enabled`` before doing any timing
    work, so with this observer the hot path performs no clock reads, no
    allocations and no event emission.  The class still implements the
    full :class:`Observer` surface so un-guarded calls stay safe.
    """

    enabled = False

    label = None
    registry = None
    frames_submitted = 0
    fills_created = 0

    def bind_registry(self, registry) -> None:
        pass

    def frame_submitted(self, frame_id, link_id, t_s) -> None:
        pass

    def frame_filled(self, frame_id, link_id, t_s, source_frame) -> None:
        pass

    def frame_outcome(self, outcome, frame_id, link_id, t_s, **data) -> None:
        pass

    def emit(self, kind, *, t_s=0.0, frame_id=None, link_id=None, **data) -> None:
        pass

    def ledger(self) -> dict[str, int]:
        return {}

    def dump(self) -> dict:
        return {"label": None, "ledger": {}, "stages": {}, "events": []}


#: Shared no-op observer every engine uses unless handed a live one.
NULL_OBSERVER = NullObserver()
