"""Explainable-AI tooling (Section IV-B "Interpretability of the model").

* :mod:`repro.xai.gradcam` — Grad-CAM adapted to MLPs exactly as the paper
  does (Eqs. 5-6): gradient-derived importance coefficients per layer,
  combined with the feature maps and rectified.  Produces the
  per-input-feature importance profile of Figure 3.
* :mod:`repro.xai.saliency` — plain input-gradient saliency, the baseline
  the Grad-CAM "sanity check" literature compares against.
"""

from .gradcam import GradCAM, GradCAMResult
from .saliency import input_gradient_saliency
from .permutation import permutation_importance, top_features

__all__ = [
    "GradCAM",
    "GradCAMResult",
    "input_gradient_saliency",
    "permutation_importance",
    "top_features",
]
