"""Grad-CAM for multilayer perceptrons.

The paper (Section IV-B) applies Grad-CAM [17] to its MLP to rank input
features (64 CSI subcarriers + temperature + humidity) by importance for
the occupancy decision, finding near-zero weight on the environment inputs
(Figure 3).  The adaptation to MLPs treats each layer's activation vector
as a 1-D feature map:

* Eq. 5 — the importance coefficient of layer ``k`` for class ``c`` is the
  average gradient of the class score over that layer's units:
  ``alpha_k^c = (1/N) * sum_d  d y^c / d A_d^(k)``.
* Eq. 6 — the class-discriminative map is the rectified, coefficient-
  weighted feature map: ``L^c = ReLU(sum_k alpha_k^c * A^(k))``.

For input-feature attributions (what Figure 3 plots) the "layer" is the
input itself: per-feature gradients of the class score, weighted by the
feature values, averaged over a probe batch, and rectified at the very
end.  Because the model is binary, the class score is the logit ``z`` for
"occupied" and ``-z`` for "empty".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..nn.modules import Sequential
from ..nn.tensor import Tensor


@dataclass(frozen=True)
class GradCAMResult:
    """Attributions for one class over a probe batch."""

    target_class: int
    #: Rectified per-input-feature importance (Figure 3's bars), shape (d,).
    feature_importance: np.ndarray
    #: Signed (un-rectified) per-feature relevance, shape (d,).
    signed_relevance: np.ndarray
    #: Eq. 5 coefficient per hidden layer: mean class-score gradient.
    layer_alphas: tuple[float, ...]
    #: Eq. 6 rectified map per hidden layer, shapes (d_k,).
    layer_maps: tuple[np.ndarray, ...]


class GradCAM:
    """Grad-CAM explainer over a :class:`~repro.nn.modules.Sequential` MLP.

    The model must end in a single-logit output (the library's occupancy
    networks do); sigmoid squashing is *not* part of the model, matching
    the convention that Grad-CAM differentiates the pre-softmax score.
    """

    def __init__(self, model: Sequential) -> None:
        if not isinstance(model, Sequential):
            raise ConfigurationError("GradCAM expects a Sequential model")
        self.model = model

    def explain(self, x: np.ndarray, target_class: int = 1) -> GradCAMResult:
        """Compute attributions for ``target_class`` over probe rows ``x``."""
        if target_class not in (0, 1):
            raise ConfigurationError("target_class must be 0 or 1")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ShapeError(f"probe batch must be 2-D, got {x.shape}")

        self.model.eval()
        inputs = Tensor(x, requires_grad=True)
        logits, activations = self.model.forward_with_activations(inputs)
        if logits.ndim != 2 or logits.shape[1] != 1:
            raise ShapeError(
                f"GradCAM needs a single-logit model, got output {logits.shape}"
            )
        # Class score y^c: the logit for "occupied", its negation for "empty".
        sign = 1.0 if target_class == 1 else -1.0
        score = (logits * sign).sum()
        score.backward()

        assert inputs.grad is not None
        # Input-level attribution: gradient x activation, batch-averaged.
        signed = np.mean(inputs.grad * x, axis=0)
        importance = np.maximum(signed, 0.0)

        alphas: list[float] = []
        maps: list[np.ndarray] = []
        for act in activations[:-1]:  # exclude the output logit itself
            if act.grad is None:
                continue
            # Eq. 5: average the gradients over units (and the batch).
            alpha = float(np.mean(act.grad))
            alphas.append(alpha)
            # Eq. 6: rectified coefficient-weighted feature map.
            maps.append(np.maximum(alpha * np.mean(act.data, axis=0), 0.0))

        return GradCAMResult(
            target_class=target_class,
            feature_importance=importance,
            signed_relevance=signed,
            layer_alphas=tuple(alphas),
            layer_maps=tuple(maps),
        )

    def feature_ranking(self, x: np.ndarray, target_class: int = 1) -> np.ndarray:
        """Feature indices sorted by decreasing importance."""
        result = self.explain(x, target_class)
        return np.argsort(result.feature_importance)[::-1]
