"""Plain input-gradient saliency.

The simplest attribution: the batch-averaged absolute gradient of the
class score with respect to each input feature.  Used as the comparison
point for Grad-CAM in the "sanity checks for saliency maps" sense the
paper cites ([25]) — both methods should broadly agree on which features
matter for a model that genuinely uses them.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..nn.modules import Module
from ..nn.tensor import Tensor


def input_gradient_saliency(
    model: Module, x: np.ndarray, target_class: int = 1
) -> np.ndarray:
    """Mean |d score / d x_i| per input feature over a probe batch."""
    if target_class not in (0, 1):
        raise ConfigurationError("target_class must be 0 or 1")
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ShapeError(f"probe batch must be 2-D, got {x.shape}")

    model.eval()
    inputs = Tensor(x, requires_grad=True)
    logits = model(inputs)
    if logits.ndim != 2 or logits.shape[1] != 1:
        raise ShapeError(f"saliency needs a single-logit model, got {logits.shape}")
    sign = 1.0 if target_class == 1 else -1.0
    (logits * sign).sum().backward()
    assert inputs.grad is not None
    return np.mean(np.abs(inputs.grad), axis=0)
