"""Permutation feature importance.

Grad-CAM (the paper's choice) only explains differentiable models; the
Table IV comparison also includes a random forest and a logistic
regressor.  Permutation importance is the model-agnostic complement: the
drop in a score when one feature's column is shuffled measures how much
the model *uses* that feature.  Running it next to Grad-CAM on the MLP is
a cross-method sanity check of Figure 3; running it on the forest answers
whether the two model families attend to the same subcarriers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ShapeError


def permutation_importance(
    score_fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    n_repeats: int = 3,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Mean score drop per shuffled feature.

    Parameters
    ----------
    score_fn:
        Callable mapping a feature matrix to a scalar score (higher =
        better), e.g. ``lambda m: accuracy(y, model.predict(m))``.  The
        ground truth is captured in the closure, so this works with any
        estimator in the library.
    x:
        Evaluation features, shape ``(n, d)``; never modified.
    n_repeats:
        Shuffles averaged per feature (permutation noise reduction).

    Returns
    -------
    Importance vector of shape ``(d,)``: baseline score minus mean
    shuffled score.  Near zero (or slightly negative, from shuffle noise)
    for unused features.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ShapeError(f"x must be 2-D, got {x.shape}")
    if n_repeats < 1:
        raise ShapeError("n_repeats must be >= 1")
    rng = rng or np.random.default_rng()

    baseline = float(score_fn(x))
    n, d = x.shape
    importance = np.zeros(d)
    work = x.copy()
    for j in range(d):
        original = work[:, j].copy()
        drops = []
        for _ in range(n_repeats):
            work[:, j] = original[rng.permutation(n)]
            drops.append(baseline - float(score_fn(work)))
        work[:, j] = original
        importance[j] = float(np.mean(drops))
    return importance


def top_features(importance: np.ndarray, k: int = 10) -> np.ndarray:
    """Indices of the ``k`` most important features, descending."""
    importance = np.asarray(importance, dtype=float).ravel()
    if not 1 <= k <= importance.size:
        raise ShapeError(f"k must be within [1, {importance.size}]")
    return np.argsort(importance)[::-1][:k]
